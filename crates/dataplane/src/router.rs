//! The border router.
//!
//! Processing follows the SCION specification's data-plane algorithm:
//!
//! * **Construction direction** (`cons_dir = 1`): verify the current hop
//!   field's MAC against the info field's segment identifier, then chain
//!   `seg_id ^= mac[0..2]` when leaving the hop. If the segment has the
//!   peering flag and the hop is the segment's construction-order first,
//!   the MAC was computed over the *next* beta, so it verifies against the
//!   unmodified `seg_id` and does not chain.
//! * **Against construction direction**: first un-chain
//!   `seg_id ^= mac[0..2]`, verify against the result, and leave the
//!   un-chained value in place; the peering-flagged construction-first hop
//!   verifies against the current `seg_id` without un-chaining.
//!
//! A failed MAC, an interface mismatch, or an expired hop drops the packet
//! — this is what makes path authorisation enforceable hop by hop.

use sciera_telemetry::{Counter, Event, Severity, Telemetry};
use scion_crypto::mac::{HopKey, HopMacInput};
use scion_proto::addr::IsdAsn;
use scion_proto::packet::{DataPlanePath, L4Protocol, PathType, ScionPacket};
use scion_proto::path::ScionPath;
use scion_proto::scmp::ScmpMessage;
use scion_proto::trace::TraceContext;
use scion_proto::wire::{HeaderOffsets, WireCursor};

use std::collections::HashMap;

use crate::maccache::{FxBuildHasher, MacCache, MacCacheKey, DEFAULT_MAC_CACHE_CAPACITY};

/// Why a packet was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DropReason {
    /// The hop-field MAC did not verify.
    BadMac,
    /// The packet arrived on a different interface than the hop field says.
    IngressMismatch {
        /// Interface in the hop field.
        expected: u16,
        /// Interface the packet actually arrived on.
        actual: u16,
    },
    /// The current hop field has expired.
    Expired,
    /// The destination AS of a delivered packet isn't this AS.
    WrongDestination,
    /// Structural problem with the path (pointers, segments).
    MalformedPath(String),
    /// The packet carries a path type this router cannot process.
    UnsupportedPath,
}

/// The router's verdict on a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Deliver the (possibly rewritten) packet to the local destination host.
    Deliver(ScionPacket),
    /// Forward the rewritten packet out of the given local interface.
    Forward {
        /// Egress interface identifier.
        ifid: u16,
        /// The rewritten packet.
        packet: ScionPacket,
    },
}

/// The router's verdict on a raw frame processed in place (the frame buffer
/// itself *is* the rewritten packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDecision {
    /// Deliver the frame to the local destination host.
    Deliver,
    /// Forward the frame out of the given local interface.
    Forward {
        /// Egress interface identifier.
        ifid: u16,
    },
}

/// Why a raw frame was not forwarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame failed to parse as a SCION packet. Matches exactly the
    /// frames `ScionPacket::decode` rejects; such frames never reach the
    /// router's processing counters.
    Malformed(String),
    /// The frame parsed but the router dropped it.
    Drop(DropReason),
}

/// Pre-registered router counters: the forwarding hot path only ever does
/// relaxed atomic increments, never a registry name lookup.
#[derive(Debug, Clone)]
struct RouterMetrics {
    telemetry: Telemetry,
    forwarded: Counter,
    delivered: Counter,
    drop_bad_mac: Counter,
    drop_ingress_mismatch: Counter,
    drop_expired: Counter,
    drop_wrong_destination: Counter,
    drop_malformed_path: Counter,
    drop_unsupported_path: Counter,
    /// Frames fully handled in place, without a decode/encode cycle.
    fastpath_hit: Counter,
    /// Frames handed to the reference decode path (trace extension,
    /// one-hop path, trailing bytes, or malformed input).
    fastpath_fallback: Counter,
    /// `process_batch` invocations.
    batch_calls: Counter,
    /// Frames submitted across all `process_batch` invocations.
    batch_frames: Counter,
    /// Frames peeled out of a batch onto the fallback path.
    batch_peeled: Counter,
    /// Hop MACs verified through the batched CMAC entry point.
    batch_mac_batched: Counter,
    /// First-hop MAC checks satisfied by another frame of the same batch.
    batch_mac_dedup: Counter,
}

impl RouterMetrics {
    fn register(telemetry: Telemetry) -> Self {
        RouterMetrics {
            forwarded: telemetry.counter("router.forwarded"),
            delivered: telemetry.counter("router.delivered"),
            drop_bad_mac: telemetry.counter("router.drop.bad_mac"),
            drop_ingress_mismatch: telemetry.counter("router.drop.ingress_mismatch"),
            drop_expired: telemetry.counter("router.drop.expired"),
            drop_wrong_destination: telemetry.counter("router.drop.wrong_destination"),
            drop_malformed_path: telemetry.counter("router.drop.malformed_path"),
            drop_unsupported_path: telemetry.counter("router.drop.unsupported_path"),
            fastpath_hit: telemetry.counter("router.fastpath.hit"),
            fastpath_fallback: telemetry.counter("router.fastpath.fallback"),
            batch_calls: telemetry.counter("router.batch.calls"),
            batch_frames: telemetry.counter("router.batch.frames"),
            batch_peeled: telemetry.counter("router.batch.peeled"),
            batch_mac_batched: telemetry.counter("router.batch.mac_batched"),
            batch_mac_dedup: telemetry.counter("router.batch.mac_dedup"),
            telemetry,
        }
    }

    fn drop_counter(&self, reason: &DropReason) -> &Counter {
        match reason {
            DropReason::BadMac => &self.drop_bad_mac,
            DropReason::IngressMismatch { .. } => &self.drop_ingress_mismatch,
            DropReason::Expired => &self.drop_expired,
            DropReason::WrongDestination => &self.drop_wrong_destination,
            DropReason::MalformedPath(_) => &self.drop_malformed_path,
            DropReason::UnsupportedPath => &self.drop_unsupported_path,
        }
    }
}

/// How the classification pass of [`BorderRouter::process_batch`] routed
/// one frame.
#[derive(Debug, Clone, Copy)]
enum BatchClass {
    /// Peeled out of the batch: hop-by-hop extension, unlocatable header,
    /// trailing bytes, non-canonical encoding or one-hop path — exactly the
    /// frames `process_frame_at` hands to the reference fallback.
    Peeled,
    /// Canonical frame committed to in-place processing, with the MAC
    /// pass's verdict for its current hop (`None` when the MAC pass did not
    /// settle it — empty paths, expired hops).
    Inline(HeaderOffsets, Option<bool>),
}

/// Scratch storage reused across [`BorderRouter::process_batch`] calls so
/// steady-state batches allocate nothing.
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    classes: Vec<BatchClass>,
    /// Index into `uniq` for each frame whose current hop entered the MAC
    /// pass (parallel to `classes`).
    uniq_ref: Vec<Option<usize>>,
    /// One entry per *distinct* cache key in the batch: the key, its MAC
    /// input, the claimed MAC and the verdict once known.
    uniq: Vec<(MacCacheKey, HopMacInput, [u8; 6], Option<bool>)>,
    /// cache key → index into `uniq`, cleared per batch.
    dedup: HashMap<MacCacheKey, usize, FxBuildHasher>,
    pending_inputs: Vec<HopMacInput>,
    pending_macs: Vec<[u8; 6]>,
    pending_uniq: Vec<usize>,
    verdicts: Vec<bool>,
}

/// Per-AS border router state.
#[derive(Clone)]
pub struct BorderRouter {
    /// The AS this router serves.
    pub ia: IsdAsn,
    hop_key: HopKey,
    /// Packets processed (for the forwarding throughput bench).
    pub processed: u64,
    /// Packets dropped.
    pub dropped: u64,
    metrics: RouterMetrics,
    mac_cache: MacCache,
    batch: BatchScratch,
}

impl BorderRouter {
    /// Creates a router with the AS's hop key. Telemetry starts on a quiet
    /// private handle; share one with [`BorderRouter::set_telemetry`].
    pub fn new(ia: IsdAsn, hop_key: HopKey) -> Self {
        BorderRouter {
            ia,
            hop_key,
            processed: 0,
            dropped: 0,
            metrics: RouterMetrics::register(Telemetry::quiet()),
            mac_cache: MacCache::new(DEFAULT_MAC_CACHE_CAPACITY),
            batch: BatchScratch::default(),
        }
    }

    /// Re-registers the router's counters on a shared telemetry handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.mac_cache.set_telemetry(&telemetry);
        self.metrics = RouterMetrics::register(telemetry);
    }

    /// Drops all cached MAC verifications (for benchmarks and key events).
    pub fn reset_mac_cache(&mut self) {
        self.mac_cache.clear();
    }

    /// Number of hop-MAC verifications currently cached.
    pub fn mac_cache_len(&self) -> usize {
        self.mac_cache.len()
    }

    /// Processes a packet arriving on `ingress_ifid` (0 = from a host or
    /// service inside this AS) at Unix time `now`. Hop events are stamped
    /// at `now` on the simulation clock; use [`BorderRouter::process_at`]
    /// when a finer per-hop timestamp is known.
    pub fn process(
        &mut self,
        packet: ScionPacket,
        ingress_ifid: u16,
        now: u64,
    ) -> Result<Decision, DropReason> {
        self.process_at(packet, ingress_ifid, now, now.saturating_mul(1_000_000_000))
    }

    /// [`BorderRouter::process`] with an explicit simulation timestamp
    /// (nanoseconds) for the emitted hop/drop events. If the packet carries
    /// a trace context the router takes custody of it — advancing the span
    /// chain — before deciding the packet's fate, so forwarded, delivered
    /// *and* dropped packets all attribute to this hop.
    pub fn process_at(
        &mut self,
        mut packet: ScionPacket,
        ingress_ifid: u16,
        now: u64,
        sim_ns: u64,
    ) -> Result<Decision, DropReason> {
        self.processed += 1;
        let trace = packet.trace.map(|ctx| ctx.child());
        packet.trace = trace;
        let result = match &mut packet.path {
            DataPlanePath::Empty => {
                // AS-local packet: deliverable iff we are the destination AS.
                if packet.dst.ia == self.ia {
                    Ok(None)
                } else {
                    Err(DropReason::WrongDestination)
                }
            }
            DataPlanePath::Scion(path) => {
                Self::process_scion_path(&self.hop_key, path, ingress_ifid, now)
            }
            DataPlanePath::OneHop { .. } => Err(DropReason::UnsupportedPath),
        };
        match result {
            Ok(Some(ifid)) => {
                self.metrics.forwarded.inc();
                self.emit_hop(trace.as_ref(), "pkt.hop", ingress_ifid, ifid, sim_ns);
                Ok(Decision::Forward { ifid, packet })
            }
            Ok(None) => {
                if packet.dst.ia != self.ia {
                    self.dropped += 1;
                    self.on_drop(&DropReason::WrongDestination, trace.as_ref(), sim_ns);
                    return Err(DropReason::WrongDestination);
                }
                self.metrics.delivered.inc();
                self.emit_hop(trace.as_ref(), "pkt.deliver", ingress_ifid, 0, sim_ns);
                Ok(Decision::Deliver(packet))
            }
            Err(e) => {
                self.dropped += 1;
                self.on_drop(&e, trace.as_ref(), sim_ns);
                Err(e)
            }
        }
    }

    /// Processes a raw frame *in place* — the forwarding fast path.
    ///
    /// For the common case (untraced packet, standard SCION or empty path,
    /// exact-length frame) this verifies the hop MAC — consulting the
    /// per-router verification cache first — and rewrites only the affected
    /// header bytes (`seg_id` chaining, pointer advance) directly in
    /// `frame`, with no decode, no allocation and at most one AES call.
    ///
    /// Frames outside that envelope — carrying a hop-by-hop extension whose
    /// trace context must be advanced, using a one-hop path, carrying
    /// trailing bytes, or malformed — fall back to the reference
    /// decode/process/encode path, so the observable behaviour (output
    /// bytes, drop decisions, `router.*` counters) is identical to feeding
    /// the decoded packet through [`BorderRouter::process`].
    pub fn process_frame(
        &mut self,
        frame: &mut Vec<u8>,
        ingress_ifid: u16,
        now: u64,
    ) -> Result<FrameDecision, FrameError> {
        self.process_frame_at(frame, ingress_ifid, now, now.saturating_mul(1_000_000_000))
    }

    /// [`BorderRouter::process_frame`] with an explicit simulation
    /// timestamp for emitted events (mirror of [`BorderRouter::process_at`]).
    pub fn process_frame_at(
        &mut self,
        frame: &mut Vec<u8>,
        ingress_ifid: u16,
        now: u64,
        sim_ns: u64,
    ) -> Result<FrameDecision, FrameError> {
        // A hop-by-hop extension carries a trace context the router must
        // advance and re-serialise: reference path territory.
        if HeaderOffsets::has_hbh_ext(frame) {
            return self.process_frame_fallback(frame, ingress_ifid, now, sim_ns);
        }
        let Ok(off) = HeaderOffsets::locate(frame) else {
            return self.process_frame_fallback(frame, ingress_ifid, now, sim_ns);
        };
        // `decode` tolerates trailing bytes and non-zero reserved bits but
        // `encode` strips/zeroes both; only exact-length canonical frames
        // stay byte-identical under in-place rewriting.
        if !off.is_exact_length(frame)
            || !off.is_canonical(frame)
            || off.path_type() == PathType::OneHop
        {
            return self.process_frame_fallback(frame, ingress_ifid, now, sim_ns);
        }
        self.process_canonical_frame(frame, off, ingress_ifid, now, sim_ns, None)
    }

    /// The committed in-place path shared by [`BorderRouter::process_frame_at`]
    /// and the batch pipeline: mirror of `process_at` for a packet without a
    /// trace context. `prefetched` carries the batch MAC pass's verdict for
    /// the frame's current hop, `None` when it must be verified here.
    fn process_canonical_frame(
        &mut self,
        frame: &mut [u8],
        off: HeaderOffsets,
        ingress_ifid: u16,
        now: u64,
        sim_ns: u64,
        prefetched: Option<bool>,
    ) -> Result<FrameDecision, FrameError> {
        self.processed += 1;
        self.metrics.fastpath_hit.inc();
        let mut cursor = WireCursor::from_offsets(frame, off);
        let result = match off.path_type() {
            PathType::Empty => {
                if cursor.dst_ia() == self.ia {
                    Ok(None)
                } else {
                    Err(DropReason::WrongDestination)
                }
            }
            PathType::Scion => Self::process_scion_frame(
                &self.hop_key,
                &mut self.mac_cache,
                &mut cursor,
                ingress_ifid,
                now,
                prefetched,
            ),
            PathType::OneHop => unreachable!("one-hop frames fall back above"),
        };
        match result {
            Ok(Some(ifid)) => {
                self.metrics.forwarded.inc();
                Ok(FrameDecision::Forward { ifid })
            }
            Ok(None) => {
                if cursor.dst_ia() != self.ia {
                    self.dropped += 1;
                    self.on_drop(&DropReason::WrongDestination, None, sim_ns);
                    return Err(FrameError::Drop(DropReason::WrongDestination));
                }
                self.metrics.delivered.inc();
                Ok(FrameDecision::Deliver)
            }
            Err(e) => {
                self.dropped += 1;
                self.on_drop(&e, None, sim_ns);
                Err(FrameError::Drop(e))
            }
        }
    }

    /// Processes a batch of frames arriving on `ingress_ifid` through the
    /// staged pipeline. See [`BorderRouter::process_batch_at`].
    pub fn process_batch(
        &mut self,
        frames: &mut [Vec<u8>],
        ingress_ifid: u16,
        now: u64,
    ) -> Vec<Result<FrameDecision, FrameError>> {
        self.process_batch_at(frames, ingress_ifid, now, now.saturating_mul(1_000_000_000))
    }

    /// The batched forwarding pipeline: stages N frames through three
    /// passes instead of running each frame to completion alone.
    ///
    /// 1. **Classify** — locate and validate every header once; frames the
    ///    fast path cannot handle in place (hop-by-hop extension, one-hop
    ///    path, trailing bytes, non-canonical encoding, unlocatable header)
    ///    are peeled out for the reference fallback.
    /// 2. **MAC verify** — run the per-frame hop verification over every
    ///    remaining frame (expiry check, un-chaining `seg_id` write — each
    ///    frame's own bytes only), probe the MAC cache per frame,
    ///    deduplicate identical verification keys among the misses, and
    ///    verify the distinct misses together through the batched CMAC
    ///    entry point. All MACs checked by one router share its hop key —
    ///    hence one key epoch — which is what makes grouping them under the
    ///    same precomputed subkeys sound.
    /// 3. **Rewrite** — run each frame through the committed in-place path
    ///    (chain `seg_id`, ingress check, pointer advance); the prefetched
    ///    verdict makes the verify step a single branch. Peeled frames run
    ///    the reference fallback here, in arrival order.
    ///
    /// Per-frame observable behaviour — verdicts, output bytes, `processed`
    /// / `dropped` and every shared `router.*` counter — is identical to
    /// calling [`BorderRouter::process_frame_at`] on each frame in order;
    /// only the fast-path-internal `router.maccache.*` / `router.batch.*`
    /// families may differ (the batch pass checks each distinct key once).
    pub fn process_batch_at(
        &mut self,
        frames: &mut [Vec<u8>],
        ingress_ifid: u16,
        now: u64,
        sim_ns: u64,
    ) -> Vec<Result<FrameDecision, FrameError>> {
        let _prof = self.metrics.telemetry.prof_scope("router.batch");
        self.metrics.batch_calls.inc();
        self.metrics.batch_frames.add(frames.len() as u64);
        let mut scratch = std::mem::take(&mut self.batch);

        // Pass 1: classify / peel.
        scratch.classes.clear();
        for frame in frames.iter() {
            let class = if HeaderOffsets::has_hbh_ext(frame) {
                BatchClass::Peeled
            } else {
                match HeaderOffsets::locate(frame) {
                    Ok(off)
                        if off.is_exact_length(frame)
                            && off.is_canonical(frame)
                            && off.path_type() != PathType::OneHop =>
                    {
                        BatchClass::Inline(off, None)
                    }
                    _ => BatchClass::Peeled,
                }
            };
            scratch.classes.push(class);
        }

        // Pass 2: batched MAC verification.
        self.batch_mac_pass(frames, &mut scratch, now);

        // Pass 3: committed rewrite / fallback, in arrival order.
        let mut out = Vec::with_capacity(frames.len());
        for (frame, class) in frames.iter_mut().zip(scratch.classes.iter()) {
            out.push(match *class {
                BatchClass::Peeled => {
                    self.metrics.batch_peeled.inc();
                    self.process_frame_fallback(frame, ingress_ifid, now, sim_ns)
                }
                BatchClass::Inline(off, prefetched) => {
                    self.process_canonical_frame(frame, off, ingress_ifid, now, sim_ns, prefetched)
                }
            });
        }
        self.batch = scratch;
        out
    }

    /// Pass 2 of [`BorderRouter::process_batch_at`]: settle the MAC verdict
    /// for every inline SCION frame's current hop, performing the same
    /// per-frame verification effects (expiry gate, un-chaining `seg_id`
    /// write) in the same order the sequential path would. Cache misses are
    /// deduplicated within the batch and verified together through
    /// [`HopKey::verify_batch`] over the key's precomputed CMAC subkeys;
    /// successes are inserted with the already-built key (no re-hash, no
    /// re-probe).
    fn batch_mac_pass(&mut self, frames: &mut [Vec<u8>], scratch: &mut BatchScratch, now: u64) {
        scratch.uniq_ref.clear();
        scratch.uniq_ref.resize(frames.len(), None);
        scratch.uniq.clear();
        scratch.dedup.clear();
        for (i, frame) in frames.iter_mut().enumerate() {
            let BatchClass::Inline(off, _) = scratch.classes[i] else {
                continue;
            };
            if off.path_type() != PathType::Scion {
                continue;
            }
            let mut cursor = WireCursor::from_offsets(frame, off);
            let info = cursor.current_info();
            let hf = cursor.current_hop();
            if hf.expiry_unix(info.timestamp) < now {
                continue; // pass 3 drops it before looking at the MAC
            }
            let is_peer_hop = info.peering && Self::frame_at_segment_cons_start(&cursor);
            let mac2 = u16::from_be_bytes([hf.mac[0], hf.mac[1]]);
            // This is the per-frame verify, relocated: the expiry check ran
            // above, and the against-construction un-chaining write happens
            // here and now (it touches only this frame's own `seg_id`, so
            // frames in the batch stay independent). A prefetched verdict
            // tells pass 3 the frame is already past verification.
            let beta = if info.cons_dir || is_peer_hop {
                info.seg_id
            } else {
                let unchained = info.seg_id ^ mac2;
                cursor.set_seg_id(cursor.curr_inf(), unchained);
                unchained
            };
            let input = HopMacInput {
                beta,
                timestamp: info.timestamp,
                exp_time: hf.exp_time,
                cons_ingress: hf.cons_ingress,
                cons_egress: hf.cons_egress,
            };
            let key = MacCacheKey::new(&input, hf.mac, self.hop_key.epoch());
            // Warm path: a cache hit settles the verdict with the same
            // single probe the per-frame path pays — the dedup map never
            // enters the picture. Only cache misses (the cold path, where
            // a CMAC is on the line) pay for in-batch deduplication.
            if self.mac_cache.check(&key) {
                if let BatchClass::Inline(_, prefetched) = &mut scratch.classes[i] {
                    *prefetched = Some(true);
                }
                continue;
            }
            let idx = match scratch.dedup.get(&key) {
                Some(&idx) => {
                    self.metrics.batch_mac_dedup.inc();
                    idx
                }
                None => {
                    let idx = scratch.uniq.len();
                    scratch.uniq.push((key, input, hf.mac, None));
                    scratch.dedup.insert(key, idx);
                    idx
                }
            };
            scratch.uniq_ref[i] = Some(idx);
        }

        // One batched CMAC run over everything the cache could not settle.
        scratch.pending_inputs.clear();
        scratch.pending_macs.clear();
        scratch.pending_uniq.clear();
        for (idx, (_, input, mac, verdict)) in scratch.uniq.iter().enumerate() {
            if verdict.is_none() {
                scratch.pending_inputs.push(*input);
                scratch.pending_macs.push(*mac);
                scratch.pending_uniq.push(idx);
            }
        }
        if !scratch.pending_inputs.is_empty() {
            self.hop_key.verify_batch(
                &scratch.pending_inputs,
                &scratch.pending_macs,
                &mut scratch.verdicts,
            );
            self.metrics
                .batch_mac_batched
                .add(scratch.pending_inputs.len() as u64);
            for (&idx, &ok) in scratch.pending_uniq.iter().zip(scratch.verdicts.iter()) {
                scratch.uniq[idx].3 = Some(ok);
                if ok {
                    self.mac_cache.remember_missed(scratch.uniq[idx].0);
                }
            }
        }

        for (i, uniq_idx) in scratch.uniq_ref.iter().enumerate() {
            let Some(idx) = uniq_idx else { continue };
            if let BatchClass::Inline(_, prefetched) = &mut scratch.classes[i] {
                *prefetched = scratch.uniq[*idx].3;
            }
        }
    }

    /// Reference-path escape hatch for frames the fast path cannot handle:
    /// decode, run the packet-level machinery, re-encode into `frame`.
    fn process_frame_fallback(
        &mut self,
        frame: &mut Vec<u8>,
        ingress_ifid: u16,
        now: u64,
        sim_ns: u64,
    ) -> Result<FrameDecision, FrameError> {
        self.metrics.fastpath_fallback.inc();
        let packet =
            ScionPacket::decode(frame).map_err(|e| FrameError::Malformed(e.to_string()))?;
        match self.process_at(packet, ingress_ifid, now, sim_ns) {
            Ok(Decision::Deliver(p)) => {
                *frame = p
                    .encode()
                    .map_err(|e| FrameError::Malformed(e.to_string()))?;
                Ok(FrameDecision::Deliver)
            }
            Ok(Decision::Forward { ifid, packet }) => {
                *frame = packet
                    .encode()
                    .map_err(|e| FrameError::Malformed(e.to_string()))?;
                Ok(FrameDecision::Forward { ifid })
            }
            Err(e) => Err(FrameError::Drop(e)),
        }
    }

    /// In-place mirror of `BorderRouter::process_scion_path`, operating
    /// on the wire cursor and consulting the MAC verification cache.
    /// `prefetched` short-circuits the *current* hop's MAC check with the
    /// batch pass's verdict; the rare segment-crossing second hop always
    /// verifies inline.
    fn process_scion_frame(
        hop_key: &HopKey,
        cache: &mut MacCache,
        cursor: &mut WireCursor<'_>,
        ingress_ifid: u16,
        now: u64,
        prefetched: Option<bool>,
    ) -> Result<Option<u16>, DropReason> {
        Self::verify_hop_in_frame_with(hop_key, cache, cursor, now, prefetched)?;

        if ingress_ifid != 0 {
            let info = cursor.current_info();
            let hf = cursor.current_hop();
            let expected = if info.cons_dir {
                hf.cons_ingress
            } else {
                hf.cons_egress
            };
            if expected != ingress_ifid {
                return Err(DropReason::IngressMismatch {
                    expected,
                    actual: ingress_ifid,
                });
            }
        }

        Self::chain_on_egress_in_frame(cursor);

        if cursor.at_last_hop() {
            return Ok(None);
        }

        if Self::frame_at_segment_traversal_end(cursor) && !cursor.current_info().peering {
            cursor
                .advance()
                .map_err(|e| DropReason::MalformedPath(e.to_string()))?;
            Self::verify_hop_in_frame(hop_key, cache, cursor, now)?;
            Self::chain_on_egress_in_frame(cursor);
            if cursor.at_last_hop() {
                return Ok(None);
            }
        }

        let info = cursor.current_info();
        let hf = cursor.current_hop();
        let egress = if info.cons_dir {
            hf.cons_egress
        } else {
            hf.cons_ingress
        };
        if egress == 0 {
            return Err(DropReason::MalformedPath(
                "interior hop without an egress interface".into(),
            ));
        }
        cursor
            .advance()
            .map_err(|e| DropReason::MalformedPath(e.to_string()))?;
        Ok(Some(egress))
    }

    /// Mirror of `BorderRouter::at_segment_traversal_end` on a cursor.
    fn frame_at_segment_traversal_end(cursor: &WireCursor<'_>) -> bool {
        let seg = cursor.curr_inf();
        let off = cursor.offsets();
        cursor.curr_hf() == off.seg_start(seg) + off.seg_len(seg) - 1
    }

    /// Mirror of `BorderRouter::at_segment_cons_start` on a cursor.
    fn frame_at_segment_cons_start(cursor: &WireCursor<'_>) -> bool {
        let seg = cursor.curr_inf();
        let off = cursor.offsets();
        let idx = cursor.curr_hf();
        if cursor.current_info().cons_dir {
            idx == off.seg_start(seg)
        } else {
            idx == off.seg_start(seg) + off.seg_len(seg) - 1
        }
    }

    /// Mirror of `BorderRouter::verify_current_hop` on a cursor, with the
    /// MAC verification cache in front of the block cipher. Expiry stays a
    /// direct comparison — it depends on `now` and must never be cached.
    fn verify_hop_in_frame(
        hop_key: &HopKey,
        cache: &mut MacCache,
        cursor: &mut WireCursor<'_>,
        now: u64,
    ) -> Result<(), DropReason> {
        Self::verify_hop_in_frame_with(hop_key, cache, cursor, now, None)
    }

    /// [`BorderRouter::verify_hop_in_frame`] with an optional verdict from
    /// the batch MAC pass. A prefetched verdict means the batch pass already
    /// performed this function's entire effect — including the un-chaining
    /// `seg_id` write — so the short-circuit must not touch the frame again.
    fn verify_hop_in_frame_with(
        hop_key: &HopKey,
        cache: &mut MacCache,
        cursor: &mut WireCursor<'_>,
        now: u64,
        prefetched: Option<bool>,
    ) -> Result<(), DropReason> {
        if let Some(ok) = prefetched {
            // The batch MAC pass already ran this whole function's work for
            // the current hop — expiry check, un-chaining `seg_id` write,
            // cache probe / batched CMAC — so the verdict is final and the
            // frame bytes are already in the post-verification state.
            return if ok { Ok(()) } else { Err(DropReason::BadMac) };
        }
        let info = cursor.current_info();
        let hf = cursor.current_hop();
        if hf.expiry_unix(info.timestamp) < now {
            return Err(DropReason::Expired);
        }
        let is_peer_hop = info.peering && Self::frame_at_segment_cons_start(cursor);
        let mac2 = u16::from_be_bytes([hf.mac[0], hf.mac[1]]);
        let beta = if info.cons_dir || is_peer_hop {
            info.seg_id
        } else {
            // Against construction: un-chain our own MAC first, in place.
            let unchained = info.seg_id ^ mac2;
            cursor.set_seg_id(cursor.curr_inf(), unchained);
            unchained
        };
        let input = HopMacInput {
            beta,
            timestamp: info.timestamp,
            exp_time: hf.exp_time,
            cons_ingress: hf.cons_ingress,
            cons_egress: hf.cons_egress,
        };
        let key = MacCacheKey::new(&input, hf.mac, hop_key.epoch());
        if cache.check(&key) {
            return Ok(());
        }
        if !hop_key.verify(&input, &hf.mac) {
            return Err(DropReason::BadMac);
        }
        cache.remember_missed(key);
        Ok(())
    }

    /// Mirror of `BorderRouter::chain_on_egress` on a cursor.
    fn chain_on_egress_in_frame(cursor: &mut WireCursor<'_>) {
        let info = cursor.current_info();
        if !info.cons_dir {
            return; // already un-chained during verification
        }
        if info.peering && Self::frame_at_segment_cons_start(cursor) {
            return; // peer hops do not chain
        }
        let hf = cursor.current_hop();
        let mac2 = u16::from_be_bytes([hf.mac[0], hf.mac[1]]);
        cursor.xor_seg_id(cursor.curr_inf(), mac2);
    }

    /// Emits the per-hop trace event carrying the span chain. Only packets
    /// that carry a trace context produce events, so untraced traffic pays
    /// nothing beyond the `Option` check.
    fn emit_hop(
        &self,
        trace: Option<&TraceContext>,
        message: &str,
        ingress: u16,
        egress: u16,
        sim_ns: u64,
    ) {
        let Some(ctx) = trace else { return };
        if !self.metrics.telemetry.enabled(Severity::Trace) {
            return;
        }
        self.metrics.telemetry.emit(
            Event::new(
                sim_ns,
                self.ia.to_string(),
                "router",
                Severity::Trace,
                message,
            )
            .field("trace_id", ctx.trace_id)
            .field("span_id", ctx.span_id)
            .field("parent_span_id", ctx.parent_span_id)
            .field("hop", ctx.hop)
            .field("ingress", ingress)
            .field("egress", egress),
        );
    }

    fn on_drop(&self, reason: &DropReason, trace: Option<&TraceContext>, sim_ns: u64) {
        self.metrics.drop_counter(reason).inc();
        if self.metrics.telemetry.enabled(Severity::Warn) {
            let mut event = Event::new(
                sim_ns,
                self.ia.to_string(),
                "router",
                Severity::Warn,
                "packet dropped",
            )
            .field("reason", format!("{reason:?}"));
            if let Some(ctx) = trace {
                event = event
                    .field("trace_id", ctx.trace_id)
                    .field("span_id", ctx.span_id)
                    .field("parent_span_id", ctx.parent_span_id)
                    .field("hop", ctx.hop);
            }
            self.metrics.telemetry.emit(event);
        }
    }

    /// Core path processing; returns `Some(egress ifid)` to forward or
    /// `None` to deliver locally. Rewrites `path` in place (seg_id chaining
    /// and pointer advancement).
    fn process_scion_path(
        hop_key: &HopKey,
        path: &mut ScionPath,
        ingress_ifid: u16,
        now: u64,
    ) -> Result<Option<u16>, DropReason> {
        // Verify the current hop (ours).
        Self::verify_current_hop(hop_key, path, now)?;

        // Ingress check: packets from inside the AS (ifid 0) skip it.
        if ingress_ifid != 0 {
            let expected = path.current_ingress();
            if expected != ingress_ifid {
                return Err(DropReason::IngressMismatch {
                    expected,
                    actual: ingress_ifid,
                });
            }
        }

        // Chain seg_id when leaving a cons-dir hop (not for peer hops).
        Self::chain_on_egress(path);

        if path.at_last_hop() {
            return Ok(None); // Destination AS: deliver.
        }

        // A non-peering segment end is an *internal* crossing: the next
        // segment's first hop field belongs to this same AS. A peering
        // segment end instead leaves over the peering link (the peer hop's
        // egress interface), so it falls through to normal forwarding.
        if Self::at_segment_traversal_end(path) && !path.current_info().peering {
            // Segment crossing inside this AS: the next segment's first hop
            // field also belongs to us; it determines the real egress. Its
            // own interfaces facing the junction are not used.
            path.advance()
                .map_err(|e| DropReason::MalformedPath(e.to_string()))?;
            Self::verify_current_hop(hop_key, path, now)?;
            Self::chain_on_egress(path);
            if path.at_last_hop() {
                return Ok(None);
            }
        }

        let egress = path.current_egress();
        if egress == 0 {
            return Err(DropReason::MalformedPath(
                "interior hop without an egress interface".into(),
            ));
        }
        path.advance()
            .map_err(|e| DropReason::MalformedPath(e.to_string()))?;
        Ok(Some(egress))
    }

    /// Whether the current hop is the last hop of its segment in traversal
    /// order — the point where the packet crosses to the next segment
    /// inside this AS.
    fn at_segment_traversal_end(path: &ScionPath) -> bool {
        // Hop fields are laid out in traversal order, so the traversal end
        // of a segment is its last stored hop regardless of direction.
        let seg = path.meta.curr_inf as usize;
        let seg_start: usize = path.meta.seg_len[..seg].iter().map(|&l| l as usize).sum();
        let seg_len = path.meta.seg_len[seg] as usize;
        path.meta.curr_hf as usize == seg_start + seg_len - 1
    }

    /// Whether the current hop is the construction-order first hop of its
    /// segment (where a peering-flagged hop field lives).
    fn at_segment_cons_start(path: &ScionPath) -> bool {
        let seg = path.meta.curr_inf as usize;
        let seg_start: usize = path.meta.seg_len[..seg].iter().map(|&l| l as usize).sum();
        let seg_len = path.meta.seg_len[seg] as usize;
        let idx = path.meta.curr_hf as usize;
        if path.current_info().cons_dir {
            idx == seg_start
        } else {
            idx == seg_start + seg_len - 1
        }
    }

    fn verify_current_hop(
        hop_key: &HopKey,
        path: &mut ScionPath,
        now: u64,
    ) -> Result<(), DropReason> {
        let info = *path.current_info();
        let hf = *path.current_hop();
        if hf.expiry_unix(info.timestamp) < now {
            return Err(DropReason::Expired);
        }
        let is_peer_hop = info.peering && Self::at_segment_cons_start(path);
        let mac2 = u16::from_be_bytes([hf.mac[0], hf.mac[1]]);
        let beta = if info.cons_dir || is_peer_hop {
            info.seg_id
        } else {
            // Against construction: un-chain our own MAC first.
            let unchained = info.seg_id ^ mac2;
            path.info[path.meta.curr_inf as usize].seg_id = unchained;
            unchained
        };
        let input = HopMacInput {
            beta,
            timestamp: info.timestamp,
            exp_time: hf.exp_time,
            cons_ingress: hf.cons_ingress,
            cons_egress: hf.cons_egress,
        };
        if !hop_key.verify(&input, &hf.mac) {
            return Err(DropReason::BadMac);
        }
        Ok(())
    }

    fn chain_on_egress(path: &mut ScionPath) {
        let info = *path.current_info();
        if !info.cons_dir {
            return; // already un-chained during verification
        }
        if info.peering && Self::at_segment_cons_start(path) {
            return; // peer hops do not chain
        }
        let hf = path.current_hop();
        let mac2 = u16::from_be_bytes([hf.mac[0], hf.mac[1]]);
        path.info[path.meta.curr_inf as usize].seg_id ^= mac2;
    }

    /// Builds the SCMP `ExternalInterfaceDown` error a router sends back to
    /// the source when asked to forward over a dead link. Returns `None`
    /// when the triggering packet's path cannot be reversed.
    pub fn external_interface_down(&self, trigger: &ScionPacket, ifid: u16) -> Option<ScionPacket> {
        let (src, dst, path) = trigger.reply_template()?;
        let msg = ScmpMessage::ExternalInterfaceDown {
            ia: self.ia,
            interface: ifid as u64,
        };
        Some(ScionPacket::new(
            src,
            dst,
            L4Protocol::Scmp,
            path,
            msg.encode(),
        ))
    }
}

impl core::fmt::Debug for BorderRouter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "BorderRouter({}, processed: {}, dropped: {})",
            self.ia, self.processed, self.dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_control::fullpath::{Direction, FullPath, PathKind, SegmentUse};
    use scion_control::segment::{AsSecrets, SegmentBuilder, SegmentType};
    use scion_proto::addr::{ia, HostAddr, ScionAddr};

    const TS: u32 = 1_700_000_000;
    const NOW: u64 = 1_700_000_100;

    pub(crate) fn secrets(s: &str) -> AsSecrets {
        AsSecrets::derive(ia(s))
    }

    pub(crate) fn router(s: &str) -> BorderRouter {
        let sec = secrets(s);
        BorderRouter::new(sec.ia, sec.hop_key)
    }

    /// Up segment: core 71-1 (eg 11) -> mid 71-10 (in 21, eg 22, peer to
    /// 71-20 via 29/39) -> leaf 71-100 (in 31).
    pub(crate) fn up_segment() -> scion_control::segment::PathSegment {
        let mut b = SegmentBuilder::originate(SegmentType::UpDown, TS, 0x1001);
        b.extend(&secrets("71-1"), 0, 11, &[]);
        b.extend(&secrets("71-10"), 21, 22, &[(ia("71-20"), 29, 39)]);
        b.extend(&secrets("71-100"), 31, 0, &[]);
        b.finish()
    }

    /// Down segment: core 71-2 (eg 12) -> mid 71-20 (in 23, eg 24, peer to
    /// 71-10 via 39/29) -> leaf 71-200 (in 33).
    pub(crate) fn down_segment() -> scion_control::segment::PathSegment {
        let mut b = SegmentBuilder::originate(SegmentType::UpDown, TS, 0x2002);
        b.extend(&secrets("71-2"), 0, 12, &[]);
        b.extend(&secrets("71-20"), 23, 24, &[(ia("71-10"), 39, 29)]);
        b.extend(&secrets("71-200"), 33, 0, &[]);
        b.finish()
    }

    /// Core segment constructed 71-2 (eg 41) -> 71-1 (in 42).
    pub(crate) fn core_segment() -> scion_control::segment::PathSegment {
        let mut b = SegmentBuilder::originate(SegmentType::Core, TS, 0x3003);
        b.extend(&secrets("71-2"), 0, 41, &[]);
        b.extend(&secrets("71-1"), 42, 0, &[]);
        b.finish()
    }

    pub(crate) fn full_transit_path() -> FullPath {
        FullPath::assemble(
            ia("71-100"),
            ia("71-200"),
            PathKind::CoreTransit,
            vec![
                SegmentUse::whole(up_segment(), Direction::AgainstCons),
                SegmentUse::whole(core_segment(), Direction::AgainstCons),
                SegmentUse::whole(down_segment(), Direction::Cons),
            ],
        )
        .unwrap()
    }

    pub(crate) fn packet_with(path: ScionPath) -> ScionPacket {
        packet_to(path, "71-200")
    }

    pub(crate) fn packet_to(path: ScionPath, dst: &str) -> ScionPacket {
        ScionPacket::new(
            ScionAddr::new(ia("71-100"), HostAddr::v4(10, 0, 0, 1)),
            ScionAddr::new(ia(dst), HostAddr::v4(10, 0, 0, 2)),
            L4Protocol::Udp,
            DataPlanePath::Scion(path),
            b"payload".to_vec(),
        )
    }

    /// Walks a packet through a list of (router, ingress ifid) stations and
    /// returns the delivered packet.
    fn walk(
        mut packet: ScionPacket,
        stations: &[(&str, u16)],
        expect_egress: &[u16],
    ) -> ScionPacket {
        for (i, ((as_str, ingress), want_eg)) in
            stations.iter().zip(expect_egress.iter()).enumerate()
        {
            let mut r = router(as_str);
            match r.process(packet, *ingress, NOW) {
                Ok(Decision::Forward { ifid, packet: p }) => {
                    assert_eq!(ifid, *want_eg, "station {i} ({as_str}) egress");
                    packet = p;
                }
                Ok(Decision::Deliver(p)) => {
                    assert_eq!(*want_eg, 0, "station {i} ({as_str}) delivered early");
                    return p;
                }
                Err(e) => panic!("station {i} ({as_str}) dropped: {e:?}"),
            }
        }
        panic!("packet was never delivered");
    }

    #[test]
    fn end_to_end_core_transit_forwarding() {
        let dp = full_transit_path().to_dataplane().unwrap();
        let pkt = packet_with(dp);
        // 71-100 (host->BR, leaves via 31) -> 71-10 (in 22, out 21)
        // -> 71-1 (in 11, out 42) -> 71-2 (in 41, out 12)
        // -> 71-20 (in 23, out 24) -> 71-200 (in 33, deliver)
        let delivered = walk(
            pkt,
            &[
                ("71-100", 0),
                ("71-10", 22),
                ("71-1", 11),
                ("71-2", 41),
                ("71-20", 23),
                ("71-200", 33),
            ],
            &[31, 21, 42, 12, 24, 0],
        );
        assert_eq!(delivered.payload, b"payload");
    }

    #[test]
    fn peering_path_forwards_over_peer_link() {
        let p = FullPath::assemble(
            ia("71-100"),
            ia("71-200"),
            PathKind::Peering,
            vec![
                SegmentUse {
                    segment: up_segment().into(),
                    dir: Direction::AgainstCons,
                    from_idx: 1,
                    to_idx: 2,
                    peer_with: Some(ia("71-20")),
                },
                SegmentUse {
                    segment: down_segment().into(),
                    dir: Direction::Cons,
                    from_idx: 1,
                    to_idx: 2,
                    peer_with: Some(ia("71-10")),
                },
            ],
        )
        .unwrap();
        let pkt = packet_with(p.to_dataplane().unwrap());
        let delivered = walk(
            pkt,
            &[("71-100", 0), ("71-10", 22), ("71-20", 39), ("71-200", 33)],
            &[31, 29, 24, 0],
        );
        assert_eq!(delivered.dst.ia, ia("71-200"));
    }

    #[test]
    fn shortcut_path_forwards() {
        // Down segment sharing mid AS 71-10: core 71-1 -> 71-10 -> 71-300.
        let mut b = SegmentBuilder::originate(SegmentType::UpDown, TS, 0x4004);
        b.extend(&secrets("71-1"), 0, 11, &[]);
        b.extend(&secrets("71-10"), 21, 25, &[]);
        b.extend(&secrets("71-300"), 35, 0, &[]);
        let down = b.finish();
        let p = FullPath::assemble(
            ia("71-100"),
            ia("71-300"),
            PathKind::Shortcut,
            vec![
                SegmentUse {
                    segment: up_segment().into(),
                    dir: Direction::AgainstCons,
                    from_idx: 1,
                    to_idx: 2,
                    peer_with: None,
                },
                SegmentUse {
                    segment: down.into(),
                    dir: Direction::Cons,
                    from_idx: 1,
                    to_idx: 2,
                    peer_with: None,
                },
            ],
        )
        .unwrap();
        let pkt = packet_to(p.to_dataplane().unwrap(), "71-300");
        // 71-10 receives on 22 (from leaf), crosses segments, leaves via 25.
        let delivered = walk(
            pkt,
            &[("71-100", 0), ("71-10", 22), ("71-300", 35)],
            &[31, 25, 0],
        );
        assert_eq!(delivered.payload, b"payload");
    }

    #[test]
    #[cfg(feature = "trace")]
    fn trace_context_advances_and_emits_chain() {
        use sciera_telemetry::{reconstruct_trace, validate_chain, Telemetry};

        let tele = Telemetry::with_severity(Severity::Trace);
        let dp = full_transit_path().to_dataplane().unwrap();
        let mut pkt = packet_with(dp);
        let root = TraceContext::root(77);
        pkt.trace = Some(root);
        // The sending host's root span, as `core` emits it.
        tele.emit(
            Event::new(5, "host", "transport", Severity::Trace, "pkt.send")
                .field("trace_id", root.trace_id)
                .field("span_id", root.span_id)
                .field("parent_span_id", root.parent_span_id)
                .field("hop", root.hop),
        );
        let stations: [(&str, u16); 6] = [
            ("71-100", 0),
            ("71-10", 22),
            ("71-1", 11),
            ("71-2", 41),
            ("71-20", 23),
            ("71-200", 33),
        ];
        let mut cur = pkt;
        for (i, (as_str, ingress)) in stations.iter().enumerate() {
            let mut r = router(as_str);
            r.set_telemetry(tele.clone());
            match r.process_at(cur, *ingress, NOW, 10 + 10 * i as u64) {
                Ok(Decision::Forward { packet, .. }) => cur = packet,
                Ok(Decision::Deliver(p)) => cur = p,
                Err(e) => panic!("station {as_str} dropped: {e:?}"),
            }
        }
        assert_eq!(cur.trace.unwrap().hop, 6, "one span per router");
        let events = tele.flight_recorder().events();
        let chain = reconstruct_trace(&events, 77);
        assert_eq!(chain.len(), 7, "root + six router hops");
        validate_chain(&chain).unwrap();
        assert_eq!(chain.last().unwrap().message, "pkt.deliver");
        // The chain is exactly the deterministic child() derivation.
        let mut expect = root;
        for hop in &chain[1..] {
            expect = expect.child();
            assert_eq!(hop.span_id, expect.span_id);
        }
    }

    #[test]
    #[cfg(feature = "trace")]
    fn dropped_traced_packet_attributes_the_hop() {
        use sciera_telemetry::Telemetry;

        let tele = Telemetry::with_severity(Severity::Trace);
        let dp = full_transit_path().to_dataplane().unwrap();
        let mut pkt = packet_with(dp);
        pkt.trace = Some(TraceContext::root(88));
        if let DataPlanePath::Scion(p) = &mut pkt.path {
            p.hops[0].mac[3] ^= 1;
        }
        let mut r = router("71-100");
        r.set_telemetry(tele.clone());
        assert_eq!(r.process(pkt, 0, NOW), Err(DropReason::BadMac));
        let events = tele.flight_recorder().events();
        let drop = events
            .iter()
            .find(|e| e.message == "packet dropped")
            .unwrap();
        assert!(drop
            .fields
            .iter()
            .any(|(k, v)| k == "trace_id" && v == "88"));
        assert!(drop.fields.iter().any(|(k, v)| k == "hop" && v == "1"));
    }

    #[test]
    fn tampered_mac_dropped() {
        let dp = full_transit_path().to_dataplane().unwrap();
        let mut pkt = packet_with(dp);
        if let DataPlanePath::Scion(p) = &mut pkt.path {
            p.hops[0].mac[3] ^= 1;
        }
        let mut r = router("71-100");
        assert_eq!(r.process(pkt, 0, NOW), Err(DropReason::BadMac));
        assert_eq!(r.dropped, 1);
    }

    #[test]
    fn tampered_interface_dropped() {
        let dp = full_transit_path().to_dataplane().unwrap();
        let mut pkt = packet_with(dp);
        if let DataPlanePath::Scion(p) = &mut pkt.path {
            // Redirect the first hop's egress: MAC no longer matches.
            p.hops[0].cons_ingress = 99;
        }
        let mut r = router("71-100");
        assert_eq!(r.process(pkt, 0, NOW), Err(DropReason::BadMac));
    }

    #[test]
    fn wrong_ingress_interface_dropped() {
        let dp = full_transit_path().to_dataplane().unwrap();
        let pkt = packet_with(dp);
        let mut r100 = router("71-100");
        let Decision::Forward { packet, .. } = r100.process(pkt, 0, NOW).unwrap() else {
            panic!("expected forward");
        };
        // 71-10 expects ingress 22 but the packet shows up on 27.
        let mut r10 = router("71-10");
        assert_eq!(
            r10.process(packet, 27, NOW),
            Err(DropReason::IngressMismatch {
                expected: 22,
                actual: 27
            })
        );
    }

    #[test]
    fn expired_hop_dropped() {
        let dp = full_transit_path().to_dataplane().unwrap();
        let pkt = packet_with(dp);
        let mut r = router("71-100");
        // DEFAULT_EXP_TIME = 63 -> 6 h lifetime.
        let too_late = TS as u64 + 22_000;
        assert_eq!(r.process(pkt, 0, too_late), Err(DropReason::Expired));
    }

    #[test]
    fn wrong_as_key_cannot_forward() {
        let dp = full_transit_path().to_dataplane().unwrap();
        let pkt = packet_with(dp);
        // A router with some other AS's key tries to process hop 0.
        let mut r = router("71-31337");
        assert_eq!(r.process(pkt, 0, NOW), Err(DropReason::BadMac));
    }

    #[test]
    fn empty_path_local_delivery() {
        let pkt = ScionPacket::new(
            ScionAddr::new(ia("71-100"), HostAddr::v4(10, 0, 0, 1)),
            ScionAddr::new(ia("71-100"), HostAddr::v4(10, 0, 0, 2)),
            L4Protocol::Udp,
            DataPlanePath::Empty,
            b"local".to_vec(),
        );
        let mut r = router("71-100");
        match r.process(pkt, 0, NOW) {
            Ok(Decision::Deliver(p)) => assert_eq!(p.payload, b"local"),
            other => panic!("expected delivery, got {other:?}"),
        }
        // And a foreign destination with an empty path is dropped.
        let pkt2 = ScionPacket::new(
            ScionAddr::new(ia("71-100"), HostAddr::v4(10, 0, 0, 1)),
            ScionAddr::new(ia("71-200"), HostAddr::v4(10, 0, 0, 2)),
            L4Protocol::Udp,
            DataPlanePath::Empty,
            vec![],
        );
        assert_eq!(r.process(pkt2, 0, NOW), Err(DropReason::WrongDestination));
    }

    #[test]
    fn reverse_path_also_verifies() {
        // Deliver forward, then send the reply along the reversed path.
        let dp = full_transit_path().to_dataplane().unwrap();
        let pkt = packet_with(dp);
        let delivered = walk(
            pkt,
            &[
                ("71-100", 0),
                ("71-10", 22),
                ("71-1", 11),
                ("71-2", 41),
                ("71-20", 23),
                ("71-200", 33),
            ],
            &[31, 21, 42, 12, 24, 0],
        );
        let (src, dst, path) = delivered.reply_template().unwrap();
        let reply = ScionPacket::new(src, dst, L4Protocol::Udp, path, b"pong".to_vec());
        let back = walk(
            reply,
            &[
                ("71-200", 0),
                ("71-20", 24),
                ("71-2", 12),
                ("71-1", 42),
                ("71-10", 21),
                ("71-100", 31),
            ],
            &[33, 23, 41, 11, 22, 0],
        );
        assert_eq!(back.payload, b"pong");
        assert_eq!(back.dst.ia, ia("71-100"));
    }

    #[test]
    fn scmp_external_interface_down_reverses_path() {
        let dp = full_transit_path().to_dataplane().unwrap();
        let pkt = packet_with(dp);
        let r = router("71-10");
        let scmp = r.external_interface_down(&pkt, 21).unwrap();
        assert_eq!(scmp.dst.ia, ia("71-100"));
        assert_eq!(scmp.next_hdr, L4Protocol::Scmp);
        let msg = ScmpMessage::decode(&scmp.payload).unwrap();
        assert_eq!(
            msg,
            ScmpMessage::ExternalInterfaceDown {
                ia: ia("71-10"),
                interface: 21
            }
        );
    }
}

impl BorderRouter {
    /// SCMP traceroute handling: when the current hop field carries a
    /// router-alert flag for the interface the packet arrived on (or will
    /// leave by) and the payload is a `TracerouteRequest`, the router
    /// answers with a `TracerouteReply` naming itself and the interface,
    /// and consumes the probe.
    ///
    /// Alert flags are deliberately *outside* the hop-field MAC (as in the
    /// SCION specification), so the prober can set them on a path it
    /// received without invalidating it.
    pub fn traceroute_probe(&self, packet: &ScionPacket, ingress_ifid: u16) -> Option<ScionPacket> {
        if packet.next_hdr != L4Protocol::Scmp {
            return None;
        }
        let DataPlanePath::Scion(path) = &packet.path else {
            return None;
        };
        let hf = path.current_hop();
        // Traversal-direction mapping: the ingress alert refers to the
        // construction-direction ingress interface.
        let cons_dir = path.current_info().cons_dir;
        let (ingress_alerted, egress_alerted) = if cons_dir {
            (hf.ingress_alert, hf.egress_alert)
        } else {
            (hf.egress_alert, hf.ingress_alert)
        };
        if !(ingress_alerted || egress_alerted) {
            return None;
        }
        let msg = ScmpMessage::decode(&packet.payload).ok()?;
        let ScmpMessage::TracerouteRequest { id, seq } = msg else {
            return None;
        };
        let interface = if ingress_alerted {
            ingress_ifid
        } else {
            path.current_egress()
        };
        let (src, dst, rpath) = packet.reply_template()?;
        let reply = ScmpMessage::TracerouteReply {
            id,
            seq,
            ia: self.ia,
            interface: interface as u64,
        };
        Some(ScionPacket::new(
            src,
            dst,
            L4Protocol::Scmp,
            rpath,
            reply.encode(),
        ))
    }
}

#[cfg(test)]
mod traceroute_tests {
    use super::*;
    use scion_control::fullpath::{Direction, FullPath, PathKind, SegmentUse};
    use scion_control::segment::{AsSecrets, SegmentBuilder, SegmentType};
    use scion_proto::addr::{ia, HostAddr, ScionAddr};

    fn probe_packet(alert_hop: usize) -> ScionPacket {
        let mk = |s: &str| AsSecrets::derive(ia(s));
        let mut b = SegmentBuilder::originate(SegmentType::UpDown, 1_700_000_000, 0x99);
        b.extend(&mk("71-1"), 0, 11, &[]);
        b.extend(&mk("71-10"), 21, 22, &[]);
        b.extend(&mk("71-100"), 31, 0, &[]);
        let path = FullPath::assemble(
            ia("71-100"),
            ia("71-1"),
            PathKind::SingleSegment,
            vec![SegmentUse::whole(b.finish(), Direction::AgainstCons)],
        )
        .unwrap();
        let mut dp = path.to_dataplane().unwrap();
        dp.hops[alert_hop].ingress_alert = true;
        dp.hops[alert_hop].egress_alert = true;
        ScionPacket::new(
            ScionAddr::new(ia("71-100"), HostAddr::v4(1, 1, 1, 1)),
            ScionAddr::new(ia("71-1"), HostAddr::v4(2, 2, 2, 2)),
            L4Protocol::Scmp,
            DataPlanePath::Scion(dp),
            ScmpMessage::TracerouteRequest { id: 9, seq: 3 }.encode(),
        )
    }

    #[test]
    fn alerted_hop_answers() {
        // Walk the probe to hop 1 (71-10) and let it answer.
        let sec100 = AsSecrets::derive(ia("71-100"));
        let mut r100 = BorderRouter::new(sec100.ia, sec100.hop_key);
        let pkt = probe_packet(1);
        // The source's own hop is not alerted in this probe's target.
        assert!(r100.traceroute_probe(&pkt, 0).is_none() == (1 != 0));
        let Decision::Forward { packet, .. } = r100.process(pkt, 0, 1_700_000_100).unwrap() else {
            panic!("expected forward");
        };
        let sec10 = AsSecrets::derive(ia("71-10"));
        let r10 = BorderRouter::new(sec10.ia, sec10.hop_key);
        let reply = r10
            .traceroute_probe(&packet, 22)
            .expect("alerted hop answers");
        assert_eq!(reply.dst.ia, ia("71-100"));
        let msg = ScmpMessage::decode(&reply.payload).unwrap();
        assert_eq!(
            msg,
            ScmpMessage::TracerouteReply {
                id: 9,
                seq: 3,
                ia: ia("71-10"),
                interface: 22
            }
        );
    }

    #[test]
    fn unalerted_hop_stays_silent() {
        let sec100 = AsSecrets::derive(ia("71-100"));
        let r100 = BorderRouter::new(sec100.ia, sec100.hop_key.clone());
        let pkt = probe_packet(1); // alert on hop 1, not hop 0
        assert!(r100.traceroute_probe(&pkt, 0).is_none());
        // Non-SCMP packets never trigger replies even with alerts set.
        let mut udp = probe_packet(0);
        udp.next_hdr = L4Protocol::Udp;
        assert!(r100.traceroute_probe(&udp, 0).is_none());
    }

    #[test]
    fn alert_flags_do_not_break_mac_verification() {
        // The MAC must not cover the alert bits: the probe still forwards.
        let sec100 = AsSecrets::derive(ia("71-100"));
        let mut r100 = BorderRouter::new(sec100.ia, sec100.hop_key);
        let pkt = probe_packet(0);
        assert!(r100.process(pkt, 0, 1_700_000_100).is_ok());
    }
}

#[cfg(test)]
mod fastpath_tests {
    use super::tests::{full_transit_path, packet_to, packet_with, router, secrets};
    use super::*;
    use sciera_telemetry::Telemetry;
    use scion_proto::addr::{ia, HostAddr, ScionAddr};

    const NOW: u64 = 1_700_000_100;

    /// Runs one frame through the reference path (decode → process →
    /// encode) on `r_ref` and through the fast path on `r_fast`, asserting
    /// identical verdicts and identical output bytes, and returns the
    /// shared outcome.
    fn differential_step(
        r_ref: &mut BorderRouter,
        r_fast: &mut BorderRouter,
        frame: &mut Vec<u8>,
        ingress: u16,
        now: u64,
    ) -> Result<FrameDecision, FrameError> {
        let reference: Result<(FrameDecision, Vec<u8>), FrameError> =
            match ScionPacket::decode(frame) {
                Err(e) => Err(FrameError::Malformed(e.to_string())),
                Ok(pkt) => match r_ref.process(pkt, ingress, now) {
                    Ok(Decision::Deliver(p)) => Ok((FrameDecision::Deliver, p.encode().unwrap())),
                    Ok(Decision::Forward { ifid, packet }) => {
                        Ok((FrameDecision::Forward { ifid }, packet.encode().unwrap()))
                    }
                    Err(e) => Err(FrameError::Drop(e)),
                },
            };
        let fast = r_fast.process_frame(frame, ingress, now);
        match (&reference, &fast) {
            (Ok((want, want_bytes)), Ok(got)) => {
                assert_eq!(got, want, "verdict diverged");
                assert_eq!(frame, want_bytes, "output frame bytes diverged");
            }
            (Err(we), Err(ge)) => assert_eq!(ge, we, "error diverged"),
            other => panic!("reference/fast disagree: {other:?}"),
        }
        fast
    }

    #[test]
    fn fastpath_walk_is_byte_identical_to_reference() {
        let stations: [(&str, u16); 6] = [
            ("71-100", 0),
            ("71-10", 22),
            ("71-1", 11),
            ("71-2", 41),
            ("71-20", 23),
            ("71-200", 33),
        ];
        let pkt = packet_with(full_transit_path().to_dataplane().unwrap());
        let mut frame = pkt.encode().unwrap();
        for (as_str, ingress) in stations {
            let mut r_ref = router(as_str);
            let mut r_fast = router(as_str);
            let step = differential_step(&mut r_ref, &mut r_fast, &mut frame, ingress, NOW);
            assert!(step.is_ok(), "station {as_str}: {step:?}");
            // The fast path really did stay in place for these frames.
            assert_eq!(r_fast.processed, 1);
        }
        let delivered = ScionPacket::decode(&frame).unwrap();
        assert_eq!(delivered.payload, b"payload");
    }

    /// A mixed batch — valid frames (with duplicates), a corrupted frame,
    /// a trailing-byte frame, garbage and a traced packet — must match the
    /// per-frame fast path frame for frame: verdicts, output bytes,
    /// `processed`/`dropped` and every shared `router.*` counter.
    #[test]
    fn process_batch_matches_per_frame_path() {
        let tele_seq = Telemetry::quiet();
        let tele_batch = Telemetry::quiet();
        let mut r_seq = router("71-100");
        r_seq.set_telemetry(tele_seq.clone());
        let mut r_batch = router("71-100");
        r_batch.set_telemetry(tele_batch.clone());

        let valid = packet_with(full_transit_path().to_dataplane().unwrap())
            .encode()
            .unwrap();
        let mut traced_pkt = packet_with(full_transit_path().to_dataplane().unwrap());
        traced_pkt.trace = Some(TraceContext::root(7));
        let traced = traced_pkt.encode().unwrap();
        let mut trailing = valid.clone();
        trailing.push(0xaa);
        let mut corrupt = valid.clone();
        let n = corrupt.len();
        corrupt[n - 8] ^= 0x20; // inside the *last* hop's MAC: forwarded here
        let garbage = vec![0x5au8; 40];

        let mut frames_seq = vec![
            valid.clone(),
            valid.clone(),
            corrupt,
            trailing,
            garbage,
            traced,
            valid.clone(),
        ];
        let mut frames_batch = frames_seq.clone();

        let want: Vec<_> = frames_seq
            .iter_mut()
            .map(|f| r_seq.process_frame(f, 0, NOW))
            .collect();
        let got = r_batch.process_batch(&mut frames_batch, 0, NOW);
        assert_eq!(got, want, "verdicts diverged");
        assert_eq!(frames_batch, frames_seq, "output bytes diverged");
        assert_eq!(r_batch.processed, r_seq.processed);
        assert_eq!(r_batch.dropped, r_seq.dropped);

        let shared = |t: &Telemetry| {
            t.snapshot()
                .counters
                .into_iter()
                .filter(|(name, _)| {
                    name.starts_with("router.")
                        && !name.starts_with("router.maccache.")
                        && !name.starts_with("router.batch.")
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(shared(&tele_batch), shared(&tele_seq), "counter parity");

        let snap = tele_batch.snapshot();
        assert_eq!(snap.counter("router.batch.calls"), Some(1));
        assert_eq!(snap.counter("router.batch.frames"), Some(7));
        // Trailing-byte, garbage and traced frames peel to the fallback.
        assert_eq!(snap.counter("router.batch.peeled"), Some(3));
        // Three frames share the first valid frame's hop signature (the
        // corruption sits in a later hop), so one batched CMAC settles all.
        assert_eq!(snap.counter("router.batch.mac_dedup"), Some(3));
        assert_eq!(snap.counter("router.batch.mac_batched"), Some(1));
    }

    /// Batched BadMac and Expired verdicts match the per-frame path, and
    /// failed verifications never enter the MAC cache.
    #[test]
    fn process_batch_bad_mac_and_expired_match_per_frame() {
        // Wrong hop key: every valid frame fails its MAC.
        let wrong = secrets("71-99");
        let mut r_seq = BorderRouter::new(ia("71-100"), wrong.hop_key.clone());
        let mut r_batch = BorderRouter::new(ia("71-100"), wrong.hop_key);
        let valid = packet_with(full_transit_path().to_dataplane().unwrap())
            .encode()
            .unwrap();
        let mut frames_seq = vec![valid.clone(), valid.clone()];
        let mut frames_batch = frames_seq.clone();
        let want: Vec<_> = frames_seq
            .iter_mut()
            .map(|f| r_seq.process_frame(f, 0, NOW))
            .collect();
        let got = r_batch.process_batch(&mut frames_batch, 0, NOW);
        assert_eq!(got, want);
        assert!(matches!(got[0], Err(FrameError::Drop(DropReason::BadMac))));
        assert_eq!(frames_batch, frames_seq);
        assert_eq!(r_batch.mac_cache_len(), 0, "failed MACs must not be cached");

        // Expired hops drop in pass 3 without entering the MAC pass.
        let mut r_seq = router("71-100");
        let mut r_batch = router("71-100");
        let too_late = 1_700_000_000u64 + 60_000;
        let mut frames_seq = vec![valid.clone(), valid];
        let mut frames_batch = frames_seq.clone();
        let want: Vec<_> = frames_seq
            .iter_mut()
            .map(|f| r_seq.process_frame(f, 0, too_late))
            .collect();
        let got = r_batch.process_batch(&mut frames_batch, 0, too_late);
        assert_eq!(got, want);
        assert!(matches!(got[0], Err(FrameError::Drop(DropReason::Expired))));
        assert_eq!(frames_batch, frames_seq);
    }

    #[test]
    fn warm_cache_skips_cipher_and_agrees() {
        let tele = Telemetry::quiet();
        let mut r = router("71-100");
        r.set_telemetry(tele.clone());
        let pkt = packet_with(full_transit_path().to_dataplane().unwrap());
        let template = pkt.encode().unwrap();

        let mut first = template.clone();
        let d1 = r.process_frame(&mut first, 0, NOW).unwrap();
        let mut second = template.clone();
        let d2 = r.process_frame(&mut second, 0, NOW).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(first, second, "warm-cache rewrite must be identical");
        let snap = tele.snapshot();
        // First frame misses then fills; second hits for both hop checks.
        assert_eq!(snap.counter("router.maccache.hit"), Some(1));
        assert!(snap.counter("router.maccache.miss") >= Some(1));
        assert!(r.mac_cache_len() >= 1);

        // A cache reset restores the cold behaviour.
        r.reset_mac_cache();
        assert_eq!(r.mac_cache_len(), 0);
        let mut third = template.clone();
        assert_eq!(r.process_frame(&mut third, 0, NOW).unwrap(), d1);
        assert_eq!(third, first);
    }

    #[test]
    fn corrupted_frames_drop_identically() {
        // Flip every byte of the header region one at a time: fast path and
        // reference must agree on accept/drop/malformed every single time.
        let pkt = packet_with(full_transit_path().to_dataplane().unwrap());
        let template = pkt.encode().unwrap();
        for pos in 0..template.len() {
            let mut frame = template.clone();
            frame[pos] ^= 0x40;
            let mut r_ref = router("71-100");
            let mut r_fast = router("71-100");
            // Verdict agreement (Ok or any Err) is checked inside the helper.
            let _ = differential_step(&mut r_ref, &mut r_fast, &mut frame, 0, NOW);
            assert_eq!(r_ref.processed, r_fast.processed, "byte {pos}");
            assert_eq!(r_ref.dropped, r_fast.dropped, "byte {pos}");
        }
    }

    #[test]
    fn expired_and_wrong_ingress_drop_identically() {
        let pkt = packet_with(full_transit_path().to_dataplane().unwrap());
        let template = pkt.encode().unwrap();

        let mut frame = template.clone();
        let mut r = router("71-100");
        let too_late = 1_700_000_000u64 + 22_000;
        assert_eq!(
            r.process_frame(&mut frame, 0, too_late),
            Err(FrameError::Drop(DropReason::Expired))
        );

        // Forward once, then present the frame on the wrong interface.
        let mut frame = template.clone();
        router("71-100").process_frame(&mut frame, 0, NOW).unwrap();
        let mut r10 = router("71-10");
        assert_eq!(
            r10.process_frame(&mut frame, 27, NOW),
            Err(FrameError::Drop(DropReason::IngressMismatch {
                expected: 22,
                actual: 27
            }))
        );
    }

    #[test]
    fn traced_frames_fall_back_and_still_match_reference() {
        let tele = Telemetry::quiet();
        let mut pkt = packet_with(full_transit_path().to_dataplane().unwrap());
        pkt.trace = Some(TraceContext::root(42));
        let mut frame = pkt.encode().unwrap();
        let mut r_ref = router("71-100");
        let mut r_fast = router("71-100");
        r_fast.set_telemetry(tele.clone());
        let step = differential_step(&mut r_ref, &mut r_fast, &mut frame, 0, NOW);
        assert!(matches!(step, Ok(FrameDecision::Forward { .. })));
        let snap = tele.snapshot();
        assert_eq!(snap.counter("router.fastpath.fallback"), Some(1));
        assert_eq!(snap.counter("router.fastpath.hit"), Some(0));
        // The trace context advanced exactly once.
        let out = ScionPacket::decode(&frame).unwrap();
        assert_eq!(out.trace.unwrap().hop, 1);
    }

    #[test]
    fn malformed_frames_do_not_touch_router_state() {
        let mut r = router("71-100");
        let mut garbage = vec![0xde, 0xad, 0xbe, 0xef];
        match r.process_frame(&mut garbage, 0, NOW) {
            Err(FrameError::Malformed(_)) => {}
            other => panic!("expected malformed, got {other:?}"),
        }
        assert_eq!(
            r.processed, 0,
            "undecodable frames never count as processed"
        );
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn trailing_bytes_fall_back_to_reference_semantics() {
        let tele = Telemetry::quiet();
        let pkt = packet_with(full_transit_path().to_dataplane().unwrap());
        let mut frame = pkt.encode().unwrap();
        frame.push(0xcc); // decode tolerates, encode strips
        let mut r_ref = router("71-100");
        let mut r_fast = router("71-100");
        r_fast.set_telemetry(tele.clone());
        let step = differential_step(&mut r_ref, &mut r_fast, &mut frame, 0, NOW);
        assert!(matches!(step, Ok(FrameDecision::Forward { .. })));
        assert_eq!(tele.snapshot().counter("router.fastpath.fallback"), Some(1));
    }

    #[test]
    fn reserved_bits_fall_back_and_are_canonicalised() {
        // decode ignores reserved bits, encode zeroes them: such frames must
        // take the reference path so both paths emit the canonical frame.
        let tele = Telemetry::quiet();
        let pkt = packet_with(full_transit_path().to_dataplane().unwrap());
        let mut frame = pkt.encode().unwrap();
        frame[10] |= 0x40; // common-header RSV byte
        let mut r_ref = router("71-100");
        let mut r_fast = router("71-100");
        r_fast.set_telemetry(tele.clone());
        let step = differential_step(&mut r_ref, &mut r_fast, &mut frame, 0, NOW);
        assert!(matches!(step, Ok(FrameDecision::Forward { .. })));
        assert_eq!(frame[10], 0, "output frame must be canonical");
        let snap = tele.snapshot();
        assert_eq!(snap.counter("router.fastpath.fallback"), Some(1));
        assert_eq!(snap.counter("router.fastpath.hit"), Some(0));
    }

    #[test]
    fn empty_path_frames_processed_inline() {
        let tele = Telemetry::quiet();
        let local = ScionPacket::new(
            ScionAddr::new(ia("71-100"), HostAddr::v4(10, 0, 0, 1)),
            ScionAddr::new(ia("71-100"), HostAddr::v4(10, 0, 0, 2)),
            L4Protocol::Udp,
            DataPlanePath::Empty,
            b"local".to_vec(),
        );
        let mut r = router("71-100");
        r.set_telemetry(tele.clone());
        let mut frame = local.encode().unwrap();
        let before = frame.clone();
        assert_eq!(
            r.process_frame(&mut frame, 0, NOW),
            Ok(FrameDecision::Deliver)
        );
        assert_eq!(frame, before, "delivery leaves the frame untouched");

        let mut foreign = local.clone();
        foreign.dst.ia = ia("71-200");
        let mut frame = foreign.encode().unwrap();
        assert_eq!(
            r.process_frame(&mut frame, 0, NOW),
            Err(FrameError::Drop(DropReason::WrongDestination))
        );
        let snap = tele.snapshot();
        assert_eq!(snap.counter("router.fastpath.hit"), Some(2));
        assert_eq!(snap.counter("router.fastpath.fallback"), Some(0));
    }

    #[test]
    fn one_hop_frames_fall_back_to_unsupported() {
        use scion_proto::path::{HopField, InfoField};
        let pkt = ScionPacket::new(
            ScionAddr::new(ia("71-100"), HostAddr::v4(10, 0, 0, 1)),
            ScionAddr::new(ia("71-10"), HostAddr::v4(10, 0, 0, 2)),
            L4Protocol::Udp,
            DataPlanePath::OneHop {
                info: InfoField {
                    peering: false,
                    cons_dir: true,
                    seg_id: 1,
                    timestamp: 1_700_000_000,
                },
                first_hop: HopField {
                    ingress_alert: false,
                    egress_alert: false,
                    exp_time: 63,
                    cons_ingress: 0,
                    cons_egress: 7,
                    mac: [1, 2, 3, 4, 5, 6],
                },
                second_hop: HopField {
                    ingress_alert: false,
                    egress_alert: false,
                    exp_time: 0,
                    cons_ingress: 0,
                    cons_egress: 0,
                    mac: [0; 6],
                },
            },
            vec![],
        );
        let mut frame = pkt.encode().unwrap();
        let mut r = router("71-100");
        assert_eq!(
            r.process_frame(&mut frame, 0, NOW),
            Err(FrameError::Drop(DropReason::UnsupportedPath))
        );
        assert_eq!(r.processed, 1, "fallback still processes the packet");
    }

    #[test]
    fn peering_walk_is_byte_identical() {
        use scion_control::fullpath::{Direction, FullPath, PathKind, SegmentUse};
        use scion_control::segment::{SegmentBuilder, SegmentType};

        let ts = 1_700_000_000u32;
        let mut b = SegmentBuilder::originate(SegmentType::UpDown, ts, 0x1001);
        b.extend(&secrets("71-1"), 0, 11, &[]);
        b.extend(&secrets("71-10"), 21, 22, &[(ia("71-20"), 29, 39)]);
        b.extend(&secrets("71-100"), 31, 0, &[]);
        let up = b.finish();
        let mut b = SegmentBuilder::originate(SegmentType::UpDown, ts, 0x2002);
        b.extend(&secrets("71-2"), 0, 12, &[]);
        b.extend(&secrets("71-20"), 23, 24, &[(ia("71-10"), 39, 29)]);
        b.extend(&secrets("71-200"), 33, 0, &[]);
        let down = b.finish();
        let p = FullPath::assemble(
            ia("71-100"),
            ia("71-200"),
            PathKind::Peering,
            vec![
                SegmentUse {
                    segment: up.into(),
                    dir: Direction::AgainstCons,
                    from_idx: 1,
                    to_idx: 2,
                    peer_with: Some(ia("71-20")),
                },
                SegmentUse {
                    segment: down.into(),
                    dir: Direction::Cons,
                    from_idx: 1,
                    to_idx: 2,
                    peer_with: Some(ia("71-10")),
                },
            ],
        )
        .unwrap();
        let pkt = packet_to(p.to_dataplane().unwrap(), "71-200");
        let mut frame = pkt.encode().unwrap();
        let stations: [(&str, u16); 4] =
            [("71-100", 0), ("71-10", 22), ("71-20", 39), ("71-200", 33)];
        for (as_str, ingress) in stations {
            let mut r_ref = router(as_str);
            let mut r_fast = router(as_str);
            let step = differential_step(&mut r_ref, &mut r_fast, &mut frame, ingress, NOW);
            assert!(step.is_ok(), "station {as_str}: {step:?}");
        }
    }
}
