//! The dispatcherless host datapath (§4.8).
//!
//! After QUIC and mTCP normalised user-space networking, the project
//! "embraced a fully-in-user-space, dispatcherless future, where each
//! application opens its own UDP socket, over which it directly sends
//! SCION packets". With per-socket underlay ports, the NIC's Receive Side
//! Scaling hashes flows across queues/cores and no shared component sits on
//! the datapath.
//!
//! [`PortTable`] implements the port-allocation and demux logic;
//! [`run_dispatcherless_pipeline`] is the multi-queue counterpart of
//! [`crate::dispatcher::run_dispatcher_pipeline`] for the ablation bench.

use std::thread;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;

use scion_proto::encap::EPHEMERAL_PORT_START;

use crate::dispatcher::{synthetic_work, PipelineReport};

/// Per-host table of underlay ports owned by sockets.
#[derive(Debug, Default)]
pub struct PortTable {
    inner: RwLock<PortTableInner>,
}

#[derive(Debug, Default)]
struct PortTableInner {
    next_ephemeral: u16,
    bound: Vec<u16>,
}

impl PortTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PortTable {
            inner: RwLock::new(PortTableInner {
                next_ephemeral: EPHEMERAL_PORT_START,
                bound: Vec::new(),
            }),
        }
    }

    /// Binds a specific port; fails if taken.
    pub fn bind(&self, port: u16) -> Result<u16, String> {
        let mut t = self.inner.write();
        if t.bound.contains(&port) {
            return Err(format!("port {port} in use"));
        }
        t.bound.push(port);
        Ok(port)
    }

    /// Allocates the next free ephemeral port.
    pub fn bind_ephemeral(&self) -> Result<u16, String> {
        let mut t = self.inner.write();
        for _ in 0..u16::MAX {
            let candidate = t.next_ephemeral;
            t.next_ephemeral = t
                .next_ephemeral
                .checked_add(1)
                .unwrap_or(EPHEMERAL_PORT_START);
            if t.next_ephemeral < EPHEMERAL_PORT_START {
                t.next_ephemeral = EPHEMERAL_PORT_START;
            }
            if !t.bound.contains(&candidate) {
                t.bound.push(candidate);
                return Ok(candidate);
            }
        }
        Err("ephemeral port space exhausted".into())
    }

    /// Releases a port.
    pub fn release(&self, port: u16) {
        self.inner.write().bound.retain(|&p| p != port);
    }

    /// Whether a port is bound (the kernel-level demux check: with
    /// dispatcherless operation, the UDP port *is* the application).
    pub fn is_bound(&self, port: u16) -> bool {
        self.inner.read().bound.contains(&port)
    }

    /// Number of bound ports.
    pub fn len(&self) -> usize {
        self.inner.read().bound.len()
    }

    /// Whether no ports are bound.
    pub fn is_empty(&self) -> bool {
        self.inner.read().bound.is_empty()
    }
}

/// RSS: hash a flow tuple onto one of `queues` receive queues, as the NIC
/// does when every socket has its own UDP port.
pub fn rss_queue(src_port: u16, dst_port: u16, flow_id: u32, queues: usize) -> usize {
    // Toeplitz-flavoured mix; what matters is spreading distinct flows.
    let mut h = (src_port as u64) << 32 | (dst_port as u64) << 16 | flow_id as u64;
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    (h % queues as u64) as usize
}

/// Runs the dispatcherless pipeline: `producers` threads feed `queues`
/// parallel receive queues chosen by RSS; each queue drains into its
/// application directly. Compare with
/// [`crate::dispatcher::run_dispatcher_pipeline`], which funnels everything
/// through one thread.
pub fn run_dispatcherless_pipeline(
    producers: usize,
    queues: usize,
    packets_per_producer: u64,
    work_per_packet: u32,
) -> PipelineReport {
    let mut queue_txs: Vec<Sender<u16>> = Vec::new();
    let mut worker_handles = Vec::new();
    for _ in 0..queues {
        let (tx, rx): (Sender<u16>, Receiver<u16>) = bounded(1024);
        queue_txs.push(tx);
        worker_handles.push(thread::spawn(move || {
            let mut n = 0u64;
            while rx.recv().is_ok() {
                synthetic_work(work_per_packet);
                n += 1;
            }
            n
        }));
    }

    let mut prod_handles = Vec::new();
    for p in 0..producers {
        let txs = queue_txs.clone();
        prod_handles.push(thread::spawn(move || {
            let mut dropped = 0u64;
            for i in 0..packets_per_producer {
                let src = (p * 131) as u16;
                let dst = (i % 53) as u16;
                let q = rss_queue(src, dst, i as u32, txs.len());
                if txs[q].send(dst).is_err() {
                    dropped += 1;
                }
            }
            dropped
        }));
    }
    drop(queue_txs);
    let mut dropped = 0u64;
    for h in prod_handles {
        dropped += h.join().expect("producer panicked");
    }
    let delivered: u64 = worker_handles
        .into_iter()
        .map(|h| h.join().expect("worker panicked"))
        .sum();
    PipelineReport { delivered, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_specific_and_conflict() {
        let t = PortTable::new();
        assert_eq!(t.bind(443).unwrap(), 443);
        assert!(t.bind(443).is_err());
        assert!(t.is_bound(443));
        t.release(443);
        assert!(!t.is_bound(443));
        assert!(t.is_empty());
    }

    #[test]
    fn ephemeral_allocation_distinct() {
        let t = PortTable::new();
        let a = t.bind_ephemeral().unwrap();
        let b = t.bind_ephemeral().unwrap();
        assert_ne!(a, b);
        assert!(a >= EPHEMERAL_PORT_START);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rss_spreads_flows() {
        let queues = 8;
        let mut hits = vec![0usize; queues];
        for flow in 0..800u32 {
            let q = rss_queue(31000 + (flow % 100) as u16, 443, flow, queues);
            hits[q] += 1;
        }
        // Every queue sees traffic — the anti-bottleneck property.
        assert!(hits.iter().all(|&h| h > 0), "hits: {hits:?}");
    }

    #[test]
    fn rss_is_deterministic_per_flow() {
        assert_eq!(rss_queue(1, 2, 3, 8), rss_queue(1, 2, 3, 8));
    }

    #[test]
    fn pipeline_delivers_everything() {
        let r = run_dispatcherless_pipeline(4, 4, 200, 10);
        assert_eq!(r.delivered + r.dropped, 800);
    }

    #[test]
    fn parallel_pipeline_not_slower_than_funnel_at_scale() {
        // A smoke comparison (the real numbers live in the criterion
        // ablation): with per-packet work, 4 queues should finish a fixed
        // load at least as fast as the single dispatcher thread.
        use std::time::Instant;
        let t0 = Instant::now();
        crate::dispatcher::run_dispatcher_pipeline(4, 4, 2_000, 2_000);
        let funnel = t0.elapsed();
        let t1 = Instant::now();
        run_dispatcherless_pipeline(4, 4, 2_000, 2_000);
        let parallel = t1.elapsed();
        assert!(
            parallel <= funnel * 3,
            "parallel {parallel:?} should not be drastically slower than funnel {funnel:?}"
        );
    }
}
