//! The SCION data plane.
//!
//! * [`router`] — the border router: verifies the current hop field's
//!   AES-CMAC (the "efficient symmetric cryptographic operation" of §2),
//!   checks interfaces and expiry, advances the path pointers, handles
//!   segment crossings and peering hops, and builds SCMP notifications for
//!   failures. Raw frames take the in-place fast path
//!   ([`router::BorderRouter::process_frame`]); decoded packets use the
//!   reference path.
//! * [`maccache`] — the bounded LRU cache over successful hop-MAC
//!   verifications that lets repeated packets on a stable path skip the
//!   block cipher.
//! * [`dispatcher`] — the legacy shared end-host dispatcher of §4.8: one
//!   fixed UDP underlay port, demultiplexing to applications — a faithful
//!   recreation of a kernel socket in user space, and a deliberate
//!   bottleneck kept for the ablation benchmark.
//! * [`hostnet`] — the dispatcherless datapath §4.8 migrated to: each
//!   socket owns its own underlay port, so flows spread over receive queues
//!   (RSS) with no shared choke point.
//! * [`lightningfilter`] — the LightningFilter of §4.7.1/§4.9: line-rate
//!   per-AS packet authentication and rate limiting in front of a
//!   Science-DMZ.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatcher;
pub mod hostnet;
pub mod lightningfilter;
pub mod maccache;
pub mod router;

pub use maccache::{MacCache, MacCacheKey};
pub use router::{BorderRouter, Decision, DropReason, FrameDecision, FrameError};
