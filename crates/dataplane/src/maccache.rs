//! A bounded LRU cache over successful hop-field MAC verifications.
//!
//! AES-CMAC is the single most expensive operation on the forwarding hot
//! path. Packets of one flow carry the *same* hop field past the same
//! router for the lifetime of the path, so after one successful
//! verification the router can prove subsequent packets authentic with a
//! lookup instead of a block cipher.
//!
//! **Cache-key soundness.** The MAC is a deterministic function of the hop
//! key and the 16-byte input block `(beta, timestamp, exp_time,
//! cons_ingress, cons_egress)`. The cache key is that entire input *plus*
//! the 6-byte MAC being checked *plus* the key epoch. A hit therefore
//! replays a previous `MAC_epoch(input) == mac` result exactly:
//!
//! * `beta` is the *post-un-chaining* segment identifier, so the chained
//!   `seg_id ^= mac[0..2]` evolution along a segment is captured — a hop
//!   field spliced under a different accumulated beta misses the cache and
//!   fails the real verification.
//! * Including the claimed MAC itself means a tampered MAC over an
//!   otherwise-identical input can never alias a previous success.
//! * Including the epoch makes key rotation invalidate all entries without
//!   a flush.
//!
//! Expiry is deliberately *not* cached: it depends on `now` and stays a
//! cheap comparison in the router, performed before the cache is consulted.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use sciera_telemetry::{Counter, Telemetry};
use scion_crypto::mac::HopMacInput;

/// An FNV/Fx-style multiply-xor hasher for [`MacCacheKey`] lookups.
///
/// SipHash's flooding resistance buys nothing here: the only keys that ever
/// *enter* the map carry MACs that passed AES-CMAC verification, so an
/// attacker cannot choose colliding residents, and lookups with garbage keys
/// just miss — costing exactly the verification the router would do without
/// a cache. A two-instruction mix per word keeps the key hash off the
/// warm-path profile.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; shared with the router's per-batch
/// MAC-deduplication map.
pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Default number of verification results a router remembers.
pub const DEFAULT_MAC_CACHE_CAPACITY: usize = 4096;

/// Sentinel index for the intrusive LRU list.
const NONE: usize = usize::MAX;

/// Everything a cached verification result depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacCacheKey {
    /// Segment identifier the MAC was verified against (post un-chaining).
    pub beta: u16,
    /// Info-field timestamp.
    pub timestamp: u32,
    /// Hop-field expiry encoding.
    pub exp_time: u8,
    /// Construction-direction ingress interface.
    pub cons_ingress: u16,
    /// Construction-direction egress interface.
    pub cons_egress: u16,
    /// The 6-byte MAC that verified.
    pub mac: [u8; 6],
    /// Key epoch of the hop key that verified it.
    pub epoch: u32,
}

impl MacCacheKey {
    /// Assembles the key for one verification attempt.
    pub fn new(input: &HopMacInput, mac: [u8; 6], epoch: u32) -> Self {
        MacCacheKey {
            beta: input.beta,
            timestamp: input.timestamp,
            exp_time: input.exp_time,
            cons_ingress: input.cons_ingress,
            cons_egress: input.cons_egress,
            mac,
            epoch,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    key: MacCacheKey,
    prev: usize,
    next: usize,
}

/// A bounded LRU set of successful hop-MAC verifications.
///
/// Only *successful* verifications are cached — negative caching would let
/// an attacker evict useful entries with garbage, and failed MACs are not
/// on any legitimate hot path.
#[derive(Debug, Clone)]
pub struct MacCache {
    map: HashMap<MacCacheKey, usize, FxBuildHasher>,
    /// Slab of list nodes; indices are stable once allocated.
    entries: Vec<Entry>,
    /// Most-recently-used entry, or `NONE` when empty.
    head: usize,
    /// Least-recently-used entry, or `NONE` when empty.
    tail: usize,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl MacCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    /// Counters start on a quiet telemetry handle; attach a shared one with
    /// [`MacCache::set_telemetry`].
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let quiet = Telemetry::quiet();
        MacCache {
            map: HashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            entries: Vec::with_capacity(capacity),
            head: NONE,
            tail: NONE,
            capacity,
            hits: quiet.counter("router.maccache.hit"),
            misses: quiet.counter("router.maccache.miss"),
            evictions: quiet.counter("router.maccache.evict"),
        }
    }

    /// Re-registers the cache counters on a shared telemetry handle.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.hits = telemetry.counter("router.maccache.hit");
        self.misses = telemetry.counter("router.maccache.miss");
        self.evictions = telemetry.counter("router.maccache.evict");
    }

    /// Whether `key` has verified before. A hit refreshes the entry's LRU
    /// position; hit or miss, the corresponding counter moves.
    pub fn check(&mut self, key: &MacCacheKey) -> bool {
        if let Some(&idx) = self.map.get(key) {
            self.detach(idx);
            self.push_front(idx);
            self.hits.inc();
            true
        } else {
            self.misses.inc();
            false
        }
    }

    /// Records a successful verification, evicting the least-recently-used
    /// entry when full.
    pub fn remember(&mut self, key: MacCacheKey) {
        if let Some(&idx) = self.map.get(&key) {
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        self.remember_missed(key);
    }

    /// [`MacCache::remember`] for a key the caller has just seen
    /// [`MacCache::check`] miss on.
    ///
    /// The miss path used to hash the key three times — the failed lookup,
    /// `remember`'s own duplicate probe, and the insert. The router always
    /// calls `remember` immediately after a miss-then-verify, so the
    /// duplicate probe re-proves what the miss already established; this
    /// entry point skips it, leaving one hash for the insert.
    pub fn remember_missed(&mut self, key: MacCacheKey) {
        debug_assert!(
            !self.map.contains_key(&key),
            "remember_missed on a resident key"
        );
        let idx = if self.entries.len() < self.capacity {
            self.entries.push(Entry {
                key,
                prev: NONE,
                next: NONE,
            });
            self.entries.len() - 1
        } else {
            // Reuse the LRU slot.
            let idx = self.tail;
            self.detach(idx);
            self.map.remove(&self.entries[idx].key);
            self.evictions.inc();
            self.entries[idx].key = key;
            idx
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops all entries (counters are left untouched).
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.head = NONE;
        self.tail = NONE;
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NONE {
            self.entries[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NONE {
            self.entries[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.entries[idx].prev = NONE;
        self.entries[idx].next = NONE;
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NONE;
        self.entries[idx].next = self.head;
        if self.head != NONE {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u16) -> MacCacheKey {
        MacCacheKey {
            beta: n,
            timestamp: 1_700_000_000,
            exp_time: 63,
            cons_ingress: 1,
            cons_egress: 2,
            mac: [n as u8; 6],
            epoch: 1,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut c = MacCache::new(8);
        assert!(!c.check(&key(1)));
        c.remember(key(1));
        assert!(c.check(&key(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn any_field_changes_the_key() {
        let base = key(1);
        let mut c = MacCache::new(8);
        c.remember(base);
        let variants = [
            MacCacheKey {
                beta: base.beta ^ 1,
                ..base
            },
            MacCacheKey {
                timestamp: base.timestamp + 1,
                ..base
            },
            MacCacheKey {
                exp_time: base.exp_time + 1,
                ..base
            },
            MacCacheKey {
                cons_ingress: 9,
                ..base
            },
            MacCacheKey {
                cons_egress: 9,
                ..base
            },
            MacCacheKey {
                mac: [0xff; 6],
                ..base
            },
            MacCacheKey {
                epoch: base.epoch + 1,
                ..base
            },
        ];
        for v in variants {
            assert!(!c.check(&v), "{v:?} aliased the cached key");
        }
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = MacCache::new(3);
        c.remember(key(1));
        c.remember(key(2));
        c.remember(key(3));
        // Touch 1 so 2 becomes the LRU.
        assert!(c.check(&key(1)));
        c.remember(key(4)); // evicts 2
        assert_eq!(c.len(), 3);
        assert!(c.check(&key(1)));
        assert!(!c.check(&key(2)));
        assert!(c.check(&key(3)));
        assert!(c.check(&key(4)));
    }

    #[test]
    fn eviction_counter_moves() {
        let tele = Telemetry::quiet();
        let mut c = MacCache::new(2);
        c.set_telemetry(&tele);
        for n in 0..5 {
            c.remember(key(n));
        }
        let snap = tele.snapshot();
        assert_eq!(snap.counter("router.maccache.evict"), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remember_is_idempotent_and_refreshes() {
        let mut c = MacCache::new(2);
        c.remember(key(1));
        c.remember(key(2));
        c.remember(key(1)); // refresh, no growth
        assert_eq!(c.len(), 2);
        c.remember(key(3)); // evicts 2 (LRU), not 1
        assert!(c.check(&key(1)));
        assert!(!c.check(&key(2)));
    }

    #[test]
    fn remember_missed_matches_remember() {
        let mut a = MacCache::new(3);
        let mut b = MacCache::new(3);
        for n in 0..6 {
            assert!(!a.check(&key(n)));
            a.remember_missed(key(n));
            assert!(!b.check(&key(n)));
            b.remember(key(n));
        }
        for n in 0..6 {
            assert_eq!(a.check(&key(n)), b.check(&key(n)), "key {n}");
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn clear_resets() {
        let mut c = MacCache::new(4);
        c.remember(key(1));
        c.clear();
        assert!(c.is_empty());
        assert!(!c.check(&key(1)));
        c.remember(key(1));
        assert!(c.check(&key(1)));
    }

    #[test]
    fn stress_against_reference_model() {
        // Pseudo-random op stream checked against a vector-based LRU model.
        let mut c = MacCache::new(16);
        let mut model: Vec<MacCacheKey> = Vec::new(); // MRU at end
        let mut x = 0x1234_5678u32;
        for _ in 0..10_000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let k = key((x >> 16) as u16 % 48);
            if x & 1 == 0 {
                let expect = model.iter().any(|m| *m == k);
                let got = c.check(&k);
                assert_eq!(got, expect, "check({k:?})");
                if expect {
                    model.retain(|m| *m != k);
                    model.push(k);
                }
            } else {
                model.retain(|m| *m != k);
                model.push(k);
                if model.len() > 16 {
                    model.remove(0);
                }
                c.remember(k);
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
