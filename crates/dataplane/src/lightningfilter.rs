//! LightningFilter: line-rate SCION traffic filtering (§4.7.1, §4.9).
//!
//! The paper's Science-DMZ pairs the border router with LightningFilter, an
//! open-source firewall that authenticates and rate-limits SCION traffic at
//! 100 Gbps on commodity hardware — addressing the concern that legacy
//! firewalls cannot inspect SCION traffic beyond the outer IP-UDP
//! encapsulation.
//!
//! The filter's per-packet work is deliberately tiny and stateless-ish:
//!
//! 1. **Authentication**: a DRKey-style per-(source AS → local AS)
//!    symmetric key authenticates a packet tag (AES-CMAC over a header
//!    digest) — no per-flow state, no certificate operations on the fast
//!    path.
//! 2. **Rate limiting**: a token bucket per source AS (plus a catch-all
//!    bucket for unauthenticated "best effort" traffic).

use sciera_telemetry::{Counter, Telemetry};
use scion_crypto::cmac::Cmac;
use scion_crypto::hmac::derive_key16;
use scion_proto::addr::IsdAsn;

/// Verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Authenticated and within rate: pass to the protected network.
    Accept,
    /// Valid authentication but the source AS exceeded its rate.
    RateLimited,
    /// Missing or invalid authentication tag: best-effort class.
    BestEffort,
    /// Best-effort class is over its budget: drop.
    Dropped,
}

/// A token bucket (tokens are bytes).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last_refill: f64,
}

impl TokenBucket {
    /// Creates a bucket holding up to `capacity` bytes, refilled at
    /// `refill_per_sec` bytes/second, starting full.
    pub fn new(capacity: f64, refill_per_sec: f64) -> Self {
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_sec,
            last_refill: 0.0,
        }
    }

    /// Takes `bytes` at time `now` (seconds); returns whether it fit.
    pub fn take(&mut self, bytes: f64, now: f64) -> bool {
        if now > self.last_refill {
            self.tokens =
                (self.tokens + (now - self.last_refill) * self.refill_per_sec).min(self.capacity);
            self.last_refill = now;
        }
        if self.tokens >= bytes {
            self.tokens -= bytes;
            true
        } else {
            false
        }
    }
}

/// Minimal per-packet metadata the filter needs (pre-parsed by the NIC/RX
/// stage; the filter never touches the payload).
#[derive(Debug, Clone, Copy)]
pub struct PacketMeta {
    /// Source AS of the packet.
    pub src_ia: IsdAsn,
    /// Packet length in bytes (for rate accounting).
    pub length: u32,
    /// Digest of the immutable header fields, as tagged by the sender.
    pub header_digest: [u8; 16],
    /// The authentication tag, if present.
    pub auth_tag: Option<[u8; 6]>,
}

/// Per-source-AS filter configuration.
#[derive(Debug, Clone, Copy)]
pub struct PeerBudget {
    /// Sustained rate in bytes/second.
    pub rate: f64,
    /// Burst capacity in bytes.
    pub burst: f64,
}

/// The filter.
pub struct LightningFilter {
    local_ia: IsdAsn,
    secret: Vec<u8>,
    peers: Vec<(IsdAsn, Cmac, TokenBucket)>,
    best_effort: TokenBucket,
    /// Counters by verdict, in [accept, rate-limited, best-effort, dropped]
    /// order.
    pub counters: [u64; 4],
    /// Telemetry counters in the same verdict order.
    verdict_counters: [Counter; 4],
}

impl LightningFilter {
    /// Creates a filter for `local_ia` with an AS-local master secret and a
    /// best-effort budget.
    pub fn new(local_ia: IsdAsn, secret: &[u8], best_effort: PeerBudget) -> Self {
        LightningFilter {
            local_ia,
            secret: secret.to_vec(),
            peers: Vec::new(),
            best_effort: TokenBucket::new(best_effort.burst, best_effort.rate),
            counters: [0; 4],
            verdict_counters: Self::register(&Telemetry::quiet()),
        }
    }

    fn register(telemetry: &Telemetry) -> [Counter; 4] {
        [
            telemetry.counter("lf.accept"),
            telemetry.counter("lf.rate_limited"),
            telemetry.counter("lf.best_effort"),
            telemetry.counter("lf.dropped"),
        ]
    }

    /// Re-registers the filter's verdict counters on a shared handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.verdict_counters = Self::register(&telemetry);
    }

    /// The DRKey-style key for traffic from `src` to this AS, derivable by
    /// both ends without per-flow state.
    pub fn drkey_for(local_ia: IsdAsn, secret: &[u8], src: IsdAsn) -> [u8; 16] {
        let mut label = b"lf-drkey:".to_vec();
        label.extend_from_slice(&local_ia.to_u64().to_be_bytes());
        label.extend_from_slice(&src.to_u64().to_be_bytes());
        derive_key16(secret, &label)
    }

    /// Authorises a peer AS with a rate budget.
    pub fn add_peer(&mut self, src: IsdAsn, budget: PeerBudget) {
        let key = Self::drkey_for(self.local_ia, &self.secret, src);
        self.peers.retain(|(ia, _, _)| *ia != src);
        self.peers.push((
            src,
            Cmac::new(&key),
            TokenBucket::new(budget.burst, budget.rate),
        ));
    }

    /// Computes the tag a sender in `src` attaches (the sender-side half,
    /// used by tests and by the Hercules sender).
    pub fn sender_tag(
        local_ia: IsdAsn,
        secret: &[u8],
        src: IsdAsn,
        header_digest: &[u8; 16],
    ) -> [u8; 6] {
        let key = Self::drkey_for(local_ia, secret, src);
        Cmac::new(&key).tag6(header_digest)
    }

    /// Filters one packet at time `now` (seconds).
    pub fn check(&mut self, pkt: &PacketMeta, now: f64) -> Verdict {
        let v = self.check_inner(pkt, now);
        let idx = match v {
            Verdict::Accept => 0,
            Verdict::RateLimited => 1,
            Verdict::BestEffort => 2,
            Verdict::Dropped => 3,
        };
        self.counters[idx] += 1;
        self.verdict_counters[idx].inc();
        v
    }

    fn check_inner(&mut self, pkt: &PacketMeta, now: f64) -> Verdict {
        if let Some(tag) = &pkt.auth_tag {
            if let Some((_, cmac, bucket)) =
                self.peers.iter_mut().find(|(ia, _, _)| *ia == pkt.src_ia)
            {
                if scion_crypto::ct_eq(&cmac.tag6(&pkt.header_digest), tag) {
                    return if bucket.take(pkt.length as f64, now) {
                        Verdict::Accept
                    } else {
                        Verdict::RateLimited
                    };
                }
            }
        }
        if self.best_effort.take(pkt.length as f64, now) {
            Verdict::BestEffort
        } else {
            Verdict::Dropped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_proto::addr::ia;

    const SECRET: &[u8] = b"kaust-dmz-secret";

    fn filter() -> LightningFilter {
        let mut f = LightningFilter::new(
            ia("71-50999"),
            SECRET,
            PeerBudget {
                rate: 1_000.0,
                burst: 2_000.0,
            },
        );
        f.add_peer(
            ia("71-2:0:3b"),
            PeerBudget {
                rate: 1e6,
                burst: 1e6,
            },
        );
        f
    }

    fn authed_packet(src: &str, len: u32) -> PacketMeta {
        let digest = [7u8; 16];
        PacketMeta {
            src_ia: ia(src),
            length: len,
            header_digest: digest,
            auth_tag: Some(LightningFilter::sender_tag(
                ia("71-50999"),
                SECRET,
                ia(src),
                &digest,
            )),
        }
    }

    #[test]
    fn authenticated_traffic_accepted() {
        let mut f = filter();
        let pkt = authed_packet("71-2:0:3b", 1500);
        assert_eq!(f.check(&pkt, 0.0), Verdict::Accept);
        assert_eq!(f.counters[0], 1);
    }

    #[test]
    fn forged_tag_demoted_to_best_effort() {
        let mut f = filter();
        let mut pkt = authed_packet("71-2:0:3b", 1500);
        pkt.auth_tag = Some([0; 6]);
        assert_eq!(f.check(&pkt, 0.0), Verdict::BestEffort);
    }

    #[test]
    fn unknown_source_is_best_effort_then_dropped() {
        let mut f = filter();
        let pkt = authed_packet("71-31337", 1500); // not a configured peer
        assert_eq!(f.check(&pkt, 0.0), Verdict::BestEffort);
        // Exhaust the 2000-byte best-effort burst.
        assert_eq!(f.check(&pkt, 0.0), Verdict::Dropped);
        assert_eq!(f.counters[3], 1);
    }

    #[test]
    fn rate_limit_enforced_and_recovers() {
        let mut f = LightningFilter::new(
            ia("71-50999"),
            SECRET,
            PeerBudget {
                rate: 0.0,
                burst: 0.0,
            },
        );
        f.add_peer(
            ia("71-2:0:3b"),
            PeerBudget {
                rate: 1_000.0,
                burst: 1_500.0,
            },
        );
        let pkt = authed_packet("71-2:0:3b", 1_500);
        assert_eq!(f.check(&pkt, 0.0), Verdict::Accept);
        assert_eq!(f.check(&pkt, 0.0), Verdict::RateLimited);
        // After 1.5 seconds, 1500 bytes refilled.
        assert_eq!(f.check(&pkt, 1.5), Verdict::Accept);
    }

    #[test]
    fn drkey_differs_per_source() {
        let a = LightningFilter::drkey_for(ia("71-50999"), SECRET, ia("71-1"));
        let b = LightningFilter::drkey_for(ia("71-50999"), SECRET, ia("71-2"));
        assert_ne!(a, b);
    }

    #[test]
    fn token_bucket_caps_at_capacity() {
        let mut b = TokenBucket::new(100.0, 1_000.0);
        assert!(b.take(100.0, 0.0));
        assert!(!b.take(1.0, 0.0));
        // A long idle period refills to capacity, not beyond.
        assert!(b.take(100.0, 100.0));
        assert!(!b.take(1.0, 100.0));
    }

    #[test]
    fn attack_mix_does_not_starve_authenticated_traffic() {
        // The §4.7.1 property: unauthenticated floods burn the best-effort
        // bucket, never the per-peer authenticated budgets.
        let mut f = filter();
        let attack = PacketMeta {
            src_ia: ia("71-666"),
            length: 1500,
            header_digest: [0; 16],
            auth_tag: None,
        };
        for _ in 0..100 {
            f.check(&attack, 0.0);
        }
        let good = authed_packet("71-2:0:3b", 1500);
        assert_eq!(f.check(&good, 0.0), Verdict::Accept);
    }
}
