//! The legacy shared dispatcher (§4.8).
//!
//! Early SCION end-host stacks ran a background process listening on one
//! fixed UDP underlay port (30041) and demultiplexing incoming SCION
//! traffic to applications over Unix domain sockets — "a faithful
//! recreation of what a kernel socket might do, just in user space". The
//! paper recounts how this became a bottleneck: its processing capacity is
//! shared across all SCION applications, and because all traffic arrives on
//! a single port, Receive Side Scaling cannot spread it over cores.
//!
//! This module keeps both faces of that story:
//!
//! * [`Dispatcher`] — the demultiplexing logic itself (registration table,
//!   per-packet lookup), used by the daemon-era host stack.
//! * [`run_dispatcher_pipeline`] — a thread-backed pipeline that measures
//!   the shared-bottleneck behaviour for the §4.8 ablation bench: however
//!   many applications exist, every packet funnels through one dispatcher
//!   thread.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::thread;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use sciera_telemetry::{Counter, Event, Gauge, Severity, Telemetry};

use scion_proto::encap::DISPATCHER_PORT;
use scion_proto::packet::{L4Protocol, ScionPacket};
use scion_proto::udp::UdpDatagram;

/// An application registration handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub u32);

/// The demultiplexing table of the legacy dispatcher.
#[derive(Debug)]
pub struct Dispatcher {
    /// (udp port → application), guarded as the real dispatcher's table is.
    table: Mutex<Vec<(u16, AppId)>>,
    /// Packets that matched a registration.
    pub delivered: Mutex<u64>,
    /// Packets with no registered listener.
    pub no_listener: Mutex<u64>,
    lookups: Counter,
    misses: Counter,
    telemetry: Telemetry,
}

impl Default for Dispatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Dispatcher {
    /// Creates an empty dispatcher on a quiet private telemetry handle.
    pub fn new() -> Self {
        let telemetry = Telemetry::quiet();
        Dispatcher {
            table: Mutex::new(Vec::new()),
            delivered: Mutex::new(0),
            no_listener: Mutex::new(0),
            lookups: telemetry.counter("dispatcher.lookups"),
            misses: telemetry.counter("dispatcher.misses"),
            telemetry,
        }
    }

    /// Re-registers the dispatcher's counters on a shared telemetry handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.lookups = telemetry.counter("dispatcher.lookups");
        self.misses = telemetry.counter("dispatcher.misses");
        self.telemetry = telemetry;
    }

    /// The single underlay port the dispatcher binds.
    pub fn underlay_port() -> u16 {
        DISPATCHER_PORT
    }

    /// Registers `app` for UDP/SCION destination port `port`. Fails if the
    /// port is taken.
    pub fn register(&self, port: u16, app: AppId) -> Result<(), String> {
        let mut t = self.table.lock();
        if t.iter().any(|(p, _)| *p == port) {
            return Err(format!("port {port} already registered"));
        }
        t.push((port, app));
        Ok(())
    }

    /// Removes a registration.
    pub fn unregister(&self, port: u16) {
        self.table.lock().retain(|(p, _)| *p != port);
    }

    /// [`Dispatcher::dispatch`] with a simulation timestamp: a traced packet
    /// gets a final `pkt.dispatch` span attributed to the dispatcher — the
    /// last custody change before the application — so per-hop attribution
    /// covers the legacy host stack too.
    pub fn dispatch_at(&self, packet: &ScionPacket, node: &str, sim_ns: u64) -> Option<AppId> {
        if let Some(ctx) = packet.trace.map(|c| c.child()) {
            if self.telemetry.enabled(Severity::Trace) {
                self.telemetry.emit(
                    Event::new(sim_ns, node, "dispatcher", Severity::Trace, "pkt.dispatch")
                        .field("trace_id", ctx.trace_id)
                        .field("span_id", ctx.span_id)
                        .field("parent_span_id", ctx.parent_span_id)
                        .field("hop", ctx.hop),
                );
            }
        }
        self.dispatch(packet)
    }

    /// Demultiplexes one SCION packet to an application by UDP destination
    /// port. SCMP packets go to the app registered for the echo identifier
    /// (modelled as a port).
    pub fn dispatch(&self, packet: &ScionPacket) -> Option<AppId> {
        self.lookups.inc();
        let port = match packet.next_hdr {
            L4Protocol::Udp => UdpDatagram::decode(&packet.payload).ok()?.dst_port,
            L4Protocol::Scmp => {
                // Echo replies carry the sender's id; the real dispatcher
                // keeps an SCMP id table. Reuse the port table keyed by id.
                let msg = scion_proto::scmp::ScmpMessage::decode(&packet.payload).ok()?;
                match msg {
                    scion_proto::scmp::ScmpMessage::EchoReply { id, .. } => id,
                    scion_proto::scmp::ScmpMessage::EchoRequest { id, .. } => id,
                    _ => 0,
                }
            }
            _ => return None,
        };
        let t = self.table.lock();
        let hit = t.iter().find(|(p, _)| *p == port).map(|(_, a)| *a);
        drop(t);
        match hit {
            Some(a) => {
                *self.delivered.lock() += 1;
                Some(a)
            }
            None => {
                *self.no_listener.lock() += 1;
                self.misses.inc();
                None
            }
        }
    }
}

/// Default bound on queued frames per ingress shard.
pub const DEFAULT_SHARD_CAPACITY: usize = 4096;

/// Sharded per-interface ingress queues with round-robin batch drain.
///
/// The batched router pipeline wants its input grouped: every frame in one
/// `process_batch` call shares an ingress interface, so the classify pass
/// runs one ingress check and the MAC pass dedups within traffic that
/// plausibly shares flows. `IngressShards` provides that grouping — one
/// bounded FIFO per key (an interface, or `(AS, interface)` at the network
/// level) — and a drain cursor that rotates across non-empty shards so a
/// single busy interface cannot starve the others.
///
/// Bounded shards drop at enqueue (tail drop), mirroring a real NIC ring.
#[derive(Debug, Clone)]
pub struct IngressShards<K> {
    shards: Vec<(K, VecDeque<Vec<u8>>)>,
    index: HashMap<K, usize>,
    /// Next shard the drain cursor will inspect.
    cursor: usize,
    capacity_per_shard: usize,
    queued: usize,
    enqueued: Counter,
    dropped: Counter,
    batches: Counter,
    depth_watermark: Gauge,
    depth: Gauge,
}

impl<K: Eq + Hash + Clone> Default for IngressShards<K> {
    fn default() -> Self {
        IngressShards::new(DEFAULT_SHARD_CAPACITY)
    }
}

impl<K: Eq + Hash + Clone> IngressShards<K> {
    /// Creates an empty shard set holding at most `capacity_per_shard`
    /// frames per key (minimum 1). Counters start on a quiet telemetry
    /// handle; attach a shared one with [`IngressShards::set_telemetry`].
    pub fn new(capacity_per_shard: usize) -> Self {
        let quiet = Telemetry::quiet();
        IngressShards {
            shards: Vec::new(),
            index: HashMap::new(),
            cursor: 0,
            capacity_per_shard: capacity_per_shard.max(1),
            queued: 0,
            enqueued: quiet.counter("dispatcher.shard.enqueued"),
            dropped: quiet.counter("dispatcher.shard.dropped"),
            batches: quiet.counter("dispatcher.shard.batches"),
            depth_watermark: quiet.gauge("dispatcher.shard.depth_watermark"),
            depth: quiet.gauge("dispatcher.shard.depth"),
        }
    }

    /// Re-registers the shard counters on a shared telemetry handle.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.enqueued = telemetry.counter("dispatcher.shard.enqueued");
        self.dropped = telemetry.counter("dispatcher.shard.dropped");
        self.batches = telemetry.counter("dispatcher.shard.batches");
        self.depth_watermark = telemetry.gauge("dispatcher.shard.depth_watermark");
        self.depth = telemetry.gauge("dispatcher.shard.depth");
        self.depth_watermark.set_max(self.queued as u64);
        self.depth.set(self.queued as u64);
    }

    /// Queues one frame on the shard for `key`, creating the shard on first
    /// use. Returns `false` (frame dropped) when the shard is full.
    pub fn enqueue(&mut self, key: K, frame: Vec<u8>) -> bool {
        let idx = match self.index.get(&key) {
            Some(&idx) => idx,
            None => {
                let idx = self.shards.len();
                self.shards.push((key.clone(), VecDeque::with_capacity(16)));
                self.index.insert(key, idx);
                idx
            }
        };
        let queue = &mut self.shards[idx].1;
        if queue.len() >= self.capacity_per_shard {
            self.dropped.inc();
            return false;
        }
        queue.push_back(frame);
        self.queued += 1;
        self.enqueued.inc();
        self.depth_watermark.set_max(self.queued as u64);
        self.depth.set(self.queued as u64);
        true
    }

    /// Drains up to `max` frames from the next non-empty shard in
    /// round-robin order into `out` (cleared first). Returns the shard's
    /// key, or `None` when every shard is empty.
    ///
    /// The cursor always moves past the drained shard before returning, so
    /// repeated calls rotate across all backlogged shards even when one of
    /// them refills faster than it drains.
    pub fn drain_next(&mut self, max: usize, out: &mut Vec<Vec<u8>>) -> Option<K> {
        out.clear();
        if self.queued == 0 || self.shards.is_empty() || max == 0 {
            return None;
        }
        let n = self.shards.len();
        for step in 0..n {
            let idx = (self.cursor + step) % n;
            let (key, queue) = &mut self.shards[idx];
            if queue.is_empty() {
                continue;
            }
            let take = queue.len().min(max);
            out.extend(queue.drain(..take));
            self.queued -= take;
            self.depth.set(self.queued as u64);
            self.batches.inc();
            let key = key.clone();
            self.cursor = (idx + 1) % n;
            return Some(key);
        }
        None
    }

    /// Total frames currently queued across all shards.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Whether no frames are queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Number of shards ever touched (including currently empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// Output of a pipeline run (dispatcher or dispatcherless) for the ablation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineReport {
    /// Packets delivered to application queues.
    pub delivered: u64,
    /// Packets dropped because a queue was full (the bottleneck signature).
    pub dropped: u64,
}

/// Runs `packets` raw frames from `producers` producer threads through ONE
/// dispatcher thread into per-app queues — the shared-bottleneck topology
/// of the legacy stack. `work_per_packet` simulates per-packet processing
/// cost (header parse + table lookup) in synthetic work units.
pub fn run_dispatcher_pipeline(
    producers: usize,
    apps: usize,
    packets_per_producer: u64,
    work_per_packet: u32,
) -> PipelineReport {
    let (ingress_tx, ingress_rx): (Sender<u16>, Receiver<u16>) = bounded(1024);
    let mut app_txs = Vec::new();
    let mut app_handles = Vec::new();
    for _ in 0..apps {
        let (tx, rx): (Sender<u16>, Receiver<u16>) = bounded(1024);
        app_txs.push(tx);
        app_handles.push(thread::spawn(move || {
            let mut n = 0u64;
            while rx.recv().is_ok() {
                n += 1;
            }
            n
        }));
    }

    // The single dispatcher thread: every packet crosses it.
    let dispatcher = thread::spawn(move || {
        let mut dropped = 0u64;
        while let Ok(port) = ingress_rx.recv() {
            synthetic_work(work_per_packet);
            let app = (port as usize) % app_txs.len();
            if app_txs[app].try_send(port).is_err() {
                dropped += 1;
            }
        }
        dropped
    });

    let mut prod_handles = Vec::new();
    for p in 0..producers {
        let tx = ingress_tx.clone();
        prod_handles.push(thread::spawn(move || {
            for i in 0..packets_per_producer {
                let port = (p as u64 * 31 + i) as u16;
                // Blocking send: producers stall behind the dispatcher,
                // which is exactly the §4.8 observation.
                if tx.send(port).is_err() {
                    break;
                }
            }
        }));
    }
    drop(ingress_tx);
    for h in prod_handles {
        h.join().expect("producer panicked");
    }
    let dropped = dispatcher.join().expect("dispatcher panicked");
    let delivered: u64 = app_handles
        .into_iter()
        .map(|h| h.join().expect("app panicked"))
        .sum();
    PipelineReport { delivered, dropped }
}

/// Burns deterministic CPU proportional to `units` (stand-in for packet
/// parsing work; kept opaque so the optimiser cannot remove it).
pub fn synthetic_work(units: u32) -> u64 {
    let mut acc = 0x9e3779b97f4a7c15u64;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
    }
    std::hint::black_box(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_proto::addr::{ia, HostAddr, ScionAddr};
    use scion_proto::packet::DataPlanePath;

    fn udp_packet(dst_port: u16) -> ScionPacket {
        ScionPacket::new(
            ScionAddr::new(ia("71-1"), HostAddr::v4(1, 1, 1, 1)),
            ScionAddr::new(ia("71-2"), HostAddr::v4(2, 2, 2, 2)),
            L4Protocol::Udp,
            DataPlanePath::Empty,
            UdpDatagram::new(5000, dst_port, b"x".to_vec()).encode(),
        )
    }

    #[test]
    fn register_and_dispatch() {
        let d = Dispatcher::new();
        d.register(8080, AppId(1)).unwrap();
        d.register(9090, AppId(2)).unwrap();
        assert_eq!(d.dispatch(&udp_packet(8080)), Some(AppId(1)));
        assert_eq!(d.dispatch(&udp_packet(9090)), Some(AppId(2)));
        assert_eq!(d.dispatch(&udp_packet(7070)), None);
        assert_eq!(*d.delivered.lock(), 2);
        assert_eq!(*d.no_listener.lock(), 1);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let d = Dispatcher::new();
        d.register(8080, AppId(1)).unwrap();
        assert!(d.register(8080, AppId(2)).is_err());
        d.unregister(8080);
        d.register(8080, AppId(2)).unwrap();
        assert_eq!(d.dispatch(&udp_packet(8080)), Some(AppId(2)));
    }

    #[test]
    fn scmp_echo_dispatched_by_id() {
        let d = Dispatcher::new();
        d.register(77, AppId(9)).unwrap();
        let msg = scion_proto::scmp::ScmpMessage::EchoReply {
            id: 77,
            seq: 1,
            data: vec![],
        };
        let pkt = ScionPacket::new(
            ScionAddr::new(ia("71-1"), HostAddr::v4(1, 1, 1, 1)),
            ScionAddr::new(ia("71-2"), HostAddr::v4(2, 2, 2, 2)),
            L4Protocol::Scmp,
            DataPlanePath::Empty,
            msg.encode(),
        );
        assert_eq!(d.dispatch(&pkt), Some(AppId(9)));
    }

    #[test]
    #[cfg(feature = "trace")]
    fn dispatch_at_emits_trace_span_for_traced_packets() {
        let tele = Telemetry::with_severity(Severity::Trace);
        let mut d = Dispatcher::new();
        d.set_telemetry(tele.clone());
        d.register(8080, AppId(1)).unwrap();
        let mut pkt = udp_packet(8080);
        pkt.trace = Some(scion_proto::trace::TraceContext::root(3));
        assert_eq!(d.dispatch_at(&pkt, "host-b", 50), Some(AppId(1)));
        // Untraced packets dispatch silently.
        assert_eq!(
            d.dispatch_at(&udp_packet(8080), "host-b", 60),
            Some(AppId(1))
        );
        let events = tele.flight_recorder().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "pkt.dispatch");
        assert!(events[0].fields.iter().any(|(k, v)| k == "hop" && v == "1"));
    }

    #[test]
    fn malformed_payload_not_dispatched() {
        let d = Dispatcher::new();
        d.register(8080, AppId(1)).unwrap();
        let mut pkt = udp_packet(8080);
        pkt.payload = vec![1, 2, 3]; // truncated UDP
        assert_eq!(d.dispatch(&pkt), None);
    }

    #[test]
    fn ingress_shards_round_robin_fairness() {
        let mut shards: IngressShards<u16> = IngressShards::new(64);
        // Interface 1 is an elephant; 2 and 3 trickle.
        for i in 0..30u8 {
            shards.enqueue(1, vec![i]);
        }
        shards.enqueue(2, vec![100]);
        shards.enqueue(3, vec![200]);
        assert_eq!(shards.queued(), 32);
        assert_eq!(shards.shard_count(), 3);

        let mut out = Vec::new();
        let mut order = Vec::new();
        while let Some(key) = shards.drain_next(8, &mut out) {
            order.push((key, out.len()));
        }
        // The busy shard never locks out the quiet ones: they both drain
        // within the first full rotation.
        assert_eq!(order, vec![(1, 8), (2, 1), (3, 1), (1, 8), (1, 8), (1, 6)]);
        assert!(shards.is_empty());
        assert_eq!(shards.drain_next(8, &mut out), None);
    }

    #[test]
    fn ingress_shards_bound_and_telemetry() {
        let tele = Telemetry::quiet();
        let mut shards: IngressShards<u16> = IngressShards::new(2);
        shards.set_telemetry(&tele);
        assert!(shards.enqueue(7, vec![0]));
        assert!(shards.enqueue(7, vec![1]));
        assert!(!shards.enqueue(7, vec![2]), "full shard must tail-drop");
        assert!(shards.enqueue(8, vec![3]), "other shards unaffected");
        let mut out = Vec::new();
        assert_eq!(shards.drain_next(16, &mut out), Some(7));
        assert_eq!(out, vec![vec![0], vec![1]]);
        let snap = tele.snapshot();
        assert_eq!(snap.counter("dispatcher.shard.enqueued"), Some(3));
        assert_eq!(snap.counter("dispatcher.shard.dropped"), Some(1));
        assert_eq!(snap.counter("dispatcher.shard.batches"), Some(1));
        assert_eq!(snap.gauge("dispatcher.shard.depth_watermark"), Some(3));
    }

    #[test]
    fn pipeline_delivers_everything_when_unloaded() {
        let r = run_dispatcher_pipeline(2, 2, 200, 0);
        assert_eq!(r.delivered + r.dropped, 400);
        assert_eq!(r.dropped, 0, "unloaded pipeline should not drop");
    }

    #[test]
    fn pipeline_is_single_threaded_bottleneck() {
        // With 4 producers, the dispatcher still only processes serially;
        // all packets pass through (blocking ingress), proving the funnel.
        let r = run_dispatcher_pipeline(4, 4, 100, 10);
        assert_eq!(r.delivered + r.dropped, 400);
    }

    #[test]
    fn synthetic_work_scales() {
        assert_ne!(synthetic_work(10), synthetic_work(11));
    }
}
