//! The 100 → 5000-AS scale campaign (the "scale observatory").
//!
//! The paper's deployment tops out at a few dozen ASes; the interesting
//! engineering question it leaves open is *which subsystem melts first*
//! as a SCIERA-like network grows by two orders of magnitude. This module
//! answers it empirically: for each sweep size N it
//!
//! 1. generates a synthetic ISD/Barabási–Albert topology
//!    ([`sciera_topology::synth`]),
//! 2. runs full beaconing to convergence and records wall time, rounds
//!    and segment-store footprint,
//! 3. drives a query workload through the shared epoch-snapshot
//!    [`EpochPathDb`](scion_control::epoch::EpochPathDb) with a
//!    topology-proportional sharded cache (the production concurrency
//!    discipline, including publish-latency accounting), recording hit
//!    rate and throughput,
//! 4. pushes a frame workload through real border routers over the
//!    generated links — the same inject/drain/process-batch/forward loop
//!    the deployment simulation uses,
//! 5. runs a bounded discrete-event stage so the simulator's dispatch
//!    loop shows up in the profile alongside everything else,
//!
//! and then reads the scoped profiler back: ranked per-subsystem self
//! time and the named bottleneck at that N. With the `profile` feature
//! off every step still runs — the self-time table is simply empty —
//! so the harness doubles as a scaling smoke test in CI.

use std::time::Instant;

use netsim::{FramePool, LinkId, LinkQuality, Node, NodeCtx, SimDuration, World};
use sciera_telemetry::Telemetry;
use sciera_topology::synth::{synthesize, SynthConfig};
use scion_control::beacon::{BeaconConfig, BeaconEngine};
use scion_control::epoch::{EpochConfig, EpochPathDb};
use scion_dataplane::dispatcher::{IngressShards, DEFAULT_SHARD_CAPACITY};
use scion_dataplane::router::{BorderRouter, FrameDecision};
use scion_proto::addr::{HostAddr, IsdAsn, ScionAddr};
use scion_proto::packet::{DataPlanePath, L4Protocol, ScionPacket};

/// Parameters of one sweep run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Network sizes (AS counts) to measure, in order.
    pub sizes: Vec<usize>,
    /// PathDb queries issued per point.
    pub queries: usize,
    /// Distinct (src, dst) pairs the queries cycle over — smaller pools
    /// mean warmer caches.
    pub pair_pool: usize,
    /// Frames injected into the router stage per point.
    pub frames: usize,
    /// Router batch size (frames per `process_batch` call).
    pub batch: usize,
    /// Nodes in the bounded discrete-event stage (0 skips it).
    pub sim_nodes: usize,
    /// Seed for the workload generator (topology seeds derive from N).
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            sizes: vec![100, 300, 1000, 3000, 5000],
            queries: 1500,
            pair_pool: 48,
            frames: 3000,
            batch: 32,
            sim_nodes: 48,
            seed: 0x5CA1_E0B5_0B5E_47A7,
        }
    }
}

/// Everything measured at one sweep size.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Network size (AS count).
    pub n_ases: usize,
    /// Links in the generated topology.
    pub links: usize,
    /// Topology generation wall time, milliseconds.
    pub gen_ms: f64,
    /// Beaconing wall time to the propagation fixed point, milliseconds.
    pub convergence_ms: f64,
    /// Propagation rounds beaconing needed.
    pub beacon_rounds: usize,
    /// Segments registered across all path servers.
    pub segments: usize,
    /// Approximate resident bytes of the segment store.
    pub store_bytes: usize,
    /// Approximate resident bytes of the PathDb cache after the workload.
    pub pathdb_bytes: usize,
    /// PathDb queries issued (warm phase; the cold phase adds one query
    /// per pool pair on top).
    pub queries: usize,
    /// Distinct (src, dst) pairs in the query pool — scales with N, so
    /// the cache-pressure regime changes across the sweep.
    pub query_pairs: usize,
    /// PathDb cache hit rate over the whole workload (0..=1).
    pub hit_rate: f64,
    /// Hit rate of the cold pass (every pool pair queried once, first
    /// touch). Near zero by construction; above it only when distinct
    /// pairs share combination work.
    pub hit_rate_cold: f64,
    /// Hit rate of the warm pass (random re-queries over the pool). Falls
    /// away from 1.0 once the pool outgrows the LRU capacity and the
    /// cache starts churning — the regime change the sweep looks for.
    pub hit_rate_warm: f64,
    /// PathDb queries per second (wall clock, behind the shared mutex).
    pub queries_per_sec: f64,
    /// Router operations (frames × hops) processed.
    pub router_ops: u64,
    /// Frames delivered end-to-end.
    pub delivered: u64,
    /// Frames dropped (queue overflow, dead ends, errors).
    pub dropped: u64,
    /// Router stage wall nanoseconds per router operation.
    pub router_ns_per_op: f64,
    /// Events the discrete-event stage dispatched.
    pub sim_events: u64,
    /// Per-subsystem self time in milliseconds, descending. Empty when
    /// the `profile` feature is off.
    pub self_time_ms: Vec<(String, f64)>,
    /// The top self-time scope — where this N spends its time.
    pub bottleneck: Option<String>,
}

/// Tiny deterministic PRNG for workload draws (xorshift64*).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A relay for the discrete-event stage: forwards a TTL-stamped probe
/// around the ring until the TTL dies, so the event loop dispatches a
/// bounded, size-independent amount of work.
struct Relay;

impl Node for Relay {
    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, mut frame: Vec<u8>) {
        let ttl = frame.first().copied().unwrap_or(0);
        if ttl == 0 {
            return;
        }
        frame[0] = ttl - 1;
        let out = ctx
            .links()
            .iter()
            .copied()
            .find(|&l| l != link)
            .unwrap_or(link);
        ctx.send(out, frame);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
        if let Some(&link) = ctx.links().first() {
            ctx.send(link, vec![16u8]);
        }
    }
}

fn beacon_config_for(n: usize) -> BeaconConfig {
    BeaconConfig {
        // Richer candidate sets explode combination work superlinearly;
        // scale them down as the network grows, as an operator would.
        candidates_per_origin: if n >= 1000 { 3 } else { 6 },
        max_len: 16,
        rounds: 24,
        delta_propagation: true,
        parallel_propagation: true,
    }
}

/// Runs one sweep point at `n` ASes.
pub fn run_point(n: usize, cfg: &ScaleConfig) -> ScalePoint {
    let telemetry = Telemetry::quiet();
    telemetry.reset_profile();
    let mut rng = Rng::new(cfg.seed ^ (n as u64).rotate_left(17));

    // ---- Stage 1: topology -------------------------------------------
    let t0 = Instant::now();
    let topo = synthesize(&SynthConfig::sized(n));
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;

    // ---- Stage 2: beaconing to convergence ---------------------------
    let mut engine = BeaconEngine::new(&topo.graph, 1_700_000_000, beacon_config_for(n));
    engine.set_telemetry(telemetry.clone());
    let t0 = Instant::now();
    let store = engine.run().expect("synthetic topology beacons cleanly");
    let convergence_ms = t0.elapsed().as_secs_f64() * 1e3;
    let beacon_rounds = engine.last_rounds();
    let segments = store.all_segments().count();
    let store_bytes = store.approx_bytes();
    let secrets = engine.secrets().clone();

    // ---- Stage 3: PathDb query workload over the shared snapshot -----
    // Topology-proportional capacity: the old fixed 2048-entry LRU
    // thrashed once the pair pool (≥ N/2) outgrew it, collapsing N=5000
    // to three-digit q/s. `for_topology` sizes the sharded cache so the
    // warm working set actually fits at every sweep point.
    let db = EpochPathDb::with_config(store, EpochConfig::for_topology(n));
    db.set_telemetry(telemetry.clone());

    let leaves: Vec<IsdAsn> = topo
        .graph
        .ases()
        .filter(|a| !a.core)
        .map(|a| a.ia)
        .collect();
    let endpoints = if leaves.is_empty() {
        topo.graph.core_ases()
    } else {
        leaves
    };
    // The pool of distinct pairs scales with the topology (at least half
    // the AS count), so the combine workload actually grows across the
    // sweep; the cache capacity grows with it (`for_topology`), so the
    // warm pass measures steady-state lookup throughput rather than LRU
    // churn. A fixed pool would make the hit rate a constant arithmetic
    // artefact of (queries, pair_pool) — the same number at every N.
    let pool_target = cfg.pair_pool.max(n / 2);
    let mut seen_pairs = std::collections::BTreeSet::new();
    let mut pool: Vec<(IsdAsn, IsdAsn)> = Vec::new();
    let mut draws = 0usize;
    while pool.len() < pool_target && draws < pool_target.saturating_mul(8) {
        draws += 1;
        let a = endpoints[rng.below(endpoints.len())];
        let b = endpoints[rng.below(endpoints.len())];
        if a != b && seen_pairs.insert((a, b)) {
            pool.push((a, b));
        }
    }
    if pool.is_empty() {
        pool.push((endpoints[0], endpoints[endpoints.len() - 1]));
    }

    let cache_counts = || {
        let snap = telemetry.snapshot();
        (
            snap.counter("pathdb.cache.hit").unwrap_or(0),
            snap.counter("pathdb.cache.miss").unwrap_or(0),
        )
    };
    let rate = |(h0, m0): (u64, u64), (h1, m1): (u64, u64)| {
        let (dh, dm) = (h1 - h0, m1 - m0);
        if dh + dm > 0 {
            dh as f64 / (dh + dm) as f64
        } else {
            0.0
        }
    };

    // Cold pass: every pool pair once, first touch. `prefetch` combines
    // the misses over the worker pool when `parallel` is on and falls
    // back to the sequential loop otherwise — same installed entries
    // either way.
    let before = cache_counts();
    db.prefetch(&pool, 32);
    let after_cold = cache_counts();

    // Warm pass: random re-queries over the pool (the measured workload).
    let t0 = Instant::now();
    for _ in 0..cfg.queries {
        let (src, dst) = pool[rng.below(pool.len())];
        let _ = db.paths(src, dst, 32);
    }
    let query_secs = t0.elapsed().as_secs_f64();
    let after_warm = cache_counts();

    let hit_rate_cold = rate(before, after_cold);
    let hit_rate_warm = rate(after_cold, after_warm);
    let hit_rate = rate(before, after_warm);
    let queries_per_sec = if query_secs > 0.0 {
        cfg.queries as f64 / query_secs
    } else {
        0.0
    };

    // ---- Stage 4: router frame workload ------------------------------
    // Templates: encoded UDP frames over the first path of a handful of
    // reachable pairs; the loop below is the deployment simulation's
    // inject/drain/batch/forward engine over the generated links.
    let mut templates: Vec<(IsdAsn, Vec<u8>)> = Vec::new();
    for (src, dst) in pool.iter().take(32) {
        let paths = db.paths(*src, *dst, 4);
        let Some(dp) = paths.first().and_then(|p| p.to_dataplane().ok()) else {
            continue;
        };
        let pkt = ScionPacket::new(
            ScionAddr::new(*src, HostAddr::v4(10, 250, 0, 1)),
            ScionAddr::new(*dst, HostAddr::v4(10, 250, 0, 2)),
            L4Protocol::Udp,
            DataPlanePath::Scion(dp),
            scion_proto::udp::UdpDatagram::new(7, 7, b"scale".to_vec()).encode(),
        );
        if let Ok(bytes) = pkt.encode() {
            templates.push((*src, bytes));
        }
    }

    let mut router_ops = 0u64;
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut router_ns_per_op = 0.0;
    if !templates.is_empty() {
        let mut routers: std::collections::BTreeMap<IsdAsn, BorderRouter> = secrets
            .iter()
            .map(|(ia, s)| {
                let mut r = BorderRouter::new(*ia, s.hop_key.clone());
                r.set_telemetry(telemetry.clone());
                (*ia, r)
            })
            .collect();
        let mut shards: IngressShards<(IsdAsn, u16)> = IngressShards::new(DEFAULT_SHARD_CAPACITY);
        shards.set_telemetry(&telemetry);
        let mut pool_frames = FramePool::new(cfg.batch.saturating_mul(8));
        pool_frames.set_telemetry(&telemetry);
        let mut wave: Vec<Vec<u8>> = Vec::with_capacity(cfg.batch);
        let target_in_flight = cfg.batch.saturating_mul(4).min(DEFAULT_SHARD_CAPACITY / 2);
        let max_ops = (cfg.frames as u64).saturating_mul(64).max(64);
        let now_unix = 1_700_000_000u64;
        let mut next = 0usize;
        let t0 = Instant::now();
        loop {
            while next < cfg.frames && shards.queued() < target_in_flight {
                let (src, bytes) = &templates[next % templates.len()];
                next += 1;
                let mut buf = pool_frames.alloc(bytes.len());
                buf.extend_from_slice(bytes);
                if !shards.enqueue((*src, 0u16), buf) {
                    dropped += 1;
                }
            }
            let Some((ia, ingress)) = shards.drain_next(cfg.batch, &mut wave) else {
                break;
            };
            router_ops += wave.len() as u64;
            let Some(router) = routers.get_mut(&ia) else {
                dropped += wave.len() as u64;
                pool_frames.recycle_batch(wave.drain(..));
                continue;
            };
            let results = router.process_batch(&mut wave, ingress, now_unix);
            for (frame, res) in wave.drain(..).zip(results) {
                match res {
                    Ok(FrameDecision::Deliver) => {
                        delivered += 1;
                        pool_frames.recycle(frame);
                    }
                    Ok(FrameDecision::Forward { ifid }) => match topo.link_index_of(ia, ifid) {
                        Some(li) => {
                            let l = &topo.links[li];
                            let (next_ia, next_if) = if l.spec.a == ia {
                                (l.spec.b, l.ifid_b)
                            } else {
                                (l.spec.a, l.ifid_a)
                            };
                            if !shards.enqueue((next_ia, next_if), frame) {
                                dropped += 1;
                            }
                        }
                        None => {
                            dropped += 1;
                            pool_frames.recycle(frame);
                        }
                    },
                    Err(_) => {
                        dropped += 1;
                        pool_frames.recycle(frame);
                    }
                }
            }
            if router_ops >= max_ops {
                break;
            }
        }
        let wall_ns = t0.elapsed().as_nanos() as f64;
        if router_ops > 0 {
            router_ns_per_op = wall_ns / router_ops as f64;
        }
    }

    // ---- Stage 5: bounded discrete-event stage -----------------------
    let mut sim_events = 0u64;
    if cfg.sim_nodes >= 2 {
        let mut world: World<Relay> = World::new(cfg.seed ^ n as u64);
        world.set_telemetry(telemetry.clone());
        let ids: Vec<_> = (0..cfg.sim_nodes).map(|_| world.add_node(Relay)).collect();
        for w in ids.windows(2) {
            world.add_link(
                w[0],
                w[1],
                LinkQuality::with_latency(SimDuration::from_millis(1)),
            );
        }
        world.schedule_timer(world.now() + SimDuration::from_millis(1), ids[0], 1);
        sim_events = world.run_to_completion();
    }

    // ---- Read the observatory back -----------------------------------
    let pathdb_bytes = {
        db.record_resource_gauges();
        db.approx_cache_bytes()
    };
    telemetry.publish_profile();
    let report = telemetry.profile_report();
    let self_time_ms: Vec<(String, f64)> = report
        .ranked_self_time()
        .into_iter()
        .map(|(name, ns)| (name.to_string(), ns as f64 / 1e6))
        .collect();
    let bottleneck = report.top_bottleneck().map(|(name, _)| name.to_string());

    ScalePoint {
        n_ases: n,
        links: topo.links.len(),
        gen_ms,
        convergence_ms,
        beacon_rounds,
        segments,
        store_bytes,
        pathdb_bytes,
        queries: cfg.queries,
        query_pairs: pool.len(),
        hit_rate,
        hit_rate_cold,
        hit_rate_warm,
        queries_per_sec,
        router_ops,
        delivered,
        dropped,
        router_ns_per_op,
        sim_events,
        self_time_ms,
        bottleneck,
    }
}

/// Runs the whole sweep, one point per configured size.
pub fn run_sweep(cfg: &ScaleConfig) -> Vec<ScalePoint> {
    cfg.sizes.iter().map(|&n| run_point(n, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ScaleConfig {
        ScaleConfig {
            sizes: vec![40],
            queries: 120,
            pair_pool: 12,
            frames: 200,
            batch: 8,
            sim_nodes: 8,
            seed: 7,
        }
    }

    #[test]
    fn one_small_point_produces_consistent_metrics() {
        let cfg = small_cfg();
        let p = run_point(40, &cfg);
        assert_eq!(p.n_ases, 40);
        assert!(p.links >= 39, "links: {}", p.links);
        assert!(p.beacon_rounds >= 1);
        assert!(p.segments > 0);
        assert!(p.store_bytes > 0);
        assert!(p.convergence_ms > 0.0);
        assert!(p.queries_per_sec > 0.0);
        assert!(
            p.hit_rate > 0.0 && p.hit_rate < 1.0,
            "cold misses + warm hits must mix: {}",
            p.hit_rate
        );
        assert!(p.query_pairs >= 12, "pool scales with N: {}", p.query_pairs);
        assert!(
            p.hit_rate_cold < p.hit_rate_warm,
            "first touches miss, re-queries hit: cold {} vs warm {}",
            p.hit_rate_cold,
            p.hit_rate_warm
        );
        assert!(
            p.hit_rate_cold < 0.5,
            "cold pass is first-touch dominated: {}",
            p.hit_rate_cold
        );
        assert!(
            p.hit_rate_warm > 0.9,
            "a pool the LRU holds entirely stays warm: {}",
            p.hit_rate_warm
        );
        assert!(p.delivered > 0, "some frames must arrive end-to-end");
        assert!(p.router_ns_per_op > 0.0);
        assert!(p.sim_events > 0);
    }

    #[test]
    fn profiler_attribution_matches_feature_state() {
        let cfg = small_cfg();
        let p = run_point(40, &cfg);
        if cfg!(feature = "profile") {
            assert!(
                !p.self_time_ms.is_empty(),
                "profiled build must attribute self time"
            );
            assert!(p.bottleneck.is_some());
        } else {
            assert!(p.self_time_ms.is_empty());
            assert!(p.bottleneck.is_none());
        }
    }
}
