//! Multipath quality: Figs. 8, 9, 10a and 10b.

use netsim::metrics::{Cdf, Summary};
use sciera_topology::ases::fig8_vantages;
use sciera_topology::links::build_control_graph;
use scion_control::beacon::{BeaconConfig, BeaconEngine};
use scion_control::combine::combine_paths;
use scion_control::fullpath::paper_disjointness;
use scion_control::pathdb::PathDb;
use scion_proto::addr::IsdAsn;

use crate::campaign::MeasurementStore;

/// A square matrix over the Fig. 8 vantage set.
#[derive(Debug, Clone)]
pub struct VantageMatrix {
    /// Row/column labels (source = row).
    pub vantages: Vec<IsdAsn>,
    /// `values[src][dst]`; diagonal unused.
    pub values: Vec<Vec<u32>>,
}

impl VantageMatrix {
    /// Renders as an aligned table like the paper's heatmaps.
    pub fn to_table(&self, title: &str) -> String {
        let mut s = format!("{title}\n{:>12}", "src\\dst");
        for v in &self.vantages {
            s.push_str(&format!("{:>11}", v.to_string()));
        }
        s.push('\n');
        for (i, v) in self.vantages.iter().enumerate() {
            s.push_str(&format!("{:>12}", v.to_string()));
            for j in 0..self.vantages.len() {
                if i == j {
                    s.push_str(&format!("{:>11}", "-"));
                } else {
                    s.push_str(&format!("{:>11}", self.values[i][j]));
                }
            }
            s.push('\n');
        }
        s
    }

    /// The (src, dst) cell.
    pub fn get(&self, src: IsdAsn, dst: IsdAsn) -> Option<u32> {
        let i = self.vantages.iter().position(|v| *v == src)?;
        let j = self.vantages.iter().position(|v| *v == dst)?;
        Some(self.values[i][j])
    }
}

/// Figure 8: the maximum number of active paths observed per vantage pair.
pub fn fig8(store: &MeasurementStore) -> VantageMatrix {
    matrix_from(store, |counts| counts.iter().copied().max().unwrap_or(0))
}

/// Figure 9: the median deviation from the maximum active-path count.
pub fn fig9(store: &MeasurementStore) -> VantageMatrix {
    matrix_from(store, |counts| {
        let max = counts.iter().copied().max().unwrap_or(0);
        let mut devs: Vec<u32> = counts.iter().map(|&c| max - c).collect();
        devs.sort_unstable();
        devs.get(devs.len() / 2).copied().unwrap_or(0)
    })
}

fn matrix_from(store: &MeasurementStore, f: impl Fn(&[u32]) -> u32) -> VantageMatrix {
    let vantages = fig8_vantages();
    let n = vantages.len();
    let mut values = vec![vec![0u32; n]; n];
    for (i, &s) in vantages.iter().enumerate() {
        for (j, &d) in vantages.iter().enumerate() {
            if i == j {
                continue;
            }
            if let Some(p) = store.pair(s, d) {
                values[i][j] = f(&p.active_counts);
            }
        }
    }
    VantageMatrix { vantages, values }
}

/// Figure 10a: CDF of the latency inflation d₂/d₁ — the second-lowest over
/// lowest per-path minimum RTT for each AS pair.
#[derive(Debug, Clone)]
pub struct Fig10a {
    /// Per-pair inflation values, ascending.
    pub inflations: Vec<f64>,
    /// Rendered CDF.
    pub cdf: Cdf,
    /// Fraction of pairs with inflation < 1.05 (paper: ~40 % "close to 1").
    pub frac_near_one: f64,
    /// Fraction of pairs with inflation < 1.2 (paper: ~80 %).
    pub frac_below_1_2: f64,
}

/// Computes Fig. 10a from the campaign's per-path minimum RTTs.
pub fn fig10a(store: &MeasurementStore) -> Fig10a {
    let mut inflations = Vec::new();
    for p in &store.pairs {
        let mut mins: Vec<f64> = p
            .min_rtt_per_path
            .iter()
            .copied()
            .filter(|m| m.is_finite())
            .collect();
        if mins.len() < 2 {
            continue;
        }
        mins.sort_by(|a, b| a.partial_cmp(b).unwrap());
        inflations.push(mins[1] / mins[0]);
    }
    inflations.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = inflations.len() as f64;
    let frac_near_one = inflations.iter().filter(|&&x| x < 1.05).count() as f64 / n;
    let frac_below_1_2 = inflations.iter().filter(|&&x| x < 1.2).count() as f64 / n;
    let mut s = Summary::new();
    for &x in &inflations {
        s.record(x.min(3.0));
    }
    Fig10a {
        cdf: s.to_cdf(60),
        inflations,
        frac_near_one,
        frac_below_1_2,
    }
}

/// Figure 10b: CDF of pairwise path disjointness over all path pairs of
/// every vantage pair.
#[derive(Debug, Clone)]
pub struct Fig10b {
    /// Rendered CDF of disjointness values in [0, 1].
    pub cdf: Cdf,
    /// Fraction of fully disjoint path pairs (paper: ~30 %).
    pub frac_fully_disjoint: f64,
    /// Fraction with disjointness ≥ 0.7 (paper: ~80 %).
    pub frac_above_0_7: f64,
    /// Path pairs sampled.
    pub samples: usize,
}

/// Computes Fig. 10b directly from the combined path sets (independent of
/// campaign timing). `per_pair_cap` bounds the quadratic pair enumeration.
pub fn fig10b(candidates_per_origin: usize, per_pair_cap: usize) -> Fig10b {
    let topo = build_control_graph();
    let store = BeaconEngine::new(
        &topo.graph,
        1_700_000_000,
        BeaconConfig {
            candidates_per_origin,
            ..Default::default()
        },
    )
    .run()
    .expect("beaconing succeeds");
    let mut db = PathDb::new(store);
    let vantages = fig8_vantages();
    let mut s = Summary::new();
    let mut fully = 0usize;
    let mut above = 0usize;
    let mut total = 0usize;
    for &src in &vantages {
        for &dst in &vantages {
            if src == dst {
                continue;
            }
            let paths = db.paths(src, dst, per_pair_cap);
            // Guard: the memoized DB must reproduce the direct
            // combinator's path set for the figure (debug builds only).
            debug_assert_eq!(
                paths.len(),
                combine_paths(db.store(), src, dst, per_pair_cap).len(),
                "memoized path count diverged for {src}->{dst}"
            );
            for i in 0..paths.len() {
                for j in i + 1..paths.len() {
                    let d = paper_disjointness(&paths[i], &paths[j]);
                    s.record(d);
                    total += 1;
                    if d >= 0.999 {
                        fully += 1;
                    }
                    if d >= 0.7 {
                        above += 1;
                    }
                }
            }
        }
    }
    Fig10b {
        cdf: s.to_cdf(50),
        frac_fully_disjoint: fully as f64 / total.max(1) as f64,
        frac_above_0_7: above as f64 / total.max(1) as f64,
        samples: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use scion_proto::addr::ia;

    fn store() -> MeasurementStore {
        Campaign::new(CampaignConfig::quick()).run()
    }

    #[test]
    fn fig8_matrix_filled_and_min_two() {
        let m = fig8(&store());
        assert_eq!(m.vantages.len(), 9);
        for (i, _) in m.vantages.iter().enumerate() {
            for (j, _) in m.vantages.iter().enumerate() {
                if i != j {
                    assert!(
                        m.values[i][j] >= 2,
                        "({i},{j}) has {} paths; paper: at least 2 everywhere",
                        m.values[i][j]
                    );
                }
            }
        }
        let table = m.to_table("fig8");
        assert!(table.contains("71-2:0:3b"));
    }

    #[test]
    fn fig9_mostly_zero_with_incident_peaks() {
        let s = store();
        let m9 = fig9(&s);
        let mut zeros = 0;
        let mut cells = 0;
        for i in 0..9 {
            for j in 0..9 {
                if i == j {
                    continue;
                }
                cells += 1;
                if m9.values[i][j] == 0 {
                    zeros += 1;
                }
            }
        }
        // "For most AS pairs, the median deviation is 0" — the quick
        // campaign compresses the incidents, so require a healthy zero
        // population rather than a strict majority (the full 25-day run in
        // EXPERIMENTS.md lands near the paper's split).
        assert!(
            zeros * 8 >= cells,
            "a sizeable share of cells should be 0, got {zeros}/{cells}"
        );
        // The cable-cut pair shows a nonzero deviation (its magnitude
        // scales with the candidate richness; the full-size run is recorded
        // in EXPERIMENTS.md).
        let dj_sg = m9.get(ia("71-2:0:3b"), ia("71-2:0:3d")).unwrap();
        assert!(
            dj_sg > 0,
            "DJ->SG median deviation must reflect the cable cut"
        );
    }

    #[test]
    fn fig10a_shape() {
        let f = fig10a(&store());
        assert!(f.inflations.len() > 100);
        assert!(
            f.frac_near_one > 0.15,
            "near-1 fraction {}",
            f.frac_near_one
        );
        assert!(
            f.frac_below_1_2 > 0.5,
            "below-1.2 fraction {}",
            f.frac_below_1_2
        );
        assert!(f.inflations.iter().all(|&x| x >= 1.0));
    }

    #[test]
    fn fig10b_shape() {
        let f = fig10b(8, 30);
        assert!(f.samples > 1000);
        assert!(
            f.frac_fully_disjoint > 0.02,
            "fully disjoint {}",
            f.frac_fully_disjoint
        );
        assert!(f.frac_above_0_7 > 0.6, "≥0.7 fraction {}", f.frac_above_0_7);
        // CDF covers [0,1].
        assert!(f.cdf.points.last().unwrap().1 >= 0.999);
    }
}
