//! The Fig. 4 bootstrapping-latency experiment.
//!
//! Runs the real bootstrap client ([`scion_bootstrap::BootstrapClient`])
//! through the OS-profile model environment, 30 runs per (platform,
//! mechanism) combination, and reports the hint-retrieval, config-retrieval
//! and total latency distributions.

use rand::rngs::StdRng;
use rand::SeedableRng;

use netsim::metrics::Summary;
use scion_bootstrap::client::{BootstrapClient, ModelEnv, OsProfile};
use scion_bootstrap::hints::HintMechanism;
use scion_bootstrap::server::{SignedTopology, TopologyDocument};
use scion_bootstrap::BootstrapError;
use scion_crypto::sign::SigningKey;
use scion_proto::addr::ia;
use scion_proto::encap::UnderlayAddr;

/// Distribution of one latency component across runs (ms).
#[derive(Debug, Clone)]
pub struct LatencyDist {
    /// Median.
    pub median_ms: f64,
    /// 25th percentile.
    pub p25_ms: f64,
    /// 75th percentile.
    pub p75_ms: f64,
    /// Maximum.
    pub max_ms: f64,
}

fn dist(s: &mut Summary) -> LatencyDist {
    LatencyDist {
        median_ms: s.median().unwrap_or(f64::NAN),
        p25_ms: s.quantile(0.25).unwrap_or(f64::NAN),
        p75_ms: s.quantile(0.75).unwrap_or(f64::NAN),
        max_ms: s.max().unwrap_or(f64::NAN),
    }
}

/// One Fig. 4 cell: a platform × mechanism measurement.
#[derive(Debug, Clone)]
pub struct Fig4Cell {
    /// Platform name.
    pub os: &'static str,
    /// Hint mechanism measured.
    pub mechanism: HintMechanism,
    /// Hint-retrieval latency distribution.
    pub hint: LatencyDist,
    /// Config-retrieval latency distribution.
    pub config: LatencyDist,
    /// Total latency distribution.
    pub total: LatencyDist,
}

/// The full Fig. 4 dataset.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// All cells.
    pub cells: Vec<Fig4Cell>,
    /// Runs per cell.
    pub runs: u32,
}

impl Fig4 {
    /// The worst total median across every platform/mechanism (the paper's
    /// "median < 150 ms" headline is over this).
    pub fn worst_total_median_ms(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| c.total.median_ms)
            .fold(0.0, f64::max)
    }

    /// Renders the dataset as a table.
    pub fn to_table(&self) -> String {
        let mut s = format!(
            "{:<10}{:<14}{:>12}{:>14}{:>12}   ({} runs each, medians in ms)\n",
            "OS", "mechanism", "hint", "config", "total", self.runs
        );
        for c in &self.cells {
            s.push_str(&format!(
                "{:<10}{:<14}{:>12.1}{:>14.1}{:>12.1}\n",
                c.os,
                c.mechanism.name(),
                c.hint.median_ms,
                c.config.median_ms,
                c.total.median_ms
            ));
        }
        s
    }
}

fn signed_topology() -> SignedTopology {
    let key = SigningKey::from_seed(b"fig4-as-key");
    let document = TopologyDocument {
        ia: ia("71-2:0:42"),
        border_routers: vec![UnderlayAddr::new([10, 0, 0, 1], 30001)],
        control_service: UnderlayAddr::new([10, 0, 0, 2], 30252),
        timestamp: 1_700_000_000,
        mtu: 1472,
    };
    let signature = key.sign(&document.signed_bytes());
    SignedTopology {
        document,
        signature,
    }
}

/// Runs the Fig. 4 experiment: `runs` bootstraps per OS × mechanism.
pub fn fig4(runs: u32, seed: u64) -> Fig4 {
    let body = serde_json::to_vec(&signed_topology()).expect("topology serialises");
    let accept = |_: &SignedTopology| -> Result<(), BootstrapError> { Ok(()) };
    let mut cells = Vec::new();
    for os in OsProfile::all() {
        for &mech in HintMechanism::table2_rows() {
            let mut hint = Summary::new();
            let mut config = Summary::new();
            let mut total = Summary::new();
            for run in 0..runs {
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (run as u64) << 32 ^ mech as u64 ^ (os.lan_rtt_ms * 1000.0) as u64,
                );
                // Force the single mechanism under test; the network is
                // whatever makes that mechanism available ("Y" columns of
                // Table 2 exist for every row).
                let mut env = ModelEnv {
                    os,
                    profile: best_profile_for(mech),
                    server: UnderlayAddr::new([10, 0, 0, 9], 8041),
                    topology_body: body.clone(),
                    config_processing_ms: 3.5,
                    rng: &mut rng,
                };
                let client = BootstrapClient::new(vec![mech]);
                let out = client.run(&mut env, &accept).expect("bootstrap succeeds");
                hint.record(out.timing.hint.as_secs_f64() * 1000.0);
                config.record(out.timing.config.as_secs_f64() * 1000.0);
                total.record(out.timing.total().as_secs_f64() * 1000.0);
            }
            cells.push(Fig4Cell {
                os: os.name,
                mechanism: mech,
                hint: dist(&mut hint),
                config: dist(&mut config),
                total: dist(&mut total),
            });
        }
    }
    Fig4 { cells, runs }
}

/// A network profile on which `mech` is available stand-alone.
fn best_profile_for(mech: HintMechanism) -> scion_bootstrap::hints::NetworkProfile {
    use scion_bootstrap::hints::NetworkProfile::*;
    match mech {
        HintMechanism::DhcpVivo | HintMechanism::DhcpOption72 => DynDhcpLeases,
        HintMechanism::Dhcpv6Vsio => DynDhcpv6Lease,
        HintMechanism::Ipv6NdpRa => Ipv6Ras,
        _ => LocalDnsSearchDomain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_headline_holds() {
        let f = fig4(30, 4);
        // 3 OSes x 7 mechanisms.
        assert_eq!(f.cells.len(), 21);
        // "median < 150 ms" across every platform and mechanism.
        assert!(
            f.worst_total_median_ms() < 150.0,
            "worst median {} ms",
            f.worst_total_median_ms()
        );
    }

    #[test]
    fn config_is_not_dominant_for_dhcp() {
        // Fig. 4 shows hint retrieval comparable to or larger than config
        // retrieval for DHCP-family mechanisms.
        let f = fig4(30, 4);
        let dhcp = f
            .cells
            .iter()
            .find(|c| c.os == "Windows" && c.mechanism == HintMechanism::DhcpVivo)
            .unwrap();
        assert!(dhcp.hint.median_ms > dhcp.config.median_ms);
    }

    #[test]
    fn windows_slower_than_linux() {
        let f = fig4(30, 4);
        let med = |os: &str| -> f64 {
            let cells: Vec<&Fig4Cell> = f.cells.iter().filter(|c| c.os == os).collect();
            cells.iter().map(|c| c.total.median_ms).sum::<f64>() / cells.len() as f64
        };
        assert!(med("Windows") > med("Linux"), "platform cost ordering");
    }

    #[test]
    fn table_renders_all_cells() {
        let f = fig4(5, 1);
        let t = f.to_table();
        assert!(t.contains("mDNS"));
        assert!(t.contains("Windows"));
        assert_eq!(t.lines().count(), 22);
    }
}
