//! The §5.6 operator survey.
//!
//! The paper surveyed the eight SCIERA operators on deployment experience,
//! CAPEX and OPEX. We encode a synthetic respondent table that matches
//! every marginal the paper reports, and the aggregation code computes the
//! same statistics — so the analysis pipeline, not just the numbers, is
//! reproduced.

use serde::{Deserialize, Serialize};

/// One survey respondent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Respondent {
    /// Anonymised id.
    pub id: u8,
    /// Years of networking/security experience.
    pub experience_years: u8,
    /// Role: true = hands-on network engineer, false = researcher.
    pub engineer: bool,
    /// Months from kickoff to working native SCION setup.
    pub setup_months: f64,
    /// Completed the software deployment without vendor support.
    pub no_vendor_support_needed: bool,
    /// Hardware spend, USD.
    pub hardware_usd: u32,
    /// Paid software licensing (Anapaya) rather than open source only.
    pub paid_licensing: bool,
    /// Needed additional hiring/training.
    pub extra_hiring: bool,
    /// Rates SCIERA OPEX as comparable-or-lower than existing infra.
    pub opex_comparable_or_lower: bool,
    /// SCIERA tasks below 10 % of overall operational workload.
    pub workload_below_10pct: bool,
    /// Vendor-support contacts per year.
    pub vendor_contacts_per_year: u8,
    /// Reported primary cost drivers.
    pub cost_drivers: Vec<CostDriver>,
}

/// Operational cost drivers offered in the questionnaire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostDriver {
    /// Hardware maintenance.
    HardwareMaintenance,
    /// Staff workload.
    StaffWorkload,
    /// Monitoring and troubleshooting.
    Monitoring,
    /// Power consumption.
    Power,
}

/// The eight-respondent dataset, constructed to match §5.6's marginals.
pub fn respondents() -> Vec<Respondent> {
    use CostDriver::*;
    let r = |id: u8,
             experience_years: u8,
             engineer: bool,
             setup_months: f64,
             no_vendor: bool,
             hardware_usd: u32,
             paid_licensing: bool,
             extra_hiring: bool,
             opex_ok: bool,
             workload_ok: bool,
             contacts: u8,
             cost_drivers: Vec<CostDriver>| Respondent {
        id,
        experience_years,
        engineer,
        setup_months,
        no_vendor_support_needed: no_vendor,
        hardware_usd,
        paid_licensing,
        extra_hiring,
        opex_comparable_or_lower: opex_ok,
        workload_below_10pct: workload_ok,
        vendor_contacts_per_year: contacts,
        cost_drivers,
    };
    vec![
        r(
            1,
            15,
            true,
            0.8,
            true,
            6_500,
            false,
            false,
            true,
            true,
            0,
            vec![HardwareMaintenance, StaffWorkload],
        ),
        r(
            2,
            12,
            true,
            1.0,
            true,
            12_000,
            false,
            false,
            true,
            true,
            1,
            vec![HardwareMaintenance],
        ),
        r(
            3,
            11,
            false,
            0.9,
            false,
            18_000,
            true,
            false,
            true,
            true,
            2,
            vec![HardwareMaintenance, Monitoring],
        ),
        r(
            4,
            14,
            true,
            4.0,
            true,
            9_000,
            false,
            false,
            true,
            true,
            1,
            vec![StaffWorkload],
        ),
        r(
            5,
            6,
            false,
            5.0,
            true,
            15_000,
            false,
            false,
            true,
            true,
            2,
            vec![HardwareMaintenance, StaffWorkload, Power],
        ),
        r(
            6,
            8,
            false,
            6.0,
            false,
            25_000,
            true,
            true,
            false,
            true,
            5,
            vec![StaffWorkload, Monitoring],
        ),
        r(
            7,
            5,
            true,
            5.5,
            false,
            14_000,
            true,
            false,
            true,
            true,
            4,
            vec![HardwareMaintenance],
        ),
        r(
            8,
            9,
            false,
            9.0,
            true,
            30_000,
            false,
            true,
            false,
            false,
            3,
            vec![],
        ),
    ]
}

/// Aggregated survey statistics (the numbers §5.6 reports).
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyStats {
    /// Respondents.
    pub n: usize,
    /// Fraction with over a decade of experience (paper: 50 %).
    pub decade_experience: f64,
    /// Fraction of hands-on engineers (paper: 50 %).
    pub engineers: f64,
    /// Fraction finishing setup within one month (paper: 37.5 %).
    pub setup_within_month: f64,
    /// Fraction finishing within six months (cumulative; paper: 87.5 %).
    pub setup_within_six_months: f64,
    /// Fraction deploying without vendor support (paper: 62.5 %).
    pub no_vendor_support: f64,
    /// Fraction spending under $20k on hardware (paper: 75 %).
    pub hardware_under_20k: f64,
    /// Fraction with zero licensing cost (paper: 62.5 %).
    pub no_licensing_cost: f64,
    /// Fraction needing no extra hiring/training (paper: 75 %).
    pub no_extra_hiring: f64,
    /// Fraction rating OPEX comparable or lower (paper: 75 %).
    pub opex_comparable_or_lower: f64,
    /// Fraction with SCIERA below 10 % of workload (paper: 87.5 %).
    pub workload_below_10pct: f64,
    /// Fraction needing vendor support fewer than 3×/year (paper: 62.5 %).
    pub vendor_under_3_per_year: f64,
    /// Fraction naming each cost driver (paper: 62.5 / 50 / 25 / 12.5 %).
    pub cost_driver_fracs: [f64; 4],
}

/// Computes the aggregate statistics.
pub fn aggregate(rs: &[Respondent]) -> SurveyStats {
    let n = rs.len();
    let frac = |pred: &dyn Fn(&Respondent) -> bool| {
        rs.iter().filter(|r| pred(r)).count() as f64 / n as f64
    };
    let driver = |d: CostDriver| frac(&|r: &Respondent| r.cost_drivers.contains(&d));
    SurveyStats {
        n,
        decade_experience: frac(&|r| r.experience_years > 10),
        engineers: frac(&|r| r.engineer),
        setup_within_month: frac(&|r| r.setup_months <= 1.0),
        setup_within_six_months: frac(&|r| r.setup_months <= 6.0),
        no_vendor_support: frac(&|r| r.no_vendor_support_needed),
        hardware_under_20k: frac(&|r| r.hardware_usd < 20_000),
        no_licensing_cost: frac(&|r| !r.paid_licensing),
        no_extra_hiring: frac(&|r| !r.extra_hiring),
        opex_comparable_or_lower: frac(&|r| r.opex_comparable_or_lower),
        workload_below_10pct: frac(&|r| r.workload_below_10pct),
        vendor_under_3_per_year: frac(&|r| r.vendor_contacts_per_year < 3),
        cost_driver_fracs: [
            driver(CostDriver::HardwareMaintenance),
            driver(CostDriver::StaffWorkload),
            driver(CostDriver::Monitoring),
            driver(CostDriver::Power),
        ],
    }
}

/// Renders the survey report.
pub fn report(stats: &SurveyStats) -> String {
    format!(
        "Operator survey (n={}) — paper values in parentheses\n\
         over a decade of experience: {:.1}% (50%)\n\
         hands-on network engineers:  {:.1}% (50%)\n\
         native setup within 1 month: {:.1}% (37.5%)\n\
         native setup within 6 months:{:.1}% (87.5%)\n\
         deployed w/o vendor support: {:.1}% (62.5%)\n\
         hardware under $20k:         {:.1}% (75%)\n\
         zero licensing cost:         {:.1}% (62.5%)\n\
         no extra hiring/training:    {:.1}% (75%)\n\
         OPEX comparable or lower:    {:.1}% (75%)\n\
         SCIERA < 10% of workload:    {:.1}% (87.5%)\n\
         vendor support < 3x/year:    {:.1}% (62.5%)\n\
         cost drivers hw/staff/mon/pwr: {:.1}/{:.1}/{:.1}/{:.1}% (62.5/50/25/12.5%)",
        stats.n,
        stats.decade_experience * 100.0,
        stats.engineers * 100.0,
        stats.setup_within_month * 100.0,
        stats.setup_within_six_months * 100.0,
        stats.no_vendor_support * 100.0,
        stats.hardware_under_20k * 100.0,
        stats.no_licensing_cost * 100.0,
        stats.no_extra_hiring * 100.0,
        stats.opex_comparable_or_lower * 100.0,
        stats.workload_below_10pct * 100.0,
        stats.vendor_under_3_per_year * 100.0,
        stats.cost_driver_fracs[0] * 100.0,
        stats.cost_driver_fracs[1] * 100.0,
        stats.cost_driver_fracs[2] * 100.0,
        stats.cost_driver_fracs[3] * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginals_match_paper_exactly() {
        let s = aggregate(&respondents());
        assert_eq!(s.n, 8);
        assert_eq!(s.decade_experience, 0.5);
        assert_eq!(s.engineers, 0.5);
        assert_eq!(s.setup_within_month, 0.375);
        // 37.5% within a month + 50% up to six months = 87.5%.
        assert_eq!(s.setup_within_six_months, 0.875);
        assert_eq!(s.no_vendor_support, 0.625);
        assert_eq!(s.hardware_under_20k, 0.75);
        assert_eq!(s.no_licensing_cost, 0.625);
        assert_eq!(s.no_extra_hiring, 0.75);
        assert_eq!(s.opex_comparable_or_lower, 0.75);
        assert_eq!(s.workload_below_10pct, 0.875);
        assert_eq!(s.vendor_under_3_per_year, 0.625);
        assert_eq!(s.cost_driver_fracs, [0.625, 0.5, 0.25, 0.125]);
    }

    #[test]
    fn report_renders_every_line() {
        let r = report(&aggregate(&respondents()));
        assert_eq!(r.lines().count(), 13);
        assert!(r.contains("87.5%"));
    }

    #[test]
    fn respondent_table_is_consistent() {
        for r in respondents() {
            assert!(r.setup_months > 0.0);
            assert!(r.hardware_usd >= 5_000, "even lean setups cost something");
        }
    }
}
