//! The measurement campaign engine (§5.4 methodology).
//!
//! Mirrors `scion-go-multiping`: from each of the 11 measurement ASes,
//! ping every other SCIERA AS each interval — SCMP over three SCION paths
//! (the *shortest*, the *fastest* from the last full path probe, and the
//! *most disjoint* from those two) and ICMP over the BGP baseline. A full
//! path probe enumerates all currently active paths; it runs periodically
//! and immediately after ping failures, exactly as the paper describes.
//! The tool's real defect is reproduced too: the ICMP subsystem stalls
//! after the first 15–30 minutes of each hour until the hourly restart,
//! and the analysis excludes the affected intervals.
//!
//! For tractability the engine takes the analytic fast path over the
//! simulated topology (link-mask liveness + per-link latencies) rather
//! than pushing every ping through the packet-level simulator; the
//! packet-level data plane is exercised end-to-end by the integration
//! tests and examples, and agrees with the analytic RTT on sampled pairs
//! (see `tests/full_stack.rs`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netsim::metrics::Histogram;
use sciera_topology::ases::{all_ases, fig8_vantages, measurement_points};
use sciera_topology::ip::IpBaseline;
use sciera_topology::links::{build_control_graph, BuiltTopology};
use scion_control::beacon::{BeaconConfig, BeaconEngine};
use scion_control::fullpath::FullPath;
use scion_control::pathdb::PathDb;
use scion_proto::addr::IsdAsn;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign length in days (paper: ~25 days spanning Jan 16–Feb 10).
    pub days: f64,
    /// Seconds per measurement round (paper pings at 1 Hz and aggregates
    /// to 60 s; one round here is one aggregated interval).
    pub round_secs: u64,
    /// Rounds between full path probes.
    pub probe_every_rounds: u32,
    /// Beacon retention (drives path richness; 32 reproduces Fig. 8).
    pub candidates_per_origin: usize,
    /// Maximum combined paths kept per pair.
    pub max_paths: usize,
    /// Inject the real-world incidents of §5.4/§5.5.
    pub with_incidents: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            days: 25.0,
            round_secs: 60,
            probe_every_rounds: 10,
            candidates_per_origin: 32,
            max_paths: 300,
            with_incidents: true,
            seed: 71,
        }
    }
}

impl CampaignConfig {
    /// A fast configuration for unit/integration tests.
    pub fn quick() -> Self {
        CampaignConfig {
            days: 2.0,
            round_secs: 300,
            probe_every_rounds: 4,
            candidates_per_origin: 8,
            max_paths: 80,
            with_incidents: true,
            seed: 71,
        }
    }
}

/// One candidate path, pre-digested for the fast path.
#[derive(Debug, Clone)]
pub struct CandPath {
    /// Link indices the path crosses (for liveness and disjointness).
    pub links: Vec<u32>,
    /// Base RTT in ms over idle links.
    pub base_rtt_ms: f64,
    /// AS-hop count.
    pub hops: usize,
}

impl CandPath {
    fn alive(&self, down: &[bool]) -> bool {
        self.links.iter().all(|&l| !down[l as usize])
    }

    fn shared_links(&self, other: &CandPath) -> usize {
        self.links
            .iter()
            .filter(|l| other.links.contains(l))
            .count()
    }
}

/// Per-pair accumulated state.
#[derive(Debug, Clone)]
pub struct PairData {
    /// Source AS.
    pub src: IsdAsn,
    /// Destination AS.
    pub dst: IsdAsn,
    /// Digested candidate paths (sorted shortest-first).
    pub candidates: Vec<CandPath>,
    /// Minimum RTT ever observed per candidate (Fig. 10a input).
    pub min_rtt_per_path: Vec<f64>,
    /// Active-path count per probe (Figs. 8/9 input).
    pub active_counts: Vec<u32>,
    /// Sum/count of SCION RTT samples (Fig. 6 mean).
    pub scion_sum: f64,
    /// Number of SCION samples.
    pub scion_n: u64,
    /// Sum of IP RTT samples.
    pub ip_sum: f64,
    /// Number of IP samples.
    pub ip_n: u64,
    /// Per-day (scion_sum, scion_n, ip_sum, ip_n) for Fig. 7.
    pub daily: Vec<(f64, u64, f64, u64)>,
    /// Failed SCMP pings (all three paths dead in a round).
    pub scion_failures: u64,
}

/// A named incident window over a link label substring.
#[derive(Debug, Clone)]
struct Incident {
    link_indices: Vec<usize>,
    /// Down intervals as (start_s, end_s).
    windows: Vec<(u64, u64)>,
    label: &'static str,
}

/// The campaign result store.
pub struct MeasurementStore {
    /// Configuration used.
    pub config: CampaignConfig,
    /// Per-ordered-pair data.
    pub pairs: Vec<PairData>,
    /// Global SCION RTT histogram (Fig. 5), ms.
    pub scion_hist: Histogram,
    /// Global IP RTT histogram (Fig. 5), ms.
    pub ip_hist: Histogram,
    /// Incident labels active during the run.
    pub incident_labels: Vec<&'static str>,
    /// Total SCMP pings considered (after exclusion).
    pub scion_pings: u64,
    /// Total ICMP pings considered (after exclusion).
    pub ip_pings: u64,
    /// Rounds excluded by the stall rule.
    pub excluded_rounds: u64,
    /// Number of links in the topology (for resilience experiments).
    pub n_links: usize,
}

impl MeasurementStore {
    /// Finds the pair record for `(src, dst)`.
    pub fn pair(&self, src: IsdAsn, dst: IsdAsn) -> Option<&PairData> {
        self.pairs.iter().find(|p| p.src == src && p.dst == dst)
    }
}

/// The campaign runner.
pub struct Campaign {
    /// The built deployment.
    pub topo: BuiltTopology,
    /// The BGP baseline.
    pub ip: IpBaseline,
    config: CampaignConfig,
    telemetry: sciera_telemetry::Telemetry,
}

impl Campaign {
    /// Builds the deployment and prepares a campaign.
    pub fn new(config: CampaignConfig) -> Self {
        Campaign {
            topo: build_control_graph(),
            ip: IpBaseline::new(),
            config,
            telemetry: sciera_telemetry::Telemetry::quiet(),
        }
    }

    /// Shares a telemetry handle: path-combination timings and campaign
    /// volume counters land in its registry, and `telemetry_summary` can
    /// render them next to the campaign report.
    pub fn set_telemetry(&mut self, telemetry: sciera_telemetry::Telemetry) {
        self.telemetry = telemetry;
    }

    /// The campaign's metric registry rendered as a text table.
    pub fn telemetry_summary(&self) -> String {
        self.telemetry.snapshot().render_table()
    }

    fn incidents(&self, total_secs: u64) -> Vec<Incident> {
        if !self.config.with_incidents {
            return Vec::new();
        }
        let day = 86_400u64;
        let find = |needle: &str| -> Vec<usize> {
            self.topo
                .links
                .iter()
                .enumerate()
                .filter(|(_, l)| l.spec.label.contains(needle))
                .map(|(i, _)| i)
                .collect()
        };
        let mut incidents = Vec::new();
        // Submarine cable cut between Korea and Singapore: the direct
        // circuit is dead for a long stretch of the campaign (§5.5). The
        // window scales with campaign length so short test runs see it too.
        // Long enough that the affected pairs' *median* active-path count
        // drops (the paper reports a median deviation of 16 for DJ-SG),
        // while pairs not routing over the cut circuit stay at 0.
        incidents.push(Incident {
            link_indices: find("Daejeon-Singapore direct"),
            windows: vec![(total_secs / 10, total_secs / 10 + total_secs * 55 / 100)],
            label: "KR-SG submarine cable cut",
        });
        // BRIDGES instabilities: its transatlantic uplink flaps through the
        // campaign (affects UVa/Princeton/Equinix, §5.4 outliers).
        let bridges_links = find("GEANT-BRIDGES transatlantic");
        let mut windows = Vec::new();
        let mut t = day / 2;
        while t < total_secs {
            windows.push((t, t + 2 * 3600));
            t += 16 * 3600; // flap every 16 h, down for 2 h
        }
        incidents.push(Incident {
            link_indices: bridges_links,
            windows,
            label: "BRIDGES routing instabilities",
        });
        // The same instabilities degrade BRIDGES' internal fabric: one of
        // the UVa VLANs and one Equinix cross-connect are out for most of
        // the period, dragging the *median* active-path count for the
        // UVa/Princeton/Equinix pairs (the paper's Fig. 9 hotspots).
        incidents.push(Incident {
            link_indices: [
                find("BRIDGES-UVa VLAN 3"),
                find("BRIDGES-Equinix cross-connect B"),
            ]
            .concat(),
            windows: vec![(total_secs / 20, total_secs / 20 + total_secs * 55 / 100)],
            label: "BRIDGES fabric degradation",
        });
        // UFMS -> Equinix detour: the direct BRIDGES-RNP circuits are out
        // for most of the period, forcing the extra GEANT hop (§5.4).
        incidents.push(Incident {
            link_indices: [
                find("BRIDGES-RNP (Internet2/AtlanticWave)"),
                find("BRIDGES-RNP via Jacksonville"),
            ]
            .concat(),
            windows: vec![(0, total_secs * 2 / 5)],
            label: "UFMS-Equinix routed through GEANT",
        });
        // January 21st maintenance: several links serviced for 8 hours on
        // day 5 (Fig. 7 spike).
        if total_secs > 5 * day {
            incidents.push(Incident {
                link_indices: [find("GEANT-KISTI Amsterdam"), find("SG-AMS via KREONET")].concat(),
                windows: vec![(5 * day, 5 * day + 8 * 3600)],
                label: "January 21 maintenance",
            });
        }
        // New EU-US circuit activated on day 9 (Jan 25): it is *down*
        // before that (clamped into short runs).
        incidents.push(Incident {
            link_indices: find("GEANT-BRIDGES via Paris"),
            windows: vec![(0, (9 * day).min(total_secs / 5))],
            label: "new EU-US links activated Jan 25",
        });
        // February 6 node upgrades: KISTI ring links flap on day 21.
        let mut feb_windows = Vec::new();
        if total_secs > 21 * day {
            for k in 0..6 {
                feb_windows.push((21 * day + k * 4 * 3600, 21 * day + k * 4 * 3600 + 3600));
            }
        }
        incidents.push(Incident {
            link_indices: [
                find("KISTI Chicago-Amsterdam"),
                find("KISTI Daejeon-Seattle"),
            ]
            .concat(),
            windows: feb_windows,
            label: "February 6 upgrades",
        });
        incidents
    }

    /// Runs the campaign, producing the measurement store.
    pub fn run(&self) -> MeasurementStore {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let total_secs = (cfg.days * 86_400.0) as u64;
        let n_links = self.topo.links.len();

        // Control plane: beacon once; segments live 6 h in real SCION and
        // are re-registered continuously — the candidate *set* is stable,
        // so one beaconing pass provides it.
        let store = BeaconEngine::new(
            &self.topo.graph,
            1_700_000_000,
            BeaconConfig {
                candidates_per_origin: cfg.candidates_per_origin,
                ..Default::default()
            },
        )
        .run()
        .expect("beaconing over the SCIERA graph succeeds");
        // All campaign lookups go through the memoized path DB; its
        // combine timings land in the shared telemetry like the direct
        // combinator's used to.
        let mut pathdb = PathDb::new(store);
        pathdb.set_telemetry(self.telemetry.clone());

        // Pair universe: the 11 tool hosts plus every Fig. 8 vantage
        // (the paper's path statistics cover vantages where the ping tool
        // itself was not deployed) x all other ISD-71 ASes.
        let mut source_ias: Vec<IsdAsn> = measurement_points().iter().map(|a| a.ia).collect();
        for v in fig8_vantages() {
            if !source_ias.contains(&v) {
                source_ias.push(v);
            }
        }
        let sources = source_ias;
        let targets: Vec<IsdAsn> = all_ases()
            .into_iter()
            .filter(|a| a.ia.isd.0 == 71)
            .map(|a| a.ia)
            .collect();
        let up = |_: usize| false;
        let mut pairs: Vec<PairData> = Vec::new();
        for &s in &sources {
            for &d in &targets {
                if s == d {
                    continue;
                }
                let full = pathdb.paths(s, d, cfg.max_paths);
                // Guard: memoization must not change the experiment's
                // path sets (checked in debug builds; compiled out of
                // release-mode figure runs).
                debug_assert_eq!(
                    full,
                    scion_control::combine::combine_paths(pathdb.store(), s, d, cfg.max_paths),
                    "memoized combination diverged for {s}->{d}"
                );
                let candidates: Vec<CandPath> = full
                    .iter()
                    .filter_map(|p| self.digest_path(p, &up))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let n = candidates.len();
                pairs.push(PairData {
                    src: s,
                    dst: d,
                    candidates,
                    min_rtt_per_path: vec![f64::INFINITY; n],
                    active_counts: Vec::new(),
                    scion_sum: 0.0,
                    scion_n: 0,
                    ip_sum: 0.0,
                    ip_n: 0,
                    daily: vec![(0.0, 0, 0.0, 0); cfg.days.ceil() as usize + 1],
                    scion_failures: 0,
                });
            }
        }

        let incidents = self.incidents(total_secs);
        let incident_labels = incidents.iter().map(|i| i.label).collect();

        // Per-pair chosen path indices (shortest, fastest, most disjoint).
        let mut chosen: Vec<[usize; 3]> = pairs.iter().map(|_| [0, 0, 0]).collect();
        let mut need_probe: Vec<bool> = vec![true; pairs.len()];

        let mut scion_hist = Histogram::new(0.0, 1000.0, 4000);
        let mut ip_hist = Histogram::new(0.0, 1000.0, 4000);
        let mut scion_pings = 0u64;
        let mut ip_pings = 0u64;
        let mut excluded_rounds = 0u64;

        // Per-sample RTT and loss also land in the shared telemetry
        // registry, so the operator console sees the campaign live (the
        // local `Histogram`s above remain the figure-grade store).
        let tele_scion_rtt = self.telemetry.histogram("campaign.scion_rtt_ms");
        let tele_ip_rtt = self.telemetry.histogram("campaign.ip_rtt_ms");
        let tele_lost = self.telemetry.counter("campaign.scion_ping_failures");

        let rounds = total_secs / cfg.round_secs;
        let mut down = vec![false; n_links];
        for round in 0..rounds {
            let t = round * cfg.round_secs;
            let day_idx = (t / 86_400) as usize;
            // Update link state from the incident schedule.
            for d in down.iter_mut() {
                *d = false;
            }
            for inc in &incidents {
                if inc.windows.iter().any(|&(s, e)| t >= s && t < e) {
                    for &li in &inc.link_indices {
                        down[li] = true;
                    }
                }
            }
            // The tool's stall: ICMP dead during minutes [15, 30) of each
            // hour; per the paper we exclude those intervals entirely.
            let minute_of_hour = (t % 3600) / 60;
            let stalled = (15..30).contains(&minute_of_hour);
            if stalled {
                excluded_rounds += 1;
            }

            let probing = round % cfg.probe_every_rounds as u64 == 0;
            for (pi, pair) in pairs.iter_mut().enumerate() {
                // Full path probe: enumerate active paths, pick the three.
                if probing || need_probe[pi] {
                    let mut active = 0u32;
                    let mut fastest = usize::MAX;
                    let mut fastest_rtt = f64::INFINITY;
                    let mut shortest = usize::MAX;
                    for (ci, c) in pair.candidates.iter().enumerate() {
                        if !c.alive(&down) {
                            continue;
                        }
                        active += 1;
                        if shortest == usize::MAX {
                            shortest = ci; // candidates sorted by length
                        }
                        if c.base_rtt_ms < fastest_rtt {
                            fastest_rtt = c.base_rtt_ms;
                            fastest = ci;
                        }
                        pair.min_rtt_per_path[ci] = pair.min_rtt_per_path[ci].min(c.base_rtt_ms);
                    }
                    pair.active_counts.push(active);
                    if active > 0 {
                        // Most disjoint from shortest+fastest.
                        let s = &pair.candidates[shortest];
                        let f = &pair.candidates[fastest];
                        let mut best = shortest;
                        let mut best_shared = usize::MAX;
                        for (ci, c) in pair.candidates.iter().enumerate() {
                            if !c.alive(&down) {
                                continue;
                            }
                            let shared = c.shared_links(s) + c.shared_links(f);
                            if shared < best_shared {
                                best_shared = shared;
                                best = ci;
                            }
                        }
                        chosen[pi] = [shortest, fastest, best];
                    }
                    need_probe[pi] = false;
                }

                if stalled {
                    continue;
                }

                // SCMP pings over the three chosen paths.
                let mut best_rtt: Option<f64> = None;
                let mut ok = 0u8;
                for &ci in &chosen[pi] {
                    let c = &pair.candidates[ci];
                    if !c.alive(&down) {
                        continue;
                    }
                    ok += 1;
                    // Research links are lightly loaded: small jitter.
                    let jitter = 1.0 + rng.gen::<f64>() * 0.02;
                    let rtt = c.base_rtt_ms * jitter + 0.2;
                    best_rtt = Some(best_rtt.map_or(rtt, |b: f64| b.min(rtt)));
                }
                scion_pings += 3;
                if ok < 2 {
                    // ">= two pings failed" triggers an immediate re-probe.
                    need_probe[pi] = true;
                }
                if let Some(rtt) = best_rtt {
                    scion_hist.record(rtt);
                    tele_scion_rtt.record(rtt);
                    pair.scion_sum += rtt;
                    pair.scion_n += 1;
                    let d = &mut pair.daily[day_idx];
                    d.0 += rtt;
                    d.1 += 1;
                } else {
                    pair.scion_failures += 1;
                    tele_lost.inc();
                }

                // ICMP over the BGP baseline: commercial transit carries
                // cross traffic — occasional congestion episodes inflate
                // the tail far more than on the research links.
                if let Some(base) = self.ip.rtt_ms(pair.src, pair.dst) {
                    let congestion = if rng.gen::<f64>() < 0.12 {
                        1.0 + rng.gen::<f64>() * 1.6 // episodic queueing (bufferbloat)
                    } else {
                        1.0 + rng.gen::<f64>() * 0.06 // cross-traffic floor
                    };
                    let rtt = base * congestion + 0.2;
                    ip_hist.record(rtt);
                    tele_ip_rtt.record(rtt);
                    ip_pings += 1;
                    pair.ip_sum += rtt;
                    pair.ip_n += 1;
                    let d = &mut pair.daily[day_idx];
                    d.2 += rtt;
                    d.3 += 1;
                }
            }
        }

        self.telemetry
            .counter("campaign.scion_pings")
            .add(scion_pings);
        self.telemetry.counter("campaign.ip_pings").add(ip_pings);
        self.telemetry
            .counter("campaign.excluded_rounds")
            .add(excluded_rounds);
        self.telemetry
            .counter("campaign.pairs")
            .add(pairs.len() as u64);
        MeasurementStore {
            config: self.config.clone(),
            pairs,
            scion_hist,
            ip_hist,
            incident_labels,
            scion_pings,
            ip_pings,
            excluded_rounds,
            n_links,
        }
    }

    /// Digests a combined path into the fast-path representation.
    pub fn digest_path(
        &self,
        path: &FullPath,
        link_down: &dyn Fn(usize) -> bool,
    ) -> Option<CandPath> {
        let rtt = self.topo.path_rtt_ms(path, link_down)?;
        let mut links = Vec::with_capacity(path.hops.len());
        for h in &path.hops {
            if h.egress != 0 {
                links.push(self.topo.link_index_of(h.ia, h.egress)? as u32);
            }
        }
        Some(CandPath {
            links,
            base_rtt_ms: rtt,
            hops: path.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_proto::addr::ia;

    fn quick_store() -> MeasurementStore {
        Campaign::new(CampaignConfig::quick()).run()
    }

    #[test]
    fn campaign_produces_samples_for_all_pairs() {
        let store = quick_store();
        assert!(store.pairs.len() > 200, "pairs: {}", store.pairs.len());
        assert!(store.scion_pings > 10_000);
        assert!(store.ip_pings > 0);
        for p in &store.pairs {
            assert!(p.scion_n > 0, "{} -> {} has no SCION samples", p.src, p.dst);
            assert!(p.ip_n > 0, "{} -> {} has no IP samples", p.src, p.dst);
        }
    }

    #[test]
    fn stall_rule_excludes_rounds() {
        let store = quick_store();
        assert!(
            store.excluded_rounds > 0,
            "the tool's stall must be reproduced"
        );
    }

    #[test]
    fn cable_cut_reduces_dj_sg_active_paths() {
        let store = quick_store();
        let pair = store
            .pair(ia("71-2:0:3b"), ia("71-2:0:3d"))
            .expect("DJ->SG measured");
        let max = *pair.active_counts.iter().max().unwrap();
        let min = *pair.active_counts.iter().min().unwrap();
        assert!(
            min < max,
            "cable cut should reduce the active path count at times"
        );
    }

    #[test]
    fn vantage_pairs_have_at_least_two_paths() {
        // The Fig. 8 floor: every vantage pair sees >= 2 paths. (Some
        // single-homed leaves like SWITCH reasonably have a single path
        // from their own parent.)
        let store = quick_store();
        let vantages = sciera_topology::ases::fig8_vantages();
        for &s in &vantages {
            for &d in &vantages {
                if s == d {
                    continue;
                }
                let p = store.pair(s, d).expect("vantage pair measured");
                assert!(
                    p.candidates.len() >= 2,
                    "{s} -> {d}: {}",
                    p.candidates.len()
                );
            }
        }
    }

    #[test]
    fn incident_free_run_has_stable_counts() {
        let mut cfg = CampaignConfig::quick();
        cfg.with_incidents = false;
        let store = Campaign::new(cfg).run();
        for p in &store.pairs {
            let max = *p.active_counts.iter().max().unwrap();
            let min = *p.active_counts.iter().min().unwrap();
            assert_eq!(max, min, "{} -> {} varies without incidents", p.src, p.dst);
        }
        assert!(store.incident_labels.is_empty());
    }

    #[test]
    fn scion_rtts_plausible() {
        let store = quick_store();
        let med = store.scion_hist.quantile(0.5).unwrap();
        assert!((10.0..400.0).contains(&med), "median SCION RTT {med} ms");
        let ip_med = store.ip_hist.quantile(0.5).unwrap();
        assert!((10.0..500.0).contains(&ip_med), "median IP RTT {ip_med} ms");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = quick_store();
        let b = quick_store();
        assert_eq!(a.scion_pings, b.scion_pings);
        assert_eq!(a.scion_hist.quantile(0.5), b.scion_hist.quantile(0.5));
    }

    #[test]
    fn run_feeds_shared_telemetry_registry() {
        let tele = sciera_telemetry::Telemetry::quiet();
        let mut campaign = Campaign::new(CampaignConfig::quick());
        campaign.set_telemetry(tele.clone());
        let store = campaign.run();
        let snap = tele.snapshot();
        let rtt = snap
            .histogram("campaign.scion_rtt_ms")
            .expect("per-sample RTT histogram registered");
        assert_eq!(
            rtt.count,
            store.scion_hist.count(),
            "every figure-grade sample also lands in telemetry"
        );
        let ip = snap.histogram("campaign.ip_rtt_ms").unwrap();
        assert_eq!(ip.count, store.ip_pings);
        // The failure counter exists even when nothing was lost.
        assert!(snap.counter("campaign.scion_ping_failures").is_some());
    }
}
