//! Concurrency SLO observatory: lookup latency under concurrent clients.
//!
//! The epoch-snapshot [`EpochPathDb`] exists so that path lookups keep
//! their latency SLO while the control plane is busy — beacon batches
//! registering, SCMP interface-down storms sweeping the cache. This
//! module measures exactly that: for each client count K it pins one
//! *writer* thread in a link-kill storm loop (store mutation + publish,
//! then crossing-interface cache sweeps — the worst-case write mix) and
//! drives K *reader* threads through a warm query pool, recording every
//! lookup's wall latency. The p50/p99/max per K quantify how lookup
//! latency degrades with concurrency; with the snapshot design the p99
//! at K=64 should stay within an order of magnitude of K=1, because
//! readers only ever contend on a shard-map lock and the brief published
//! pointer read — never on the writer's combine work.
//!
//! The harness is deterministic apart from the scheduler: topology,
//! pools and per-thread query schedules derive from the seed; only the
//! interleaving (and therefore the measured latencies and storm count)
//! varies run to run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use sciera_topology::synth::{synthesize, SynthConfig};
use scion_control::beacon::{BeaconConfig, BeaconEngine};
use scion_control::epoch::{EpochConfig, EpochPathDb};
use scion_control::store::SegmentHandle;
use scion_proto::addr::IsdAsn;

/// Parameters of one SLO run.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Synthetic topology size (AS count).
    pub n_ases: usize,
    /// Distinct (src, dst) pairs the clients cycle over.
    pub pair_pool: usize,
    /// Client counts to measure, in order (one [`SloPoint`] each).
    pub clients: Vec<usize>,
    /// Minimum lookups each client performs per point. Clients keep
    /// looking up past this floor until the writer has completed
    /// [`min_storms`](Self::min_storms) cycles, so every K point
    /// experiences comparable churn regardless of how fast the lookups
    /// themselves are.
    pub lookups_per_client: usize,
    /// Minimum writer storm cycles per point.
    pub min_storms: u64,
    /// Per-query path cap.
    pub max_paths: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            n_ases: 200,
            pair_pool: 100,
            clients: vec![1, 8, 64],
            lookups_per_client: 2_000,
            min_storms: 50,
            max_paths: 32,
            seed: 0x510e_5c10,
        }
    }
}

/// Measured latencies for one client count.
#[derive(Debug, Clone)]
pub struct SloPoint {
    /// Concurrent reader threads.
    pub clients: usize,
    /// Total lookups across all readers.
    pub lookups: u64,
    /// Median lookup latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile lookup latency, nanoseconds.
    pub p99_ns: u64,
    /// Worst observed lookup latency, nanoseconds.
    pub max_ns: u64,
    /// Link-kill storm cycles the writer completed while readers ran.
    pub storms: u64,
    /// Store generations published during the measurement window.
    pub publishes: u64,
}

/// Tiny deterministic PRNG for workload draws (xorshift64*).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One writer storm iteration's ammunition: a core interface to kill and
/// re-register (a store mutation that publishes a new generation) plus a
/// set of path-crossing interfaces to sweep from the cache (the SCMP
/// reaction, which leaves the generation alone).
struct Storm {
    kill_ia: IsdAsn,
    kill_ifid: u16,
    core_snapshot: Vec<SegmentHandle>,
    crossing: Vec<(IsdAsn, u16)>,
}

impl Storm {
    fn capture(db: &EpochPathDb, pool: &[(IsdAsn, IsdAsn)], max_paths: usize) -> Storm {
        let snap = db.snapshot();
        let cores = snap.store().known_cores();
        let mut core_snapshot = Vec::new();
        for &a in &cores {
            for &b in &cores {
                core_snapshot.extend(snap.store().core_between_handles(a, b).iter().cloned());
            }
        }
        let seg = core_snapshot
            .iter()
            .find(|s| s.len() >= 2)
            .expect("synthetic topology yields multi-hop core segments");
        let (kill_ia, kill_ifid) = (seg.entries[0].ia, seg.entries[0].hop.cons_egress);
        // Crossing sweeps target interfaces real cached paths traverse, so
        // the storm actually evicts entries rather than no-oping.
        let mut crossing = Vec::new();
        for &(src, dst) in pool.iter().take(8) {
            if let Some(p) = db.paths(src, dst, max_paths).first() {
                crossing.extend(p.interfaces().iter().take(2).copied());
            }
        }
        crossing.dedup();
        Storm {
            kill_ia,
            kill_ifid,
            core_snapshot,
            crossing,
        }
    }

    /// One full storm cycle; returns how many generations were published.
    fn fire(&self, db: &EpochPathDb) -> u64 {
        db.mutate_store(|s| {
            s.invalidate_interface(self.kill_ia, self.kill_ifid);
            for h in &self.core_snapshot {
                s.register_core_handle(h.clone());
            }
        });
        for &(ia, ifid) in &self.crossing {
            db.invalidate_paths_crossing(ia, ifid);
        }
        1
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the full SLO sweep: one shared store, a fresh warm database per
/// client count.
pub fn run_slo(cfg: &SloConfig) -> Vec<SloPoint> {
    let topo = synthesize(&SynthConfig::sized(cfg.n_ases));
    let store = BeaconEngine::new(
        &topo.graph,
        1_700_000_000,
        BeaconConfig {
            candidates_per_origin: 6,
            max_len: 16,
            rounds: 24,
            delta_propagation: true,
            parallel_propagation: true,
        },
    )
    .run()
    .expect("synthetic topology beacons cleanly");

    let mut rng = Rng::new(cfg.seed);
    let leaves: Vec<IsdAsn> = topo
        .graph
        .ases()
        .filter(|a| !a.core)
        .map(|a| a.ia)
        .collect();
    let endpoints = if leaves.is_empty() {
        topo.graph.core_ases()
    } else {
        leaves
    };
    let mut seen = std::collections::BTreeSet::new();
    let mut pool: Vec<(IsdAsn, IsdAsn)> = Vec::new();
    let mut draws = 0usize;
    while pool.len() < cfg.pair_pool && draws < cfg.pair_pool.saturating_mul(8) {
        draws += 1;
        let a = endpoints[rng.below(endpoints.len())];
        let b = endpoints[rng.below(endpoints.len())];
        if a != b && seen.insert((a, b)) {
            pool.push((a, b));
        }
    }
    assert!(!pool.is_empty(), "no queryable pairs at N={}", cfg.n_ases);

    cfg.clients
        .iter()
        .map(|&k| run_point(cfg, &store, &pool, k))
        .collect()
}

fn run_point(
    cfg: &SloConfig,
    store: &scion_control::store::SegmentStore,
    pool: &[(IsdAsn, IsdAsn)],
    clients: usize,
) -> SloPoint {
    let db = EpochPathDb::with_config(store.clone(), EpochConfig::for_topology(cfg.n_ases));
    db.prefetch(pool, cfg.max_paths);
    let storm = Storm::capture(&db, pool, cfg.max_paths);

    let stop = AtomicBool::new(false);
    let storms = AtomicU64::new(0);
    let publishes = AtomicU64::new(0);

    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let writer = {
            let db = db.clone();
            let (stop, storms, publishes, storm) = (&stop, &storms, &publishes, &storm);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    publishes.fetch_add(storm.fire(&db), Ordering::Relaxed);
                    storms.fetch_add(1, Ordering::Relaxed);
                    // Leave readers room on small machines; a real beacon
                    // cadence is far sparser than back-to-back storms.
                    std::thread::yield_now();
                }
            })
        };

        let readers: Vec<_> = (0..clients)
            .map(|c| {
                let db = db.clone();
                let storms = &storms;
                scope.spawn(move || {
                    let mut rng = Rng::new(cfg.seed ^ (c as u64 + 1).rotate_left(23));
                    let mut lat = Vec::with_capacity(cfg.lookups_per_client);
                    // Run to the lookup floor, then keep going until the
                    // writer has delivered the storm quota, so fast
                    // lookups can't starve the point of churn.
                    while lat.len() < cfg.lookups_per_client
                        || storms.load(Ordering::Relaxed) < cfg.min_storms
                    {
                        let (src, dst) = pool[rng.below(pool.len())];
                        let t = Instant::now();
                        let (paths, generation) = db.paths_with_generation(src, dst, cfg.max_paths);
                        lat.push(t.elapsed().as_nanos() as u64);
                        // The served generation can trail the published one
                        // (a racing publish), never lead it.
                        debug_assert!(generation <= db.generation());
                        std::hint::black_box(paths);
                    }
                    lat
                })
            })
            .collect();

        let mut all: Vec<u64> = Vec::with_capacity(clients * cfg.lookups_per_client);
        for r in readers {
            all.extend(r.join().expect("reader panicked"));
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer panicked");
        all
    });

    latencies.sort_unstable();
    SloPoint {
        clients,
        lookups: latencies.len() as u64,
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        max_ns: latencies.last().copied().unwrap_or(0),
        storms: storms.load(Ordering::Relaxed),
        publishes: publishes.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_points_measure_under_writer_storms() {
        let cfg = SloConfig {
            n_ases: 60,
            pair_pool: 24,
            clients: vec![1, 4],
            lookups_per_client: 300,
            min_storms: 5,
            max_paths: 16,
            seed: 7,
        };
        let points = run_slo(&cfg);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.lookups >= p.clients as u64 * 300);
            assert!(p.p50_ns > 0, "lookups must take measurable time");
            assert!(p.p99_ns >= p.p50_ns);
            assert!(p.max_ns >= p.p99_ns);
            assert!(p.storms >= 5, "writer must deliver the storm quota");
            assert!(p.publishes >= p.storms);
        }
    }
}
