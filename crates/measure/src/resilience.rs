//! Link-failure resilience: Fig. 10c.
//!
//! "In 100 simulation runs, we randomly remove between 0% and 100% of the
//! links (one link per step) and calculate how many AS pairs still have
//! connectivity", comparing SCION's multipath (any path of the combined
//! set) with a single-path alternative that only ever uses the shortest
//! path.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use sciera_topology::ases::{all_ases, fig8_vantages};
use scion_control::beacon::{BeaconConfig, BeaconEngine};
use scion_control::combine::combine_paths;
use scion_control::pathdb::PathDb;
use scion_proto::addr::IsdAsn;

use crate::campaign::{Campaign, CampaignConfig, CandPath};

/// One sweep point of Fig. 10c.
#[derive(Debug, Clone, Copy)]
pub struct Fig10cPoint {
    /// Fraction of links removed.
    pub removed_frac: f64,
    /// Fraction of AS pairs still connected using all paths (multipath).
    pub multipath_connectivity: f64,
    /// Fraction still connected using only each pair's shortest path.
    pub singlepath_connectivity: f64,
}

/// The Fig. 10c experiment result.
#[derive(Debug, Clone)]
pub struct Fig10c {
    /// Sweep points, increasing removal fraction.
    pub points: Vec<Fig10cPoint>,
    /// Simulation runs averaged.
    pub runs: u32,
}

impl Fig10c {
    /// Connectivity at a removal fraction (nearest sweep point).
    pub fn at(&self, removed: f64) -> Fig10cPoint {
        *self
            .points
            .iter()
            .min_by(|a, b| {
                (a.removed_frac - removed)
                    .abs()
                    .partial_cmp(&(b.removed_frac - removed).abs())
                    .unwrap()
            })
            .expect("sweep is non-empty")
    }

    /// Renders the sweep as a table.
    pub fn to_table(&self) -> String {
        let mut s = format!(
            "{:>10} {:>12} {:>12}   ({} runs)\n",
            "removed%", "multipath%", "singlepath%", self.runs
        );
        for p in &self.points {
            s.push_str(&format!(
                "{:>10.0} {:>12.1} {:>12.1}\n",
                p.removed_frac * 100.0,
                p.multipath_connectivity * 100.0,
                p.singlepath_connectivity * 100.0
            ));
        }
        s
    }
}

/// Runs the Fig. 10c sweep: `runs` random removal orders, connectivity
/// evaluated every `step_frac` of links removed, over all vantage pairs
/// (`all_pairs` switches to every ISD-71 AS pair as in the paper's
/// simulation over the full topology).
pub fn fig10c(runs: u32, seed: u64, all_pairs: bool) -> Fig10c {
    let campaign = Campaign::new(CampaignConfig::quick());
    let topo = &campaign.topo;
    let n_links = topo.links.len();
    let store = BeaconEngine::new(
        &topo.graph,
        1_700_000_000,
        BeaconConfig {
            candidates_per_origin: 16,
            ..Default::default()
        },
    )
    .run()
    .expect("beaconing succeeds");
    let mut db = PathDb::new(store);

    let endpoints: Vec<IsdAsn> = if all_pairs {
        all_ases()
            .into_iter()
            .filter(|a| a.ia.isd.0 == 71)
            .map(|a| a.ia)
            .collect()
    } else {
        fig8_vantages()
    };
    // Pre-digest candidate paths for every ordered pair.
    let up = |_: usize| false;
    let mut pair_paths: Vec<Vec<CandPath>> = Vec::new();
    for &s in &endpoints {
        for &d in &endpoints {
            if s == d {
                continue;
            }
            let paths = db.paths(s, d, 150);
            // Guard: the Fig. 10c candidate sets must be exactly what the
            // direct combinator yields (debug builds only).
            debug_assert_eq!(
                paths.len(),
                combine_paths(db.store(), s, d, 150).len(),
                "memoized path count diverged for {s}->{d}"
            );
            pair_paths.push(
                paths
                    .iter()
                    .filter_map(|p| campaign.digest_path(p, &up))
                    .collect(),
            );
        }
    }

    let steps: Vec<usize> = (0..=10).map(|i| i * n_links / 10).collect();
    let mut multi_acc = vec![0.0f64; steps.len()];
    let mut single_acc = vec![0.0f64; steps.len()];
    let mut rng = StdRng::seed_from_u64(seed);

    for _ in 0..runs {
        let mut order: Vec<usize> = (0..n_links).collect();
        order.shuffle(&mut rng);
        let mut down = vec![false; n_links];
        let mut removed = 0usize;
        for (si, &target) in steps.iter().enumerate() {
            while removed < target {
                down[order[removed]] = true;
                removed += 1;
            }
            let mut multi_ok = 0usize;
            let mut single_ok = 0usize;
            for paths in &pair_paths {
                if paths
                    .iter()
                    .any(|p| p.links.iter().all(|&l| !down[l as usize]))
                {
                    multi_ok += 1;
                }
                if let Some(shortest) = paths.first() {
                    if shortest.links.iter().all(|&l| !down[l as usize]) {
                        single_ok += 1;
                    }
                }
            }
            multi_acc[si] += multi_ok as f64 / pair_paths.len() as f64;
            single_acc[si] += single_ok as f64 / pair_paths.len() as f64;
        }
    }

    let points = steps
        .iter()
        .enumerate()
        .map(|(si, &target)| Fig10cPoint {
            removed_frac: target as f64 / n_links as f64,
            multipath_connectivity: multi_acc[si] / runs as f64,
            singlepath_connectivity: single_acc[si] / runs as f64,
        })
        .collect();
    Fig10c { points, runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10c_shape_matches_paper() {
        let f = fig10c(20, 9, false);
        let zero = f.at(0.0);
        assert!((zero.multipath_connectivity - 1.0).abs() < 1e-9);
        assert!((zero.singlepath_connectivity - 1.0).abs() < 1e-9);

        let p20 = f.at(0.2);
        // Paper: at 20 % removal, ~90 % multipath vs ~50 % single path.
        assert!(
            p20.multipath_connectivity > 0.7,
            "multipath at 20%: {}",
            p20.multipath_connectivity
        );
        assert!(
            p20.multipath_connectivity > p20.singlepath_connectivity + 0.15,
            "multipath {} should clearly beat single-path {}",
            p20.multipath_connectivity,
            p20.singlepath_connectivity
        );

        let all = f.at(1.0);
        assert!(all.multipath_connectivity < 1e-9);
    }

    #[test]
    fn connectivity_monotone_decreasing() {
        let f = fig10c(10, 3, false);
        for w in f.points.windows(2) {
            assert!(
                w[0].multipath_connectivity >= w[1].multipath_connectivity - 1e-9,
                "multipath not monotone"
            );
            assert!(
                w[0].singlepath_connectivity >= w[1].singlepath_connectivity - 1e-9,
                "singlepath not monotone"
            );
        }
    }

    #[test]
    fn table_renders() {
        let f = fig10c(2, 1, false);
        let t = f.to_table();
        assert!(t.contains("multipath%"));
        assert_eq!(t.lines().count(), 12);
    }
}
