//! The longitudinal path-dynamics observatory.
//!
//! The per-run telemetry of the prober/health stack answers "how is the
//! network *right now*"; the measurement studies the stack reproduces
//! (§5.4 and the SCIONLab path-dynamics literature) need the longitudinal
//! view: how long paths live, how often the healthy set churns, how RTT
//! moves when links fail and recover. This module turns a simulated
//! deployment into exactly that dataset:
//!
//! * [`run_campaign`] drives a [`DynamicsNet`] through scheduled epochs —
//!   probe rounds via the orchestrator's prober, seeded link-kill/restore
//!   and latency-scaling (cost-change) events — and collects one
//!   [`PathEpochRecord`] per registered path per epoch plus a companion
//!   [`ChurnRecord`] stream (appear/disappear straight from the
//!   `HealthBoard`'s transitions, failover records derived from the
//!   campaign's own selection tracking, causes attributed from the SCMP
//!   pipeline's down reasons).
//! * [`DynamicsDataset`] is the ML-ready product: versioned-schema JSONL
//!   in, JSONL out ([`DynamicsDataset::paths_jsonl`] /
//!   [`DynamicsDataset::from_jsonl`]), with [`DynamicsDataset::validate`]
//!   enforcing the schema invariants and [`DynamicsDataset::summary`]
//!   computing the headline statistics (path-lifetime CDF, churn rate per
//!   epoch, RTT stability).
//! * [`replay_policies`] closes the loop: it replays the dataset through
//!   `scion_pan`'s adaptive selection policies — feeding each epoch's
//!   records into a rolling [`PathStatsView`] *after* the epoch's
//!   selection, so policies only ever act on the past — and scores them
//!   against the static baseline on achieved RTT and failover gap.
//!
//! Everything is deterministic from the seed: equal seeds over equal
//! networks reproduce the dataset byte for byte (the replay guarantee the
//! proptests pin down).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use sciera_telemetry::{Histogram, Telemetry};
use scion_control::fullpath::FullPath;
use scion_orchestrator::prober::EchoOutcome;
use scion_pan::adaptive::{AdaptivePolicy, Candidate, PathObservation, PathStatsView};
use scion_proto::addr::IsdAsn;

/// Version stamp every exported record carries; bump on any schema change.
pub const SCHEMA_VERSION: u32 = 1;

/// Application-level RTT charged for an epoch whose selected path is dead:
/// the retransmission-timeout ceiling a transport would hit before the
/// selector reacts. Used by [`replay_policies`] so outage epochs surface
/// in the achieved p50/p99 instead of silently dropping out of the
/// distribution.
pub const OUTAGE_RTO_MS: f64 = 3_000.0;

/// What the campaign engine needs from a network. `sciera-core` implements
/// this on the full simulated deployment; tests implement it on scripted
/// mocks built from the real prober + health board.
pub trait DynamicsNet {
    /// Current simulated Unix time.
    fn now_unix(&self) -> u64;
    /// Advances simulated time by `secs`.
    fn advance_time(&mut self, secs: u64);
    /// Registers a (src, dst) pair with the prober, snapshotting up to
    /// `max_paths` currently-live paths; returns the snapshot.
    fn register_pair(&mut self, src: IsdAsn, dst: IsdAsn, max_paths: usize) -> Vec<FullPath>;
    /// Runs one echo campaign over every registered path and closes the
    /// health board's round.
    fn probe_round(&mut self) -> Vec<scion_orchestrator::prober::ProbeResult>;
    /// Every churn event the health board has emitted so far, oldest
    /// first (the engine tracks how many it has already consumed).
    fn churn_events(&self) -> Vec<scion_orchestrator::health::ChurnEvent>;
    /// Liveness verdict and down reason for one probed path, if known.
    fn path_state(
        &self,
        src: IsdAsn,
        dst: IsdAsn,
        fingerprint: &str,
    ) -> Option<(bool, Option<String>)>;
    /// The control plane's current generation stamp (segment store /
    /// path-database invalidation epoch).
    fn generation(&self) -> u64;
    /// Number of links in the topology.
    fn link_count(&self) -> usize;
    /// Indices of the links `path` crosses.
    fn path_links(&self, path: &FullPath) -> Vec<usize>;
    /// Administrative link state (fault injection).
    fn set_link_up(&mut self, index: usize, up: bool);
    /// Scales one link's latency relative to its nominal value (cost
    /// change injection); `1.0` restores the nominal latency.
    fn set_link_latency_factor(&mut self, index: usize, factor: f64);
}

/// Campaign schedule and event-injection knobs.
#[derive(Debug, Clone)]
pub struct DynamicsConfig {
    /// Epochs to run.
    pub epochs: usize,
    /// Simulated seconds per epoch.
    pub epoch_secs: u64,
    /// Probe rounds per epoch.
    pub rounds_per_epoch: usize,
    /// Paths snapshotted per registered pair.
    pub max_paths_per_pair: usize,
    /// Seed for all event-injection draws.
    pub seed: u64,
    /// Inject a link kill every this many epochs (0 disables).
    pub kill_every: usize,
    /// Epochs a killed link stays down.
    pub kill_duration: usize,
    /// Distinct links the kill schedule cycles over — a small pool makes
    /// the same links flap repeatedly, which is what churn-penalizing
    /// selection learns from.
    pub kill_pool: usize,
    /// Inject a latency scaling every this many epochs (0 disables).
    pub latency_every: usize,
    /// Maximum latency multiplier for cost-change events.
    pub latency_factor_max: f64,
    /// Epochs a latency scaling stays in effect.
    pub latency_duration: usize,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            epochs: 200,
            epoch_secs: 30,
            rounds_per_epoch: 2,
            max_paths_per_pair: 8,
            seed: 0x0D1C_E0FD_15C0,
            kill_every: 9,
            kill_duration: 2,
            kill_pool: 3,
            latency_every: 11,
            latency_factor_max: 3.5,
            latency_duration: 4,
        }
    }
}

/// One path's state over one epoch — one JSONL line of `paths.jsonl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathEpochRecord {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub v: u32,
    /// Epoch index (strictly monotone per path).
    pub epoch: u64,
    /// Simulated Unix time at the end of the epoch.
    pub t_unix: u64,
    /// Source AS.
    pub src: String,
    /// Destination AS.
    pub dst: String,
    /// Path fingerprint.
    pub fingerprint: String,
    /// AS-level hop count.
    pub hops: u64,
    /// Probes sent to this path this epoch.
    pub probes: u64,
    /// Echo replies received this epoch.
    pub replies: u64,
    /// Loss fraction this epoch (0..=1).
    pub loss: f64,
    /// Median RTT over this epoch's replies, ms.
    pub rtt_p50_ms: Option<f64>,
    /// p90 RTT over this epoch's replies, ms.
    pub rtt_p90_ms: Option<f64>,
    /// p99 RTT over this epoch's replies, ms.
    pub rtt_p99_ms: Option<f64>,
    /// Health-board liveness verdict at the end of the epoch.
    pub alive: bool,
    /// Whether the down reason is an SCMP interface-down correlation.
    pub scmp_dead: bool,
    /// Epochs since the path entered the probe set.
    pub age_epochs: u64,
    /// Length of the current alive streak, epochs (0 while down).
    pub lifetime_epochs: u64,
    /// Control-plane generation stamp at the end of the epoch.
    pub generation: u64,
}

/// One healthy-set transition — one JSONL line of `events.jsonl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnRecord {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub v: u32,
    /// Epoch the transition was detected in.
    pub epoch: u64,
    /// Simulated Unix time of the detecting round.
    pub t_unix: u64,
    /// Source AS.
    pub src: String,
    /// Destination AS.
    pub dst: String,
    /// The path that changed state.
    pub fingerprint: String,
    /// `appear`, `disappear` (both 1:1 with health-board transitions) or
    /// `failover` (derived: the pair's selected path died).
    pub kind: String,
    /// Causal attribution for disappearances and failovers: the health
    /// board's down reason (e.g. `ext-if-down 71-10#21` from the SCMP
    /// pipeline, or the consecutive-loss threshold).
    pub cause: Option<String>,
}

/// The exported campaign product: per-path time series plus churn stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsDataset {
    /// Seed the campaign ran with (replay key).
    pub seed: u64,
    /// One record per registered path per epoch, in emission order.
    pub paths: Vec<PathEpochRecord>,
    /// Appear/disappear/failover stream, in emission order.
    pub events: Vec<ChurnRecord>,
}

/// Headline statistics over a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsSummary {
    /// Epochs covered.
    pub epochs: u64,
    /// Distinct (src, dst) pairs.
    pub pairs: usize,
    /// Distinct (src, dst, fingerprint) paths.
    pub paths: usize,
    /// Path-epoch records.
    pub records: usize,
    /// Churn records (all kinds).
    pub churn_records: usize,
    /// `appear` records.
    pub appear: usize,
    /// `disappear` records.
    pub disappear: usize,
    /// `failover` records.
    pub failover: usize,
    /// Health-board transitions (appear + disappear) per epoch.
    pub churn_per_epoch: f64,
    /// Longest alive streak per path, at the deciles: `(quantile,
    /// epochs)`.
    pub lifetime_cdf: Vec<(f64, u64)>,
    /// Mean longest alive streak, epochs.
    pub mean_lifetime_epochs: f64,
    /// RTT stability: mean per-path coefficient of variation of the
    /// epoch-median RTT (0 = perfectly stable).
    pub rtt_cv: f64,
}

/// How one selection policy fared over a replayed dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyOutcome {
    /// Policy name (`static`, `latency_loss`, `churn_aware`).
    pub policy: String,
    /// Epochs replayed (per pair).
    pub epochs: u64,
    /// Median achieved application RTT, ms (epoch-median of the selected
    /// path; outage epochs count at [`OUTAGE_RTO_MS`]).
    pub p50_ms: f64,
    /// 99th-percentile achieved application RTT, ms (outage epochs count
    /// at [`OUTAGE_RTO_MS`]).
    pub p99_ms: f64,
    /// Epochs in which the selected path was dead or unmeasured (summed
    /// over pairs).
    pub outage_epochs: u64,
    /// Distinct failover-gap episodes (maximal runs of outage epochs).
    pub failover_gaps: u64,
    /// Mean failover-gap length, ms.
    pub mean_gap_ms: f64,
    /// Longest failover gap, ms.
    pub max_gap_ms: f64,
    /// Selection changes across all pairs.
    pub switches: u64,
}

/// Tiny deterministic PRNG (xorshift64*) for event-injection draws.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct PathTrack {
    path: FullPath,
    first_epoch: u64,
    alive_streak: u64,
}

enum Restore {
    LinkUp(usize),
    Latency(usize),
}

/// Runs a full campaign over `net`: registers `pairs`, then per epoch
/// injects scheduled events, advances time, probes, and emits records.
/// Deterministic: equal seeds over equal networks yield byte-identical
/// datasets.
pub fn run_campaign<N: DynamicsNet>(
    net: &mut N,
    pairs: &[(IsdAsn, IsdAsn)],
    cfg: &DynamicsConfig,
    telemetry: &Telemetry,
) -> DynamicsDataset {
    let epochs_done = telemetry.counter("dynamics.epochs");
    let records_ctr = telemetry.counter("dynamics.records");
    let churn_ctr = telemetry.counter("dynamics.churn_records");
    let injected_ctr = telemetry.counter("dynamics.events_injected");
    let epoch_gauge = telemetry.gauge("dynamics.epoch");
    let live_gauge = telemetry.gauge("dynamics.live_paths");
    let churn_last_gauge = telemetry.gauge("dynamics.churn_last_epoch");
    let gap_gauge = telemetry.gauge("dynamics.last_failover_gap_ms");

    let mut rng = Rng::new(cfg.seed);
    let mut tracks: Vec<((IsdAsn, IsdAsn), BTreeMap<String, PathTrack>)> = Vec::new();
    for &(src, dst) in pairs {
        let paths = net.register_pair(src, dst, cfg.max_paths_per_pair);
        let mut by_fp = BTreeMap::new();
        for p in paths {
            by_fp.insert(
                p.fingerprint(),
                PathTrack {
                    path: p,
                    first_epoch: 0,
                    alive_streak: 0,
                },
            );
        }
        tracks.push(((src, dst), by_fp));
    }

    // Event targets are drawn from links the probe set actually crosses.
    // Kill candidates additionally require that every pair keeps at least
    // one registered path avoiding the link, so a kill forces a failover
    // rather than a blackout.
    let mut used_links: BTreeSet<usize> = BTreeSet::new();
    for (_, by_fp) in &tracks {
        for t in by_fp.values() {
            used_links.extend(net.path_links(&t.path));
        }
    }
    let used_links: Vec<usize> = used_links.into_iter().collect();
    let survivable: Vec<usize> = used_links
        .iter()
        .copied()
        .filter(|&li| {
            tracks.iter().all(|(_, by_fp)| {
                by_fp
                    .values()
                    .any(|t| !net.path_links(&t.path).contains(&li))
            })
        })
        .collect();
    // Injected events target the links of each pair's *primary*
    // (shortest) path: that is the path static selection sits on, so the
    // injected fault is visible in the baseline-vs-adaptive comparison
    // instead of landing on paths nobody would pick anyway.
    let mut primary_links: BTreeSet<usize> = BTreeSet::new();
    for (_, by_fp) in &tracks {
        // Primary = what static selection picks: fewest hops, fingerprint
        // as the tiebreak.
        if let Some(t) = by_fp
            .values()
            .min_by_key(|t| (t.path.len(), t.path.fingerprint()))
        {
            primary_links.extend(net.path_links(&t.path));
        }
    }
    // Both event kinds prefer survivable primary links: the fault lands
    // on the path static selection sits on, and the affected pair always
    // keeps a path around it, so every event forces a *choice* (stay
    // blind or route around) rather than a dead end nobody can escape.
    let survivable_primary: Vec<usize> = survivable
        .iter()
        .copied()
        .filter(|li| primary_links.contains(li))
        .collect();
    let preferred = if !survivable_primary.is_empty() {
        survivable_primary
    } else if !survivable.is_empty() {
        survivable
    } else {
        used_links.clone()
    };
    let kill_candidates = preferred.clone();
    let latency_candidates = preferred;
    let mut kill_pool: Vec<usize> = Vec::new();
    while kill_pool.len() < cfg.kill_pool.min(kill_candidates.len()) {
        let li = kill_candidates[rng.below(kill_candidates.len())];
        if !kill_pool.contains(&li) {
            kill_pool.push(li);
        }
    }

    let mut dataset = DynamicsDataset {
        seed: cfg.seed,
        paths: Vec::new(),
        events: Vec::new(),
    };
    let mut consumed_churn = 0usize;
    let mut kills_so_far = 0usize;
    let mut pending: Vec<(u64, Restore)> = Vec::new();
    // Per-pair static selection tracking for failover records: the
    // first-alive path in fingerprint order, and the epoch its outage
    // started (if it is in one).
    let mut selected: Vec<Option<String>> = vec![None; tracks.len()];
    let mut outage_since: Vec<Option<u64>> = vec![None; tracks.len()];

    for epoch in 0..cfg.epochs as u64 {
        let _epoch_scope = telemetry.prof_scope("dynamics.epoch");

        // -- Scheduled restores, then injections (epoch 0 stays clean). --
        let due: Vec<Restore> = {
            let mut due = Vec::new();
            pending.retain_mut(|(at, r)| {
                if *at <= epoch {
                    due.push(std::mem::replace(r, Restore::LinkUp(usize::MAX)));
                    false
                } else {
                    true
                }
            });
            due
        };
        for r in due {
            match r {
                Restore::LinkUp(li) => net.set_link_up(li, true),
                Restore::Latency(li) => net.set_link_latency_factor(li, 1.0),
                #[allow(unreachable_patterns)]
                _ => {}
            }
        }
        if cfg.kill_every > 0
            && epoch > 0
            && epoch % cfg.kill_every as u64 == 0
            && !kill_pool.is_empty()
        {
            let li = kill_pool[kills_so_far % kill_pool.len()];
            kills_so_far += 1;
            net.set_link_up(li, false);
            pending.push((epoch + cfg.kill_duration.max(1) as u64, Restore::LinkUp(li)));
            injected_ctr.inc();
        }
        if cfg.latency_every > 0
            && epoch > 0
            && epoch % cfg.latency_every as u64 == 0
            && !latency_candidates.is_empty()
        {
            let li = latency_candidates[rng.below(latency_candidates.len())];
            let factor = 1.5 + rng.f64() * (cfg.latency_factor_max - 1.5).max(0.0);
            net.set_link_latency_factor(li, factor);
            pending.push((
                epoch + cfg.latency_duration.max(1) as u64,
                Restore::Latency(li),
            ));
            injected_ctr.inc();
        }

        // -- Probe rounds. ----------------------------------------------
        net.advance_time(cfg.epoch_secs);
        let mut samples: BTreeMap<(usize, String), (u64, u64, Histogram)> = BTreeMap::new();
        for _ in 0..cfg.rounds_per_epoch.max(1) {
            let _probe_scope = telemetry.prof_scope("dynamics.probe");
            for result in net.probe_round() {
                let Some(pair_idx) = tracks
                    .iter()
                    .position(|((s, d), _)| *s == result.src && *d == result.dst)
                else {
                    continue;
                };
                let entry = samples
                    .entry((pair_idx, result.fingerprint.clone()))
                    .or_insert_with(|| (0, 0, Histogram::default()));
                entry.0 += 1;
                if let EchoOutcome::Reply { rtt_ms } = result.outcome {
                    entry.1 += 1;
                    entry.2.record(rtt_ms);
                }
            }
        }
        let now = net.now_unix();

        // -- Churn stream: board transitions map 1:1 to records. --------
        let board_events = net.churn_events();
        churn_last_gauge.set((board_events.len() - consumed_churn) as u64);
        for ev in &board_events[consumed_churn..] {
            for fp in &ev.added {
                dataset.events.push(ChurnRecord {
                    v: SCHEMA_VERSION,
                    epoch,
                    t_unix: ev.at_unix,
                    src: ev.src.to_string(),
                    dst: ev.dst.to_string(),
                    fingerprint: fp.clone(),
                    kind: "appear".into(),
                    cause: None,
                });
                churn_ctr.inc();
            }
            for fp in &ev.removed {
                let cause = net
                    .path_state(ev.src, ev.dst, fp)
                    .and_then(|(_, reason)| reason);
                dataset.events.push(ChurnRecord {
                    v: SCHEMA_VERSION,
                    epoch,
                    t_unix: ev.at_unix,
                    src: ev.src.to_string(),
                    dst: ev.dst.to_string(),
                    fingerprint: fp.clone(),
                    kind: "disappear".into(),
                    cause,
                });
                churn_ctr.inc();
            }
        }
        consumed_churn = board_events.len();

        // -- Per-path records + failover detection. ----------------------
        let generation = net.generation();
        let mut live_paths = 0u64;
        for (pair_idx, ((src, dst), by_fp)) in tracks.iter_mut().enumerate() {
            let mut first_alive: Option<String> = None;
            for (fp, track) in by_fp.iter_mut() {
                let (alive, down_reason) = net.path_state(*src, *dst, fp).unwrap_or((true, None));
                if alive {
                    track.alive_streak += 1;
                    live_paths += 1;
                    if first_alive.is_none() {
                        first_alive = Some(fp.clone());
                    }
                } else {
                    track.alive_streak = 0;
                }
                let (probes, replies, hist) = samples
                    .get(&(pair_idx, fp.clone()))
                    .map(|(p, r, h)| (*p, *r, h.clone()))
                    .unwrap_or((0, 0, Histogram::default()));
                let loss = if probes > 0 {
                    (probes - replies) as f64 / probes as f64
                } else {
                    0.0
                };
                dataset.paths.push(PathEpochRecord {
                    v: SCHEMA_VERSION,
                    epoch,
                    t_unix: now,
                    src: src.to_string(),
                    dst: dst.to_string(),
                    fingerprint: fp.clone(),
                    hops: track.path.len() as u64,
                    probes,
                    replies,
                    loss,
                    rtt_p50_ms: hist.quantile(0.5),
                    rtt_p90_ms: hist.quantile(0.9),
                    rtt_p99_ms: hist.quantile(0.99),
                    alive,
                    scmp_dead: down_reason
                        .as_deref()
                        .map(|r| r.contains("ext-if-down"))
                        .unwrap_or(false),
                    age_epochs: epoch - track.first_epoch,
                    lifetime_epochs: track.alive_streak,
                    generation,
                });
                records_ctr.inc();
            }

            // Failover: the pair's selected path (first alive, fingerprint
            // order — the static baseline) left the healthy set.
            match (&selected[pair_idx], &first_alive) {
                (Some(old), new) if new.as_deref() != Some(old.as_str()) => {
                    let still_registered = by_fp.contains_key(old);
                    let died = still_registered
                        && net
                            .path_state(*src, *dst, old)
                            .map(|(alive, _)| !alive)
                            .unwrap_or(false);
                    if died {
                        let cause = net
                            .path_state(*src, *dst, old)
                            .and_then(|(_, reason)| reason);
                        dataset.events.push(ChurnRecord {
                            v: SCHEMA_VERSION,
                            epoch,
                            t_unix: now,
                            src: src.to_string(),
                            dst: dst.to_string(),
                            fingerprint: old.clone(),
                            kind: "failover".into(),
                            cause,
                        });
                        churn_ctr.inc();
                        if outage_since[pair_idx].is_none() {
                            outage_since[pair_idx] = Some(epoch);
                        }
                    }
                }
                _ => {}
            }
            if first_alive.is_some() {
                if let Some(e0) = outage_since[pair_idx].take() {
                    let gap_ms = (epoch - e0 + 1) * cfg.epoch_secs * 1000;
                    gap_gauge.set(gap_ms);
                }
            } else if outage_since[pair_idx].is_none() && selected[pair_idx].is_some() {
                outage_since[pair_idx] = Some(epoch);
            }
            selected[pair_idx] = first_alive;
        }

        live_gauge.set(live_paths);
        epoch_gauge.set(epoch);
        epochs_done.inc();
    }
    dataset
}

fn jsonl<T: Serialize>(records: &[T]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r).expect("record serializes"));
        out.push('\n');
    }
    out
}

fn parse_jsonl<T: for<'a> Deserialize>(s: &str, what: &str) -> Result<Vec<T>, String> {
    s.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            serde_json::from_str::<T>(l).map_err(|e| format!("{what} line {}: {e:?}", i + 1))
        })
        .collect()
}

impl DynamicsDataset {
    /// `paths.jsonl`: one [`PathEpochRecord`] per line, emission order.
    pub fn paths_jsonl(&self) -> String {
        jsonl(&self.paths)
    }

    /// `events.jsonl`: one [`ChurnRecord`] per line, emission order.
    pub fn events_jsonl(&self) -> String {
        jsonl(&self.events)
    }

    /// Both JSONL streams in one call, timed under the
    /// `dynamics.export` profiling scope.
    pub fn export_jsonl(&self, telemetry: &Telemetry) -> (String, String) {
        let _scope = telemetry.prof_scope("dynamics.export");
        (self.paths_jsonl(), self.events_jsonl())
    }

    /// Parses both JSONL streams back into a dataset (`seed` is not part
    /// of the wire format; pass the campaign's).
    pub fn from_jsonl(seed: u64, paths: &str, events: &str) -> Result<DynamicsDataset, String> {
        Ok(DynamicsDataset {
            seed,
            paths: parse_jsonl(paths, "paths.jsonl")?,
            events: parse_jsonl(events, "events.jsonl")?,
        })
    }

    /// Schema validation: version stamps, strictly monotone epochs per
    /// path, value ranges, known churn kinds, attributed disappearances.
    pub fn validate(&self) -> Result<(), String> {
        let mut last_epoch: BTreeMap<(String, String, String), u64> = BTreeMap::new();
        for (i, r) in self.paths.iter().enumerate() {
            let at = |msg: String| format!("paths record {}: {msg}", i + 1);
            if r.v != SCHEMA_VERSION {
                return Err(at(format!("schema version {} != {SCHEMA_VERSION}", r.v)));
            }
            if !(0.0..=1.0).contains(&r.loss) {
                return Err(at(format!("loss {} out of range", r.loss)));
            }
            if r.replies > r.probes {
                return Err(at(format!("{} replies > {} probes", r.replies, r.probes)));
            }
            for (name, q) in [
                ("rtt_p50_ms", r.rtt_p50_ms),
                ("rtt_p90_ms", r.rtt_p90_ms),
                ("rtt_p99_ms", r.rtt_p99_ms),
            ] {
                if let Some(v) = q {
                    if !v.is_finite() || v <= 0.0 {
                        return Err(at(format!("{name} {v} not positive-finite")));
                    }
                }
            }
            if r.rtt_p50_ms.is_some() && r.replies == 0 {
                return Err(at("RTT quantiles without replies".into()));
            }
            if r.lifetime_epochs > r.age_epochs + 1 {
                return Err(at(format!(
                    "lifetime {} exceeds age {} + 1",
                    r.lifetime_epochs, r.age_epochs
                )));
            }
            if r.alive && r.lifetime_epochs == 0 {
                return Err(at("alive path with zero lifetime".into()));
            }
            let key = (r.src.clone(), r.dst.clone(), r.fingerprint.clone());
            if let Some(&prev) = last_epoch.get(&key) {
                if r.epoch <= prev {
                    return Err(at(format!(
                        "epoch {} not strictly monotone after {prev}",
                        r.epoch
                    )));
                }
            }
            last_epoch.insert(key, r.epoch);
        }
        for (i, e) in self.events.iter().enumerate() {
            let at = |msg: String| format!("events record {}: {msg}", i + 1);
            if e.v != SCHEMA_VERSION {
                return Err(at(format!("schema version {} != {SCHEMA_VERSION}", e.v)));
            }
            match e.kind.as_str() {
                "appear" => {
                    if e.cause.is_some() {
                        return Err(at("appear records carry no cause".into()));
                    }
                }
                "disappear" | "failover" => {}
                other => return Err(at(format!("unknown kind `{other}`"))),
            }
        }
        Ok(())
    }

    /// Headline statistics: lifetimes, churn rate, RTT stability.
    pub fn summary(&self) -> DynamicsSummary {
        let epochs = self.paths.iter().map(|r| r.epoch + 1).max().unwrap_or(0);
        let pairs: BTreeSet<(&str, &str)> = self
            .paths
            .iter()
            .map(|r| (r.src.as_str(), r.dst.as_str()))
            .collect();
        let mut max_lifetime: BTreeMap<(&str, &str, &str), u64> = BTreeMap::new();
        let mut rtts: BTreeMap<(&str, &str, &str), Vec<f64>> = BTreeMap::new();
        for r in &self.paths {
            let key = (r.src.as_str(), r.dst.as_str(), r.fingerprint.as_str());
            let m = max_lifetime.entry(key).or_insert(0);
            *m = (*m).max(r.lifetime_epochs);
            if let Some(p50) = r.rtt_p50_ms {
                rtts.entry(key).or_default().push(p50);
            }
        }
        let mut lifetimes: Vec<u64> = max_lifetime.values().copied().collect();
        lifetimes.sort_unstable();
        let lifetime_cdf: Vec<(f64, u64)> = (1..=10)
            .map(|d| {
                let q = d as f64 / 10.0;
                let idx = ((q * lifetimes.len() as f64).ceil() as usize)
                    .saturating_sub(1)
                    .min(lifetimes.len().saturating_sub(1));
                (q, lifetimes.get(idx).copied().unwrap_or(0))
            })
            .collect();
        let mean_lifetime_epochs = if lifetimes.is_empty() {
            0.0
        } else {
            lifetimes.iter().sum::<u64>() as f64 / lifetimes.len() as f64
        };
        let cvs: Vec<f64> = rtts
            .values()
            .filter(|v| v.len() >= 2)
            .map(|v| {
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
                if mean > 0.0 {
                    var.sqrt() / mean
                } else {
                    0.0
                }
            })
            .collect();
        let rtt_cv = if cvs.is_empty() {
            0.0
        } else {
            cvs.iter().sum::<f64>() / cvs.len() as f64
        };
        let appear = self.events.iter().filter(|e| e.kind == "appear").count();
        let disappear = self.events.iter().filter(|e| e.kind == "disappear").count();
        let failover = self.events.iter().filter(|e| e.kind == "failover").count();
        DynamicsSummary {
            epochs,
            pairs: pairs.len(),
            paths: max_lifetime.len(),
            records: self.paths.len(),
            churn_records: self.events.len(),
            appear,
            disappear,
            failover,
            churn_per_epoch: if epochs > 0 {
                (appear + disappear) as f64 / epochs as f64
            } else {
                0.0
            },
            lifetime_cdf,
            mean_lifetime_epochs,
            rtt_cv,
        }
    }
}

/// Replays a dataset through selection policies, epoch by epoch: each
/// epoch's selection sees only records from *earlier* epochs (fed into a
/// rolling [`PathStatsView`] after the fact), then achieves the selected
/// path's measured epoch-median RTT — or an outage epoch when the
/// selection was dead. Returns one [`PolicyOutcome`] per policy.
pub fn replay_policies(
    dataset: &DynamicsDataset,
    epoch_secs: u64,
    policies: &[AdaptivePolicy],
) -> Vec<PolicyOutcome> {
    // Index records by pair, then by epoch.
    let mut by_pair: BTreeMap<(String, String), BTreeMap<u64, Vec<&PathEpochRecord>>> =
        BTreeMap::new();
    for r in &dataset.paths {
        by_pair
            .entry((r.src.clone(), r.dst.clone()))
            .or_default()
            .entry(r.epoch)
            .or_default()
            .push(r);
    }
    let epoch_ms = (epoch_secs * 1000) as f64;

    policies
        .iter()
        .map(|policy| {
            let mut rtt_samples: Vec<f64> = Vec::new();
            let mut outage_epochs = 0u64;
            let mut gaps: Vec<u64> = Vec::new();
            let mut switches = 0u64;
            let mut epochs_replayed = 0u64;
            for per_epoch in by_pair.values() {
                let mut view = PathStatsView::new();
                let candidates: Vec<Candidate> = {
                    let mut seen: BTreeMap<&str, u64> = BTreeMap::new();
                    for records in per_epoch.values() {
                        for r in records {
                            seen.entry(r.fingerprint.as_str()).or_insert(r.hops);
                        }
                    }
                    seen.into_iter()
                        .map(|(fp, hops)| Candidate {
                            fingerprint: fp.to_string(),
                            hops: hops as usize,
                        })
                        .collect()
                };
                let mut prev_choice: Option<String> = None;
                let mut gap_run = 0u64;
                for records in per_epoch.values() {
                    epochs_replayed += 1;
                    let choice = policy
                        .select(&view, &candidates)
                        .map(|c| c.fingerprint.clone());
                    if let (Some(p), Some(c)) = (&prev_choice, &choice) {
                        if p != c {
                            switches += 1;
                        }
                    }
                    let achieved = choice.as_ref().and_then(|fp| {
                        records
                            .iter()
                            .find(|r| &r.fingerprint == fp)
                            .filter(|r| r.alive)
                            .and_then(|r| r.rtt_p50_ms)
                    });
                    match achieved {
                        Some(rtt) => {
                            rtt_samples.push(rtt);
                            if gap_run > 0 {
                                gaps.push(gap_run);
                                gap_run = 0;
                            }
                        }
                        None => {
                            // The application does not skip an epoch whose
                            // selected path is dead — it times out. Count
                            // the epoch at the retransmission-timeout
                            // ceiling so a policy spending >1% of epochs
                            // in outage shows it in its p99.
                            rtt_samples.push(OUTAGE_RTO_MS);
                            outage_epochs += 1;
                            gap_run += 1;
                        }
                    }
                    prev_choice = choice;
                    for r in records {
                        view.observe(&PathObservation {
                            fingerprint: r.fingerprint.clone(),
                            epoch: r.epoch,
                            rtt_p50_ms: r.rtt_p50_ms,
                            rtt_p99_ms: r.rtt_p99_ms,
                            loss: r.loss,
                            alive: r.alive,
                            scmp_dead: r.scmp_dead,
                        });
                    }
                }
                if gap_run > 0 {
                    gaps.push(gap_run);
                }
            }
            rtt_samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let quantile = |q: f64| -> f64 {
                if rtt_samples.is_empty() {
                    return 0.0;
                }
                let idx = ((q * rtt_samples.len() as f64).ceil() as usize)
                    .saturating_sub(1)
                    .min(rtt_samples.len() - 1);
                rtt_samples[idx]
            };
            let mean_gap_ms = if gaps.is_empty() {
                0.0
            } else {
                gaps.iter().sum::<u64>() as f64 * epoch_ms / gaps.len() as f64
            };
            let max_gap_ms = gaps.iter().max().copied().unwrap_or(0) as f64 * epoch_ms;
            PolicyOutcome {
                policy: policy.name().to_string(),
                epochs: epochs_replayed,
                p50_ms: quantile(0.5),
                p99_ms: quantile(0.99),
                outage_epochs,
                failover_gaps: gaps.len() as u64,
                mean_gap_ms,
                max_gap_ms,
                switches,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: u64, fp: &str, p50: Option<f64>, alive: bool, lifetime: u64) -> PathEpochRecord {
        PathEpochRecord {
            v: SCHEMA_VERSION,
            epoch,
            t_unix: 1_700_000_000 + epoch * 30,
            src: "71-1".into(),
            dst: "71-2".into(),
            fingerprint: fp.into(),
            hops: 3,
            probes: 2,
            replies: if p50.is_some() { 2 } else { 0 },
            loss: if p50.is_some() { 0.0 } else { 1.0 },
            rtt_p50_ms: p50,
            rtt_p90_ms: p50.map(|v| v * 1.1),
            rtt_p99_ms: p50.map(|v| v * 1.2),
            alive,
            scmp_dead: false,
            age_epochs: epoch,
            lifetime_epochs: lifetime,
            generation: 1,
        }
    }

    fn tiny_dataset() -> DynamicsDataset {
        DynamicsDataset {
            seed: 7,
            paths: vec![
                rec(0, "a", Some(20.0), true, 1),
                rec(0, "b", Some(50.0), true, 1),
                rec(1, "a", Some(22.0), true, 2),
                rec(1, "b", Some(48.0), true, 2),
                rec(2, "a", None, false, 0),
                rec(2, "b", Some(49.0), true, 3),
            ],
            events: vec![ChurnRecord {
                v: SCHEMA_VERSION,
                epoch: 2,
                t_unix: 1_700_000_060,
                src: "71-1".into(),
                dst: "71-2".into(),
                fingerprint: "a".into(),
                kind: "disappear".into(),
                cause: Some("3 consecutive probe losses".into()),
            }],
        }
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let d = tiny_dataset();
        let (paths, events) = (d.paths_jsonl(), d.events_jsonl());
        let back = DynamicsDataset::from_jsonl(d.seed, &paths, &events).unwrap();
        assert_eq!(back, d);
        // And byte-stable through a second render.
        assert_eq!(back.paths_jsonl(), paths);
        assert_eq!(back.events_jsonl(), events);
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        let d = tiny_dataset();
        d.validate().unwrap();

        let mut bad = d.clone();
        bad.paths[2].epoch = 0; // duplicate epoch for path "a"
        assert!(bad.validate().unwrap_err().contains("monotone"));

        let mut bad = d.clone();
        bad.paths[0].v = 99;
        assert!(bad.validate().unwrap_err().contains("schema version"));

        let mut bad = d.clone();
        bad.paths[0].loss = 1.5;
        assert!(bad.validate().unwrap_err().contains("loss"));

        let mut bad = d.clone();
        bad.events[0].kind = "mutate".into();
        assert!(bad.validate().unwrap_err().contains("unknown kind"));

        let mut bad = d;
        bad.events[0].kind = "appear".into();
        assert!(bad.validate().unwrap_err().contains("no cause"));
    }

    #[test]
    fn summary_counts_and_lifetimes() {
        let s = tiny_dataset().summary();
        assert_eq!(s.epochs, 3);
        assert_eq!(s.pairs, 1);
        assert_eq!(s.paths, 2);
        assert_eq!(s.records, 6);
        assert_eq!((s.appear, s.disappear, s.failover), (0, 1, 0));
        assert!(s.churn_per_epoch > 0.0);
        // Path "a" lived 2 epochs, path "b" 3.
        assert_eq!(s.lifetime_cdf.last().unwrap().1, 3);
        assert!((s.mean_lifetime_epochs - 2.5).abs() < 1e-9);
        assert!(s.rtt_cv >= 0.0);
    }

    #[test]
    fn replay_scores_static_vs_adaptive() {
        // "a" is shortest-ranked and dies at epoch 2; "b" is steady.
        let out = replay_policies(
            &tiny_dataset(),
            30,
            &[AdaptivePolicy::Static, AdaptivePolicy::latency_loss()],
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].policy, "static");
        assert_eq!(out[1].policy, "latency_loss");
        // Both replay the same epochs; outcomes are finite and ordered.
        assert_eq!(out[0].epochs, 3);
        assert!(out[0].p50_ms > 0.0);
        assert!(out[1].p50_ms > 0.0);
    }

    #[test]
    fn replay_view_lags_selection_by_one_epoch() {
        // At epoch 2 the latency policy still selects on epochs 0-1 data:
        // "a" (20ms) over "b" (50ms) — so it eats a's death at epoch 2.
        let out = replay_policies(&tiny_dataset(), 30, &[AdaptivePolicy::latency_loss()]);
        assert_eq!(out[0].outage_epochs, 1);
        assert_eq!(out[0].failover_gaps, 1);
        assert!((out[0].max_gap_ms - 30_000.0).abs() < 1e-9);
    }
}
