//! Connectivity analysis: Figs. 5, 6 and 7.

use netsim::metrics::{Cdf, Summary};
use scion_proto::addr::IsdAsn;

use crate::campaign::MeasurementStore;

/// Figure 5: the RTT distributions of SCION vs IP pings.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// SCION RTT CDF (ms).
    pub scion: Cdf,
    /// IP RTT CDF (ms).
    pub ip: Cdf,
    /// Median SCION RTT, ms.
    pub scion_median: f64,
    /// Median IP RTT, ms.
    pub ip_median: f64,
    /// 90th-percentile SCION RTT, ms.
    pub scion_p90: f64,
    /// 90th-percentile IP RTT, ms.
    pub ip_p90: f64,
    /// Pings analysed (SCION, IP).
    pub counts: (u64, u64),
}

impl Fig5 {
    /// Median latency reduction of SCION vs IP, percent (paper: 6.9 %).
    pub fn median_reduction_pct(&self) -> f64 {
        (1.0 - self.scion_median / self.ip_median) * 100.0
    }

    /// p90 latency reduction, percent (paper: 23.7 %).
    pub fn p90_reduction_pct(&self) -> f64 {
        (1.0 - self.scion_p90 / self.ip_p90) * 100.0
    }
}

/// Computes Fig. 5 from a campaign.
pub fn fig5(store: &MeasurementStore) -> Fig5 {
    Fig5 {
        scion: store.scion_hist.to_cdf(120),
        ip: store.ip_hist.to_cdf(120),
        scion_median: store.scion_hist.quantile(0.5).unwrap_or(f64::NAN),
        ip_median: store.ip_hist.quantile(0.5).unwrap_or(f64::NAN),
        scion_p90: store.scion_hist.quantile(0.9).unwrap_or(f64::NAN),
        ip_p90: store.ip_hist.quantile(0.9).unwrap_or(f64::NAN),
        counts: (store.scion_pings, store.ip_pings),
    }
}

/// One Fig. 6 data point: a pair's mean-RTT ratio.
#[derive(Debug, Clone)]
pub struct PairRatio {
    /// Source AS.
    pub src: IsdAsn,
    /// Destination AS.
    pub dst: IsdAsn,
    /// mean(SCION RTT) / mean(IP RTT).
    pub ratio: f64,
}

/// Figure 6: CDF of the per-pair RTT ratio.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Per-pair ratios, ascending.
    pub ratios: Vec<PairRatio>,
    /// The rendered CDF.
    pub cdf: Cdf,
    /// Fraction of pairs with ratio < 1 (SCION faster; paper: ~38 %).
    pub frac_below_one: f64,
    /// Fraction of pairs with ratio < 1.25 (paper: ~80 %).
    pub frac_below_1_25: f64,
    /// The worst pairs (outliers, descending ratio).
    pub outliers: Vec<PairRatio>,
}

/// Computes Fig. 6.
pub fn fig6(store: &MeasurementStore) -> Fig6 {
    let mut ratios: Vec<PairRatio> = store
        .pairs
        .iter()
        .filter(|p| p.scion_n > 0 && p.ip_n > 0)
        .map(|p| PairRatio {
            src: p.src,
            dst: p.dst,
            ratio: (p.scion_sum / p.scion_n as f64) / (p.ip_sum / p.ip_n as f64),
        })
        .collect();
    ratios.sort_by(|a, b| a.ratio.partial_cmp(&b.ratio).unwrap());
    let n = ratios.len() as f64;
    let frac_below_one = ratios.iter().filter(|r| r.ratio < 1.0).count() as f64 / n;
    let frac_below_1_25 = ratios.iter().filter(|r| r.ratio < 1.25).count() as f64 / n;
    let mut summary = Summary::new();
    for r in &ratios {
        summary.record(r.ratio);
    }
    let cdf = summary.to_cdf(100);
    let outliers = ratios.iter().rev().take(8).cloned().collect();
    Fig6 {
        ratios,
        cdf,
        frac_below_one,
        frac_below_1_25,
        outliers,
    }
}

/// Figure 7: the SCION/IP RTT ratio over time (daily), mean over pairs.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Per-day mean ratio.
    pub daily_ratio: Vec<f64>,
    /// Incident labels for annotation.
    pub incidents: Vec<&'static str>,
}

/// Computes Fig. 7.
pub fn fig7(store: &MeasurementStore) -> Fig7 {
    let days = store.pairs.first().map(|p| p.daily.len()).unwrap_or(0);
    let mut daily_ratio = Vec::with_capacity(days);
    for d in 0..days {
        let mut sum = 0.0;
        let mut n = 0u64;
        for p in &store.pairs {
            let (ss, sn, is, inn) = p.daily[d];
            if sn > 0 && inn > 0 {
                sum += (ss / sn as f64) / (is / inn as f64);
                n += 1;
            }
        }
        if n > 0 {
            daily_ratio.push(sum / n as f64);
        }
    }
    Fig7 {
        daily_ratio,
        incidents: store.incident_labels.clone(),
    }
}

/// Renders Fig. 5 headline numbers as the bench-output row.
pub fn fig5_report(f: &Fig5) -> String {
    format!(
        "SCION vs IP pings (SCION n={}, IP n={})\n\
         median: SCION {:.1} ms vs IP {:.1} ms ({:+.1}% vs paper -6.9%)\n\
         p90:    SCION {:.1} ms vs IP {:.1} ms ({:+.1}% vs paper -23.7%)",
        f.counts.0,
        f.counts.1,
        f.scion_median,
        f.ip_median,
        -f.median_reduction_pct(),
        f.scion_p90,
        f.ip_p90,
        -f.p90_reduction_pct(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use scion_proto::addr::ia;

    fn store() -> MeasurementStore {
        Campaign::new(CampaignConfig::quick()).run()
    }

    #[test]
    fn fig5_shape_matches_paper() {
        let f = fig5(&store());
        // SCION beats IP at the median and by more at the tail.
        assert!(
            f.scion_median < f.ip_median,
            "median {} vs {}",
            f.scion_median,
            f.ip_median
        );
        assert!(
            f.p90_reduction_pct() > f.median_reduction_pct(),
            "tail gap must exceed median gap"
        );
        assert!(
            f.p90_reduction_pct() > 10.0,
            "p90 reduction {:.1}%",
            f.p90_reduction_pct()
        );
        // CDFs are monotone and end at 1.
        for w in f.scion.points.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn fig6_shape_matches_paper() {
        let f = fig6(&store());
        assert!(
            f.frac_below_one > 0.15,
            "some pairs faster on SCION: {}",
            f.frac_below_one
        );
        assert!(
            f.frac_below_1_25 > 0.6,
            "most pairs <25% inflation: {}",
            f.frac_below_1_25
        );
        assert!(!f.outliers.is_empty());
        // Outliers are worse than the median pair.
        let med = f.ratios[f.ratios.len() / 2].ratio;
        assert!(f.outliers[0].ratio > med);
    }

    #[test]
    fn fig6_ufms_equinix_is_high_ratio() {
        let f = fig6(&store());
        let ufms_eq = f
            .ratios
            .iter()
            .find(|r| r.src == ia("71-2:0:5c") && r.dst == ia("71-2:0:48"))
            .expect("UFMS->Equinix measured");
        let med = f.ratios[f.ratios.len() / 2].ratio;
        assert!(
            ufms_eq.ratio > med,
            "UFMS->Equinix ratio {} should exceed median {med} (GEANT detour)",
            ufms_eq.ratio
        );
    }

    #[test]
    fn fig7_daily_series_varies_with_incidents() {
        let f = fig7(&store());
        assert!(f.daily_ratio.len() >= 2);
        assert!(!f.incidents.is_empty());
        for r in &f.daily_ratio {
            assert!(r.is_finite() && *r > 0.0);
        }
    }

    #[test]
    fn report_renders() {
        let r = fig5_report(&fig5(&store()));
        assert!(r.contains("median"));
        assert!(r.contains("p90"));
    }
}
