//! The SCIERA measurement campaign and experiment harness (§5).
//!
//! Reproduces the `scion-go-multiping` methodology of §5.4 over the
//! simulated deployment and computes every figure of the evaluation:
//!
//! * [`campaign`] — the measurement engine: per-interval SCMP pings over
//!   three SCION paths (shortest / fastest / most disjoint) plus ICMP over
//!   the BGP baseline, full path probes, the tool's hourly *stall*
//!   behaviour and the §5.4 exclusion rule, fault injection for the real
//!   incidents (KR–SG cable cut, BRIDGES instabilities, UFMS detour,
//!   January maintenance, new EU–US links).
//! * [`analysis`] — Fig. 5 (RTT CDFs), Fig. 6 (per-pair RTT-ratio CDF),
//!   Fig. 7 (ratio over time).
//! * [`paths`] — Fig. 8 (max active paths), Fig. 9 (median deviation),
//!   Fig. 10a (latency inflation), Fig. 10b (disjointness CDF).
//! * [`resilience`] — Fig. 10c (random link-failure sweep, multipath vs
//!   single path).
//! * [`bootstrapx`] — Fig. 4 (bootstrapping latency across OSes and hint
//!   mechanisms).
//! * [`survey`] — §5.6 operator survey: the synthetic respondent table and
//!   the aggregate statistics the paper reports.
//! * [`scale`] — the scale observatory: synthetic-topology sweeps
//!   (100 → 5000 ASes) through beaconing, the path database and the
//!   router data plane, with per-subsystem self-time attribution.
//! * [`slo`] — the concurrency SLO observatory: p50/p99 lookup latency
//!   under K concurrent clients while a writer runs link-kill storms
//!   against the epoch-snapshot path database.
//! * [`dynamics`] — the path-dynamics observatory: long-horizon campaigns
//!   with injected link-kill and cost-change events, an ML-ready JSONL
//!   time-series dataset (per-path epochs plus a churn stream), and
//!   closed-loop replay of adaptive selection policies against the
//!   static baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bootstrapx;
pub mod campaign;
pub mod dynamics;
pub mod paths;
pub mod resilience;
pub mod scale;
pub mod slo;
pub mod survey;

pub use campaign::{Campaign, CampaignConfig, MeasurementStore};
pub use dynamics::{
    replay_policies, run_campaign as run_dynamics_campaign, DynamicsConfig, DynamicsDataset,
    DynamicsNet, DynamicsSummary, PolicyOutcome,
};
