//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! Used for SCION key derivation (the per-AS hop key hierarchy) and by the
//! simulated signature scheme in [`crate::sign`]. Verified against the
//! RFC 4231 test vectors.

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = sha256(key);
        k[..DIGEST_LEN].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Derives a subkey from a parent secret and a context label.
///
/// SCION derives its data-plane hop keys from an AS-local master secret via a
/// labelled PRF; we use `HMAC(parent, label)` truncated to 16 bytes, matching
/// the AES-128 key size consumed by [`crate::cmac`].
pub fn derive_key16(parent: &[u8], label: &[u8]) -> [u8; 16] {
    let full = hmac_sha256(parent, label);
    let mut out = [0u8; 16];
    out.copy_from_slice(&full[..16]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn derive_key16_is_deterministic_and_label_sensitive() {
        let a = derive_key16(b"master", b"hop-key-2025");
        let b = derive_key16(b"master", b"hop-key-2025");
        let c = derive_key16(b"master", b"hop-key-2026");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_key16_parent_sensitive() {
        assert_ne!(derive_key16(b"m1", b"l"), derive_key16(b"m2", b"l"));
    }
}
