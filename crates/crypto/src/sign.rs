//! Simulated signatures for the control plane.
//!
//! See the crate-level documentation and `DESIGN.md` §4 for the rationale.
//! The API deliberately mirrors an asymmetric scheme — a private
//! [`SigningKey`] producing [`Signature`]s that a public [`VerifyingKey`]
//! checks — so control-plane code (TRC verification, certificate chains,
//! beacon validation) is written exactly as it would be against ECDSA.
//!
//! Internally a signature is `HMAC-SHA256(secret, message)` and the
//! verifying key carries the secret (plus a public commitment used as the
//! key identifier). Because key objects are only ever handed to the entities
//! a real deployment would hand the corresponding private/public keys to,
//! unforgeability holds *within the simulation*: a component that only holds
//! `VerifyingKey`s of other ASes cannot mint their beacons. This models the
//! protocol-level trust relationships the paper relies on without modelling
//! cryptanalytic strength.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::hmac::hmac_sha256;
use crate::sha256::{sha256, to_hex};
use crate::CryptoError;

/// Length of a signature in bytes.
pub const SIGNATURE_LEN: usize = 32;

/// A signature over a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature(pub [u8; SIGNATURE_LEN]);

impl Signature {
    /// Renders the signature as hex (for logging/serialisation).
    pub fn to_hex(&self) -> String {
        to_hex(&self.0)
    }
}

/// A private signing key. Holders can produce signatures.
#[derive(Clone)]
pub struct SigningKey {
    secret: [u8; 32],
}

/// A public verifying key. Identified by a commitment to the secret.
///
/// Note: in this simulated scheme the verifying key embeds the secret so it
/// can recompute tags; see the module docs for why this is a faithful model
/// of the trust relationships despite not being deployable cryptography.
#[derive(Clone, PartialEq, Eq)]
pub struct VerifyingKey {
    secret: [u8; 32],
    key_id: [u8; 32],
}

impl core::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("SigningKey { .. }")
    }
}

impl core::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "VerifyingKey({})", &to_hex(&self.key_id)[..16])
    }
}

impl SigningKey {
    /// Generates a fresh random key pair.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut secret = [0u8; 32];
        rng.fill_bytes(&mut secret);
        SigningKey { secret }
    }

    /// Derives a key pair deterministically from a seed label — used to give
    /// every simulated AS a stable identity across runs.
    pub fn from_seed(seed: &[u8]) -> Self {
        SigningKey {
            secret: hmac_sha256(b"sciera-signing-key-seed", seed),
        }
    }

    /// Returns the public half.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            secret: self.secret,
            key_id: sha256(&self.secret),
        }
    }

    /// Signs a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature(hmac_sha256(&self.secret, message))
    }
}

impl VerifyingKey {
    /// The key identifier: a SHA-256 commitment to the secret. Two keys are
    /// the same iff their identifiers are equal.
    pub fn key_id(&self) -> [u8; 32] {
        self.key_id
    }

    /// Short printable key identifier (first 8 hex chars).
    pub fn key_id_short(&self) -> String {
        to_hex(&self.key_id)[..8].to_string()
    }

    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let expected = hmac_sha256(&self.secret, message);
        if crate::ct_eq(&expected, &signature.0) {
            Ok(())
        } else {
            Err(CryptoError::VerificationFailed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let sk = SigningKey::generate(&mut rng);
        let vk = sk.verifying_key();
        let sig = sk.sign(b"pcb payload");
        assert!(vk.verify(b"pcb payload", &sig).is_ok());
    }

    #[test]
    fn tampered_message_rejected() {
        let sk = SigningKey::from_seed(b"as-64-559");
        let vk = sk.verifying_key();
        let sig = sk.sign(b"hello");
        assert_eq!(
            vk.verify(b"hellO", &sig),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let sk1 = SigningKey::from_seed(b"as-1");
        let sk2 = SigningKey::from_seed(b"as-2");
        let sig = sk1.sign(b"m");
        assert!(sk2.verifying_key().verify(b"m", &sig).is_err());
    }

    #[test]
    fn seeded_keys_are_stable() {
        let a = SigningKey::from_seed(b"geant");
        let b = SigningKey::from_seed(b"geant");
        assert_eq!(a.verifying_key().key_id(), b.verifying_key().key_id());
    }

    #[test]
    fn key_ids_differ() {
        let a = SigningKey::from_seed(b"a").verifying_key();
        let b = SigningKey::from_seed(b"b").verifying_key();
        assert_ne!(a.key_id(), b.key_id());
        assert_ne!(a.key_id_short(), b.key_id_short());
    }

    #[test]
    fn debug_impls_do_not_leak_secret() {
        let sk = SigningKey::from_seed(b"x");
        let dbg_sk = format!("{sk:?}");
        assert_eq!(dbg_sk, "SigningKey { .. }");
        let dbg_vk = format!("{:?}", sk.verifying_key());
        assert!(dbg_vk.starts_with("VerifyingKey("));
    }
}
