//! AES-CMAC (RFC 4493 / NIST SP 800-38B).
//!
//! This is the MAC a SCION border router computes over every hop field it
//! forwards — the "efficient symmetric cryptographic operation" of the
//! paper's §2. Verified against the RFC 4493 test vectors.

use crate::aes::{Aes128, BLOCK_LEN};

/// A keyed CMAC instance; cheap to clone, reusable across messages.
#[derive(Clone, Debug)]
pub struct Cmac {
    cipher: Aes128,
    k1: [u8; BLOCK_LEN],
    k2: [u8; BLOCK_LEN],
}

fn dbl(block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
    let mut out = [0u8; BLOCK_LEN];
    let mut carry = 0u8;
    for i in (0..BLOCK_LEN).rev() {
        out[i] = (block[i] << 1) | carry;
        carry = block[i] >> 7;
    }
    if carry != 0 {
        out[BLOCK_LEN - 1] ^= 0x87;
    }
    out
}

impl Cmac {
    /// Creates a CMAC instance from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let cipher = Aes128::new(key);
        let l = cipher.encrypt(&[0u8; BLOCK_LEN]);
        let k1 = dbl(&l);
        let k2 = dbl(&k1);
        Cmac { cipher, k1, k2 }
    }

    /// Computes the full 16-byte tag over `message`.
    pub fn tag(&self, message: &[u8]) -> [u8; BLOCK_LEN] {
        let n_blocks = message.len().div_ceil(BLOCK_LEN).max(1);
        let complete_last = !message.is_empty() && message.len().is_multiple_of(BLOCK_LEN);

        let mut x = [0u8; BLOCK_LEN];
        for i in 0..n_blocks - 1 {
            let chunk = &message[i * BLOCK_LEN..(i + 1) * BLOCK_LEN];
            for j in 0..BLOCK_LEN {
                x[j] ^= chunk[j];
            }
            self.cipher.encrypt_block(&mut x);
        }

        let mut last = [0u8; BLOCK_LEN];
        let tail = &message[(n_blocks - 1) * BLOCK_LEN..];
        if complete_last {
            for j in 0..BLOCK_LEN {
                last[j] = tail[j] ^ self.k1[j];
            }
        } else {
            last[..tail.len()].copy_from_slice(tail);
            last[tail.len()] = 0x80;
            for (l, k) in last.iter_mut().zip(self.k2.iter()) {
                *l ^= k;
            }
        }
        for j in 0..BLOCK_LEN {
            x[j] ^= last[j];
        }
        self.cipher.encrypt_block(&mut x);
        x
    }

    /// Computes a truncated 6-byte tag, the size SCION hop fields carry.
    pub fn tag6(&self, message: &[u8]) -> [u8; 6] {
        let full = self.tag(message);
        let mut out = [0u8; 6];
        out.copy_from_slice(&full[..6]);
        out
    }

    /// Computes the full tag over exactly one complete block.
    ///
    /// The single-complete-block case collapses the generic CMAC loop to
    /// one cipher call on `M ⊕ K1`, with the precomputed subkey folded in.
    /// This is the hot path of hop-field verification — every SCION MAC
    /// input is exactly 16 bytes.
    pub fn tag_block(&self, block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
        let mut x = [0u8; BLOCK_LEN];
        for j in 0..BLOCK_LEN {
            x[j] = block[j] ^ self.k1[j];
        }
        self.cipher.encrypt_block(&mut x);
        x
    }

    /// Truncated 6-byte variant of [`Cmac::tag_block`].
    pub fn tag6_block(&self, block: &[u8; BLOCK_LEN]) -> [u8; 6] {
        let full = self.tag_block(block);
        let mut out = [0u8; 6];
        out.copy_from_slice(&full[..6]);
        out
    }

    /// [`Cmac::tag_block`] over a batch, in place: each single-complete-block
    /// message is replaced by its full tag.
    ///
    /// All messages share this instance's precomputed `K1` subkey — the
    /// subkey fold happens once per block and the cipher calls run through
    /// [`Aes128::encrypt_blocks`], whose interleaved states overlap the AES
    /// round dependency chains. This is the batched entry point the router
    /// uses to verify every cache-missing hop MAC of one key epoch together.
    pub fn tag_blocks(&self, blocks: &mut [[u8; BLOCK_LEN]]) {
        for block in blocks.iter_mut() {
            for (b, k) in block.iter_mut().zip(self.k1.iter()) {
                *b ^= k;
            }
        }
        self.cipher.encrypt_blocks(blocks);
    }

    /// Verifies a full-size tag in constant time.
    pub fn verify(&self, message: &[u8], tag: &[u8; BLOCK_LEN]) -> bool {
        crate::ct_eq(&self.tag(message), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn rfc_key() -> Cmac {
        let key: [u8; 16] = from_hex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        Cmac::new(&key)
    }

    #[test]
    fn rfc4493_empty() {
        assert_eq!(
            to_hex(&rfc_key().tag(b"")),
            "bb1d6929e95937287fa37d129b756746"
        );
    }

    #[test]
    fn rfc4493_one_block() {
        let msg = from_hex("6bc1bee22e409f96e93d7e117393172a");
        assert_eq!(
            to_hex(&rfc_key().tag(&msg)),
            "070a16b46b4d4144f79bdd9dd04a287c"
        );
    }

    #[test]
    fn rfc4493_40_bytes() {
        let msg = from_hex(
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411",
        );
        assert_eq!(
            to_hex(&rfc_key().tag(&msg)),
            "dfa66747de9ae63030ca32611497c827"
        );
    }

    #[test]
    fn rfc4493_64_bytes() {
        let msg = from_hex(
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710",
        );
        assert_eq!(
            to_hex(&rfc_key().tag(&msg)),
            "51f0bebf7e3b9d92fc49741779363cfe"
        );
    }

    #[test]
    fn verify_roundtrip_and_reject() {
        let c = Cmac::new(&[3u8; 16]);
        let tag = c.tag(b"hop field bytes");
        assert!(c.verify(b"hop field bytes", &tag));
        assert!(!c.verify(b"hop field byteS", &tag));
        let other = Cmac::new(&[4u8; 16]);
        assert!(!other.verify(b"hop field bytes", &tag));
    }

    #[test]
    fn tag_block_matches_generic_path() {
        // Against the RFC 4493 one-block vector…
        let msg: [u8; 16] = from_hex("6bc1bee22e409f96e93d7e117393172a")
            .try_into()
            .unwrap();
        assert_eq!(
            to_hex(&rfc_key().tag_block(&msg)),
            "070a16b46b4d4144f79bdd9dd04a287c"
        );
        // …and against the generic path for assorted keys/blocks.
        for seed in 0u8..8 {
            let c = Cmac::new(&[seed; 16]);
            let mut block = [0u8; 16];
            for (i, b) in block.iter_mut().enumerate() {
                *b = seed.wrapping_mul(31).wrapping_add(i as u8);
            }
            assert_eq!(c.tag_block(&block), c.tag(&block));
            assert_eq!(c.tag6_block(&block), c.tag6(&block));
        }
    }

    #[test]
    fn tag_blocks_matches_tag_block() {
        let c = rfc_key();
        for n in 0..9usize {
            let blocks: Vec<[u8; 16]> = (0..n)
                .map(|i| core::array::from_fn(|j| (i * 7 + j * 3) as u8))
                .collect();
            let expect: Vec<[u8; 16]> = blocks.iter().map(|b| c.tag_block(b)).collect();
            let mut got = blocks.clone();
            c.tag_blocks(&mut got);
            assert_eq!(got, expect, "batch of {n} diverged");
        }
    }

    #[test]
    fn tag6_is_prefix_of_tag() {
        let c = Cmac::new(&[8u8; 16]);
        let full = c.tag(b"msg");
        assert_eq!(c.tag6(b"msg"), full[..6]);
    }
}
