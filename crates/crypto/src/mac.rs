//! The SCION hop-field MAC.
//!
//! Each AS on a path authorises its hop field (ingress/egress interface pair
//! plus expiry) by MACing it with an AS-local secret hop key. Border routers
//! recompute and check this MAC for every forwarded packet; a failed check
//! drops the packet. The MAC is chained across the segment through the
//! 16-bit *segment identifier* (`beta`), which each AS updates by XOR-ing in
//! the first two MAC bytes — this prevents splicing hop fields between
//! segments.
//!
//! Layout of the 16-byte MAC input (matching the SCION specification):
//!
//! ```text
//!  0               1
//!  0 1 2 3 4 5 6 7 8 9 a b c d e f
//! +---+---+-------+-+-+---+---+---+
//! | 0 |beta| ts    |0|et|in |eg | 0 |
//! +---+---+-------+-+-+---+---+---+
//! ```

use crate::cmac::Cmac;
use crate::hmac::derive_key16;

/// Inputs covered by a hop-field MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopMacInput {
    /// Segment identifier (`beta_i`) accumulated along the beacon.
    pub beta: u16,
    /// Info-field timestamp (segment creation, Unix seconds).
    pub timestamp: u32,
    /// Expiry time encoding (relative units of ~5.6 min past the timestamp).
    pub exp_time: u8,
    /// Ingress interface in construction direction (0 at segment origin).
    pub cons_ingress: u16,
    /// Egress interface in construction direction (0 at segment end).
    pub cons_egress: u16,
}

impl HopMacInput {
    /// Serialises to the canonical 16-byte MAC input block.
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[2..4].copy_from_slice(&self.beta.to_be_bytes());
        b[4..8].copy_from_slice(&self.timestamp.to_be_bytes());
        b[9] = self.exp_time;
        b[10..12].copy_from_slice(&self.cons_ingress.to_be_bytes());
        b[12..14].copy_from_slice(&self.cons_egress.to_be_bytes());
        b
    }
}

/// An AS's hop-key engine: derives the hop key from the AS master secret and
/// computes/verifies hop-field MACs.
#[derive(Clone, Debug)]
pub struct HopKey {
    cmac: Cmac,
    epoch: u32,
}

/// Serialised length of the derivation label: `"scion-hop-key-"` plus the
/// big-endian epoch.
const DERIVE_LABEL_LEN: usize = 14 + 4;

impl HopKey {
    /// Derives the hop key from an AS master secret and a key epoch label.
    pub fn derive(master_secret: &[u8], epoch: u32) -> Self {
        let mut label = [0u8; DERIVE_LABEL_LEN];
        label[..14].copy_from_slice(b"scion-hop-key-");
        label[14..].copy_from_slice(&epoch.to_be_bytes());
        let key = derive_key16(master_secret, &label);
        HopKey {
            cmac: Cmac::new(&key),
            epoch,
        }
    }

    /// Creates a hop key directly from 16 bytes of key material (epoch 0).
    pub fn from_raw(key: &[u8; 16]) -> Self {
        HopKey {
            cmac: Cmac::new(key),
            epoch: 0,
        }
    }

    /// The key epoch this key was derived for. Part of any cache key over
    /// verification results: rotating the key must invalidate cached MACs.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Computes the 6-byte hop-field MAC.
    ///
    /// The input is always exactly one cipher block, so this takes the
    /// single-block CMAC path (one AES call, precomputed subkey).
    pub fn mac(&self, input: &HopMacInput) -> [u8; 6] {
        self.cmac.tag6_block(&input.to_bytes())
    }

    /// Computes the full 16-byte tag; the first two bytes update `beta`.
    pub fn full_mac(&self, input: &HopMacInput) -> [u8; 16] {
        self.cmac.tag_block(&input.to_bytes())
    }

    /// Verifies a 6-byte hop-field MAC in constant time.
    pub fn verify(&self, input: &HopMacInput, mac: &[u8; 6]) -> bool {
        crate::ct_eq(&self.mac(input), mac)
    }

    /// Verifies a batch of hop-field MACs under this key in one pass,
    /// pushing one verdict per `(input, mac)` pair into `ok`.
    ///
    /// Every pair necessarily shares this key's epoch, so the whole batch
    /// runs over the same precomputed CMAC subkeys via [`Cmac::tag_blocks`],
    /// interleaving the AES states for ILP. Comparisons stay constant-time;
    /// a length mismatch between the slices is a caller bug.
    pub fn verify_batch(&self, inputs: &[HopMacInput], macs: &[[u8; 6]], ok: &mut Vec<bool>) {
        assert_eq!(inputs.len(), macs.len(), "inputs/macs length mismatch");
        ok.clear();
        ok.reserve(inputs.len());
        const WIDTH: usize = 16;
        let mut blocks = [[0u8; 16]; WIDTH];
        for (chunk_in, chunk_mac) in inputs.chunks(WIDTH).zip(macs.chunks(WIDTH)) {
            for (block, input) in blocks.iter_mut().zip(chunk_in.iter()) {
                *block = input.to_bytes();
            }
            let n = chunk_in.len();
            self.cmac.tag_blocks(&mut blocks[..n]);
            for (tag, mac) in blocks[..n].iter().zip(chunk_mac.iter()) {
                ok.push(crate::ct_eq(&tag[..6], mac));
            }
        }
    }

    /// Returns the next segment identifier after this hop:
    /// `beta_{i+1} = beta_i XOR mac[0..2]`.
    pub fn chain_beta(&self, input: &HopMacInput) -> u16 {
        let m = self.full_mac(input);
        input.beta ^ u16::from_be_bytes([m[0], m[1]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input() -> HopMacInput {
        HopMacInput {
            beta: 0x1234,
            timestamp: 1_700_000_000,
            exp_time: 63,
            cons_ingress: 3,
            cons_egress: 7,
        }
    }

    #[test]
    fn mac_roundtrip() {
        let key = HopKey::derive(b"as-master-secret", 1);
        let input = sample_input();
        let mac = key.mac(&input);
        assert!(key.verify(&input, &mac));
    }

    #[test]
    fn wrong_key_rejects() {
        let k1 = HopKey::derive(b"as-master-secret", 1);
        let k2 = HopKey::derive(b"other-secret", 1);
        let input = sample_input();
        let mac = k1.mac(&input);
        assert!(!k2.verify(&input, &mac));
    }

    #[test]
    fn epoch_rotation_changes_mac() {
        let k1 = HopKey::derive(b"s", 1);
        let k2 = HopKey::derive(b"s", 2);
        assert_ne!(k1.mac(&sample_input()), k2.mac(&sample_input()));
    }

    #[test]
    fn any_field_change_invalidates() {
        let key = HopKey::derive(b"s", 1);
        let base = sample_input();
        let mac = key.mac(&base);
        let variants = [
            HopMacInput {
                beta: base.beta ^ 1,
                ..base
            },
            HopMacInput {
                timestamp: base.timestamp + 1,
                ..base
            },
            HopMacInput {
                exp_time: base.exp_time + 1,
                ..base
            },
            HopMacInput {
                cons_ingress: base.cons_ingress + 1,
                ..base
            },
            HopMacInput {
                cons_egress: base.cons_egress + 1,
                ..base
            },
        ];
        for v in variants {
            assert!(!key.verify(&v, &mac), "mutated field accepted: {v:?}");
        }
    }

    #[test]
    fn verify_batch_matches_verify() {
        let key = HopKey::derive(b"as-master-secret", 2);
        // Mix of valid and corrupted MACs, longer than one interleave chunk.
        let mut inputs = Vec::new();
        let mut macs = Vec::new();
        let mut expect = Vec::new();
        for i in 0u16..37 {
            let input = HopMacInput {
                beta: 0x1000 ^ i,
                timestamp: 1_700_000_000,
                exp_time: 63,
                cons_ingress: i,
                cons_egress: i + 1,
            };
            let mut mac = key.mac(&input);
            if i % 3 == 0 {
                mac[5] ^= 0x80;
            }
            expect.push(key.verify(&input, &mac));
            inputs.push(input);
            macs.push(mac);
        }
        let mut ok = vec![true; 2]; // stale contents must be cleared
        key.verify_batch(&inputs, &macs, &mut ok);
        assert_eq!(ok, expect);
        key.verify_batch(&[], &[], &mut ok);
        assert!(ok.is_empty());
    }

    #[test]
    fn beta_chaining_depends_on_hop() {
        let key = HopKey::derive(b"s", 1);
        let a = sample_input();
        let b = HopMacInput {
            cons_egress: 9,
            ..a
        };
        assert_ne!(key.chain_beta(&a), key.chain_beta(&b));
    }

    #[test]
    fn epoch_is_recorded() {
        assert_eq!(HopKey::derive(b"s", 7).epoch(), 7);
        assert_eq!(HopKey::from_raw(&[1u8; 16]).epoch(), 0);
    }

    #[test]
    fn block_path_matches_generic_cmac() {
        let key = HopKey::derive(b"as-master-secret", 3);
        let input = sample_input();
        assert_eq!(key.mac(&input), key.cmac.tag6(&input.to_bytes()));
        assert_eq!(key.full_mac(&input), key.cmac.tag(&input.to_bytes()));
    }

    #[test]
    fn mac_input_layout() {
        let b = sample_input().to_bytes();
        assert_eq!(&b[2..4], &0x1234u16.to_be_bytes());
        assert_eq!(&b[4..8], &1_700_000_000u32.to_be_bytes());
        assert_eq!(b[9], 63);
        assert_eq!(&b[10..12], &3u16.to_be_bytes());
        assert_eq!(&b[12..14], &7u16.to_be_bytes());
        assert_eq!(b[0], 0);
        assert_eq!(b[1], 0);
        assert_eq!(b[8], 0);
        assert_eq!(b[14], 0);
        assert_eq!(b[15], 0);
    }
}
