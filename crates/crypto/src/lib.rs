//! Cryptographic primitives for the SCION stack.
//!
//! This crate implements, from scratch, every symmetric primitive the SCION
//! protocol family actually uses on the wire:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4), used for certificate and TRC digests.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), used for key derivation and for the
//!   simulated signature scheme.
//! * [`aes`] — AES-128 block encryption (FIPS 197), the cipher behind the
//!   SCION hop-field MAC.
//! * [`cmac`] — AES-CMAC (RFC 4493 / NIST SP 800-38B), the exact primitive a
//!   SCION border router evaluates for every forwarded packet.
//! * [`mac`] — the SCION hop-field MAC computation on top of AES-CMAC.
//! * [`sign`] — a *simulated* signature scheme (see below) plus key handling.
//!
//! # Simulated signatures
//!
//! Production SCION signs path-construction beacons, TRCs and certificates
//! with ECDSA P-256. No asymmetric-crypto crate is available in this build
//! environment, and reimplementing ECDSA is out of scope for a deployment
//! reproduction. Instead, [`sign`] provides an HMAC-based scheme in which the
//! signing secret never leaves the [`sign::SigningKey`]; the corresponding
//! [`sign::VerifyingKey`] carries only a commitment (a SHA-256 digest of the
//! secret). Within the simulation this preserves the property the control
//! plane relies on — no AS can forge another AS's beacon or certificate —
//! while exercising the same sign → serialize → chain-verify code paths as
//! the real stack. The substitution is recorded in `DESIGN.md` §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod cmac;
pub mod hmac;
pub mod mac;
pub mod sha256;
pub mod sign;

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A MAC or signature tag did not verify.
    VerificationFailed,
    /// Key material had the wrong length.
    InvalidKeyLength {
        /// Expected key length in bytes.
        expected: usize,
        /// Provided key length in bytes.
        got: usize,
    },
    /// The named key is not present in the registry.
    UnknownKey(String),
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::VerificationFailed => write!(f, "verification failed"),
            CryptoError::InvalidKeyLength { expected, got } => {
                write!(
                    f,
                    "invalid key length: expected {expected} bytes, got {got}"
                )
            }
            CryptoError::UnknownKey(name) => write!(f, "unknown key: {name}"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Constant-time equality for fixed-size tags.
///
/// Avoids early-exit timing differences when comparing MACs; the simulator
/// does not have a real side channel, but the data plane code is written as
/// the production router would be.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_equal() {
        assert!(ct_eq(b"abcdef", b"abcdef"));
    }

    #[test]
    fn ct_eq_differs() {
        assert!(!ct_eq(b"abcdef", b"abcdeg"));
    }

    #[test]
    fn ct_eq_length_mismatch() {
        assert!(!ct_eq(b"abc", b"abcd"));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            CryptoError::VerificationFailed.to_string(),
            "verification failed"
        );
        assert_eq!(
            CryptoError::InvalidKeyLength {
                expected: 16,
                got: 3
            }
            .to_string(),
            "invalid key length: expected 16 bytes, got 3"
        );
        assert_eq!(
            CryptoError::UnknownKey("k".into()).to_string(),
            "unknown key: k"
        );
    }
}
