//! The SCION Control-Plane PKI (CP-PKI).
//!
//! Trust in a SCION ISD is anchored in its *Trust Root Configuration* (TRC),
//! a signed document naming the ISD's core ASes, root keys, and update
//! policy (§2 of the paper). From the TRC hangs a conventional certificate
//! hierarchy: root certificates (embedded in the TRC), CA certificates, and
//! short-lived AS certificates used to sign path-construction beacons.
//!
//! The paper's §4.5 recounts a deployment lesson this crate models
//! explicitly: AS certificates are *intentionally short-lived* (days), so
//! certificate issuance and renewal must be fully automated, and SCIERA had
//! to build an open-source CA (on the smallstep framework) interoperable
//! with both the closed-source Anapaya CORE stack and the open-source SCION
//! stack. [`ca`] implements that CA with both client profiles.
//!
//! * [`trc`] — TRC structure, signing, and update-chain verification.
//! * [`cert`] — certificates and chain verification back to a TRC.
//! * [`ca`] — the ISD CA service: CSRs, issuance, renewal windows.
//!
//! Signatures use the simulated scheme of `scion-crypto` (DESIGN.md §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ca;
pub mod cert;
pub mod trc;

pub use ca::{CaService, ClientProfile, CsrRequest};
pub use cert::{CertType, Certificate, CertificateChain};
pub use trc::{Trc, TrcStore};

/// Errors from PKI operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PkiError {
    /// A signature failed to verify.
    BadSignature(String),
    /// A document is outside its validity window.
    Expired {
        /// What expired.
        what: String,
        /// Validity end (Unix seconds).
        valid_until: u64,
        /// The time of the check (Unix seconds).
        now: u64,
    },
    /// A document is not yet valid.
    NotYetValid {
        /// What is not yet valid.
        what: String,
        /// Validity start (Unix seconds).
        valid_from: u64,
        /// The time of the check (Unix seconds).
        now: u64,
    },
    /// A TRC update did not satisfy the predecessor's voting policy.
    InsufficientVotes {
        /// Votes present and verified.
        got: usize,
        /// Quorum required by the predecessor TRC.
        needed: usize,
    },
    /// The update does not chain onto the stored TRC (wrong serial/ISD).
    BrokenChain(String),
    /// A certificate chain is structurally invalid.
    BadChain(String),
    /// The requested entity is unknown.
    NotFound(String),
    /// The CA refused the request (policy).
    Refused(String),
}

impl core::fmt::Display for PkiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PkiError::BadSignature(s) => write!(f, "bad signature: {s}"),
            PkiError::Expired {
                what,
                valid_until,
                now,
            } => {
                write!(f, "{what} expired at {valid_until}, now {now}")
            }
            PkiError::NotYetValid {
                what,
                valid_from,
                now,
            } => {
                write!(f, "{what} not valid before {valid_from}, now {now}")
            }
            PkiError::InsufficientVotes { got, needed } => {
                write!(f, "TRC update has {got} valid votes, needs {needed}")
            }
            PkiError::BrokenChain(s) => write!(f, "broken TRC chain: {s}"),
            PkiError::BadChain(s) => write!(f, "bad certificate chain: {s}"),
            PkiError::NotFound(s) => write!(f, "not found: {s}"),
            PkiError::Refused(s) => write!(f, "refused: {s}"),
        }
    }
}

impl std::error::Error for PkiError {}
