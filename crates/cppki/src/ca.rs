//! The ISD certificate authority service.
//!
//! §4.5: SCIERA's open-source stack lacked a CA compatible with both the
//! Anapaya CORE implementation and the open-source SCION control plane, so
//! the project built one on the smallstep framework. This module models
//! that CA: it accepts certificate-signing requests from both client
//! profiles, enforces issuance policy (subject must be enrolled in the ISD),
//! issues short-lived AS certificates, and answers "time to renew?" queries
//! that the orchestrator's renewal driver polls.

use scion_crypto::sign::{SigningKey, VerifyingKey};
use scion_proto::addr::IsdAsn;

use crate::cert::{CertType, Certificate, CertificateChain};
use crate::PkiError;

/// Which SCION implementation is requesting a certificate (§4.5).
///
/// The two stacks encode CSRs differently; the open CA must accept both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientProfile {
    /// The open-source SCION control plane.
    OpenSource,
    /// Anapaya CORE (closed-source commercial stack).
    AnapayaCore,
}

/// A certificate-signing request.
#[derive(Debug, Clone)]
pub struct CsrRequest {
    /// The requesting AS.
    pub subject: IsdAsn,
    /// The key to certify.
    pub public_key: VerifyingKey,
    /// Which stack generated the CSR.
    pub profile: ClientProfile,
    /// Proof of possession: signature over the CSR bytes with the subject's
    /// *previous* AS key (renewal) or enrolment key (first issuance).
    pub proof: scion_crypto::sign::Signature,
}

impl CsrRequest {
    /// Canonical bytes covered by the proof-of-possession signature.
    pub fn signed_bytes(
        subject: IsdAsn,
        public_key: &VerifyingKey,
        profile: ClientProfile,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        // The two stacks frame their CSRs differently; the CA normalises
        // both to the same canonical form after checking the profile tag.
        out.extend_from_slice(match profile {
            ClientProfile::OpenSource => b"scion-csr-os-v1" as &[u8],
            ClientProfile::AnapayaCore => b"anapaya-csr-v2" as &[u8],
        });
        out.extend_from_slice(&subject.to_u64().to_be_bytes());
        out.extend_from_slice(&public_key.key_id());
        out
    }

    /// Builds a CSR signed with `enrolment_key`.
    pub fn build(
        subject: IsdAsn,
        public_key: VerifyingKey,
        profile: ClientProfile,
        enrolment_key: &SigningKey,
    ) -> Self {
        let proof = enrolment_key.sign(&Self::signed_bytes(subject, &public_key, profile));
        CsrRequest {
            subject,
            public_key,
            profile,
            proof,
        }
    }
}

/// Default AS-certificate lifetime: 3 days (the "few days" of §4.5).
pub const DEFAULT_AS_CERT_LIFETIME_SECS: u64 = 3 * 86_400;

/// Renewal is attempted once less than this fraction of the lifetime
/// remains. Production smallstep renews at ~2/3 of lifetime; we renew when
/// a third remains.
pub const RENEWAL_THRESHOLD: f64 = 1.0 / 3.0;

/// The CA service state.
pub struct CaService {
    /// The CA's own AS.
    pub ca_as: IsdAsn,
    ca_key: SigningKey,
    /// The CA certificate distributed with every issued chain.
    pub ca_cert: Certificate,
    /// AS-certificate lifetime in seconds.
    pub as_cert_lifetime: u64,
    /// Enrolled subjects and their enrolment verification keys.
    enrolled: Vec<(IsdAsn, VerifyingKey)>,
    next_serial: u64,
    /// Issuance log: (serial, subject, issued-at), for the status dashboard.
    pub issuance_log: Vec<(u64, IsdAsn, u64)>,
}

impl CaService {
    /// Creates a CA from its signing key and already-issued CA certificate.
    pub fn new(ca_as: IsdAsn, ca_key: SigningKey, ca_cert: Certificate) -> Self {
        CaService {
            ca_as,
            ca_key,
            ca_cert,
            as_cert_lifetime: DEFAULT_AS_CERT_LIFETIME_SECS,
            enrolled: Vec::new(),
            next_serial: 1,
            issuance_log: Vec::new(),
        }
    }

    /// Enrols a subject AS with its enrolment key (the out-of-band step an
    /// operator performs once when joining SCIERA).
    pub fn enrol(&mut self, subject: IsdAsn, enrolment_key: VerifyingKey) {
        self.enrolled.retain(|(ia, _)| *ia != subject);
        self.enrolled.push((subject, enrolment_key));
    }

    /// Whether `subject` is enrolled.
    pub fn is_enrolled(&self, subject: IsdAsn) -> bool {
        self.enrolled.iter().any(|(ia, _)| *ia == subject)
    }

    /// Processes a CSR at time `now`, returning a full chain on success.
    pub fn process_csr(
        &mut self,
        csr: &CsrRequest,
        now: u64,
    ) -> Result<CertificateChain, PkiError> {
        let Some((_, enrolment_key)) = self.enrolled.iter().find(|(ia, _)| *ia == csr.subject)
        else {
            return Err(PkiError::Refused(format!(
                "{} is not enrolled",
                csr.subject
            )));
        };
        let msg = CsrRequest::signed_bytes(csr.subject, &csr.public_key, csr.profile);
        enrolment_key
            .verify(&msg, &csr.proof)
            .map_err(|_| PkiError::BadSignature(format!("CSR proof of {}", csr.subject)))?;
        if csr.subject.isd != self.ca_as.isd {
            return Err(PkiError::Refused(format!(
                "{} is outside ISD {}",
                csr.subject, self.ca_as.isd
            )));
        }
        let serial = self.next_serial;
        self.next_serial += 1;
        let as_cert = Certificate::issue(
            CertType::As,
            csr.subject,
            csr.public_key.clone(),
            now,
            now + self.as_cert_lifetime,
            self.ca_as,
            serial,
            &self.ca_key,
        );
        self.issuance_log.push((serial, csr.subject, now));
        Ok(CertificateChain {
            as_cert,
            ca_cert: self.ca_cert.clone(),
        })
    }

    /// Whether a certificate should be renewed now, per the automated
    /// renewal policy.
    pub fn needs_renewal(cert: &Certificate, now: u64) -> bool {
        let lifetime = cert.valid_until.saturating_sub(cert.valid_from);
        let remaining = cert.remaining_lifetime(now);
        (remaining as f64) < (lifetime as f64) * RENEWAL_THRESHOLD
    }

    /// Number of certificates issued so far.
    pub fn issued_count(&self) -> usize {
        self.issuance_log.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_proto::addr::ia;

    fn make_ca() -> (CaService, SigningKey) {
        let root_key = SigningKey::from_seed(b"root");
        let ca_key = SigningKey::from_seed(b"ca");
        let ca_as = ia("71-20965");
        let ca_cert = Certificate::issue(
            CertType::Ca,
            ca_as,
            ca_key.verifying_key(),
            0,
            100 * 86_400,
            ca_as,
            1,
            &root_key,
        );
        (CaService::new(ca_as, ca_key, ca_cert), root_key)
    }

    #[test]
    fn issues_to_enrolled_subject_both_profiles() {
        let (mut ca, _) = make_ca();
        let enrol_key = SigningKey::from_seed(b"ovgu-enrol");
        ca.enrol(ia("71-2:0:42"), enrol_key.verifying_key());
        for profile in [ClientProfile::OpenSource, ClientProfile::AnapayaCore] {
            let as_key = SigningKey::from_seed(b"ovgu-as");
            let csr =
                CsrRequest::build(ia("71-2:0:42"), as_key.verifying_key(), profile, &enrol_key);
            let chain = ca.process_csr(&csr, 1000).unwrap();
            assert_eq!(chain.as_cert.subject, ia("71-2:0:42"));
            assert_eq!(
                chain.as_cert.valid_until,
                1000 + DEFAULT_AS_CERT_LIFETIME_SECS
            );
            chain
                .as_cert
                .verify_signature(&ca.ca_cert.public_key)
                .unwrap();
        }
        assert_eq!(ca.issued_count(), 2);
    }

    #[test]
    fn refuses_unenrolled_subject() {
        let (mut ca, _) = make_ca();
        let key = SigningKey::from_seed(b"stranger");
        let csr = CsrRequest::build(
            ia("71-31337"),
            key.verifying_key(),
            ClientProfile::OpenSource,
            &key,
        );
        assert!(matches!(ca.process_csr(&csr, 0), Err(PkiError::Refused(_))));
    }

    #[test]
    fn refuses_bad_proof() {
        let (mut ca, _) = make_ca();
        let enrol_key = SigningKey::from_seed(b"enrol");
        ca.enrol(ia("71-88"), enrol_key.verifying_key());
        let wrong_key = SigningKey::from_seed(b"not-the-enrol-key");
        let as_key = SigningKey::from_seed(b"as");
        let csr = CsrRequest::build(
            ia("71-88"),
            as_key.verifying_key(),
            ClientProfile::OpenSource,
            &wrong_key,
        );
        assert!(matches!(
            ca.process_csr(&csr, 0),
            Err(PkiError::BadSignature(_))
        ));
    }

    #[test]
    fn profile_is_bound_into_proof() {
        // A CSR built for one profile must not validate when replayed with
        // the other profile tag (the framing differs).
        let (mut ca, _) = make_ca();
        let enrol_key = SigningKey::from_seed(b"enrol");
        ca.enrol(ia("71-88"), enrol_key.verifying_key());
        let as_key = SigningKey::from_seed(b"as");
        let mut csr = CsrRequest::build(
            ia("71-88"),
            as_key.verifying_key(),
            ClientProfile::OpenSource,
            &enrol_key,
        );
        csr.profile = ClientProfile::AnapayaCore;
        assert!(matches!(
            ca.process_csr(&csr, 0),
            Err(PkiError::BadSignature(_))
        ));
    }

    #[test]
    fn refuses_foreign_isd() {
        let (mut ca, _) = make_ca();
        let enrol_key = SigningKey::from_seed(b"enrol");
        ca.enrol(ia("64-559"), enrol_key.verifying_key());
        let as_key = SigningKey::from_seed(b"as");
        let csr = CsrRequest::build(
            ia("64-559"),
            as_key.verifying_key(),
            ClientProfile::OpenSource,
            &enrol_key,
        );
        assert!(matches!(ca.process_csr(&csr, 0), Err(PkiError::Refused(_))));
    }

    #[test]
    fn serials_increase() {
        let (mut ca, _) = make_ca();
        let enrol_key = SigningKey::from_seed(b"enrol");
        ca.enrol(ia("71-88"), enrol_key.verifying_key());
        let as_key = SigningKey::from_seed(b"as");
        let csr = CsrRequest::build(
            ia("71-88"),
            as_key.verifying_key(),
            ClientProfile::OpenSource,
            &enrol_key,
        );
        let c1 = ca.process_csr(&csr, 0).unwrap();
        let c2 = ca.process_csr(&csr, 10).unwrap();
        assert!(c2.as_cert.serial > c1.as_cert.serial);
    }

    #[test]
    fn renewal_policy() {
        let (mut ca, _) = make_ca();
        let enrol_key = SigningKey::from_seed(b"enrol");
        ca.enrol(ia("71-88"), enrol_key.verifying_key());
        let as_key = SigningKey::from_seed(b"as");
        let csr = CsrRequest::build(
            ia("71-88"),
            as_key.verifying_key(),
            ClientProfile::OpenSource,
            &enrol_key,
        );
        let chain = ca.process_csr(&csr, 0).unwrap();
        let lifetime = DEFAULT_AS_CERT_LIFETIME_SECS;
        assert!(!CaService::needs_renewal(&chain.as_cert, 0));
        assert!(!CaService::needs_renewal(&chain.as_cert, lifetime / 2));
        assert!(CaService::needs_renewal(&chain.as_cert, lifetime * 3 / 4));
        assert!(CaService::needs_renewal(&chain.as_cert, lifetime + 10));
    }
}
