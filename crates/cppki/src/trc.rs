//! Trust Root Configurations.
//!
//! A [`Trc`] is the trust anchor of an ISD. It lists the core ASes, the
//! voting root keys, the certificate-authority root keys, a voting quorum
//! for updates, and a validity window. Updates form a chain: TRC serial
//! `n+1` must carry verifiable votes from at least `quorum` of the voters
//! named in serial `n`. [`TrcStore`] holds the verified latest TRC per ISD
//! and enforces chaining — this is the "TRC chaining" of §4.1.2 that lets a
//! bootstrapped host validate all future TRCs from the initial one.

use scion_crypto::sign::{Signature, SigningKey, VerifyingKey};
use scion_proto::addr::{IsdAsn, IsdNumber};

use crate::PkiError;

/// A named voting/root key in a TRC.
#[derive(Debug, Clone)]
pub struct TrcKeyEntry {
    /// The core AS holding this key.
    pub holder: IsdAsn,
    /// The public key.
    pub key: VerifyingKey,
}

/// A Trust Root Configuration.
#[derive(Debug, Clone)]
pub struct Trc {
    /// The ISD this TRC anchors.
    pub isd: IsdNumber,
    /// Base number: increments only on trust *re-establishment* events.
    pub base: u32,
    /// Serial number within the base: increments on every regular update.
    pub serial: u32,
    /// Validity start (Unix seconds).
    pub valid_from: u64,
    /// Validity end (Unix seconds).
    pub valid_until: u64,
    /// Core ASes of the ISD.
    pub core_ases: Vec<IsdAsn>,
    /// Authoritative ASes (run core path servers).
    pub authoritative_ases: Vec<IsdAsn>,
    /// Voting keys: quorum of these must sign the next TRC.
    pub voting_keys: Vec<TrcKeyEntry>,
    /// Root keys for the certificate hierarchy.
    pub root_keys: Vec<TrcKeyEntry>,
    /// Number of votes required for an update.
    pub quorum: usize,
    /// Votes: (voter AS, signature over [`Trc::signed_bytes`]).
    pub votes: Vec<(IsdAsn, Signature)>,
}

impl Trc {
    /// Canonical byte encoding of everything covered by votes.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(b"scion-trc-v1");
        out.extend_from_slice(&self.isd.0.to_be_bytes());
        out.extend_from_slice(&self.base.to_be_bytes());
        out.extend_from_slice(&self.serial.to_be_bytes());
        out.extend_from_slice(&self.valid_from.to_be_bytes());
        out.extend_from_slice(&self.valid_until.to_be_bytes());
        out.extend_from_slice(&(self.quorum as u32).to_be_bytes());
        for ia in &self.core_ases {
            out.extend_from_slice(&ia.to_u64().to_be_bytes());
        }
        out.push(0xfe);
        for ia in &self.authoritative_ases {
            out.extend_from_slice(&ia.to_u64().to_be_bytes());
        }
        out.push(0xfd);
        for e in &self.voting_keys {
            out.extend_from_slice(&e.holder.to_u64().to_be_bytes());
            out.extend_from_slice(&e.key.key_id());
        }
        out.push(0xfc);
        for e in &self.root_keys {
            out.extend_from_slice(&e.holder.to_u64().to_be_bytes());
            out.extend_from_slice(&e.key.key_id());
        }
        out
    }

    /// Identifier string like `ISD71-B1-S3`.
    pub fn id(&self) -> String {
        format!("ISD{}-B{}-S{}", self.isd.0, self.base, self.serial)
    }

    /// Adds a vote by `voter` using `key`. The caller is responsible for
    /// `key` belonging to `voter`; verification happens against the
    /// predecessor's voting-key table.
    pub fn add_vote(&mut self, voter: IsdAsn, key: &SigningKey) {
        let sig = key.sign(&self.signed_bytes());
        self.votes.push((voter, sig));
    }

    /// Checks the validity window.
    pub fn check_validity(&self, now: u64) -> Result<(), PkiError> {
        if now < self.valid_from {
            return Err(PkiError::NotYetValid {
                what: self.id(),
                valid_from: self.valid_from,
                now,
            });
        }
        if now > self.valid_until {
            return Err(PkiError::Expired {
                what: self.id(),
                valid_until: self.valid_until,
                now,
            });
        }
        Ok(())
    }

    /// Verifies that this TRC is a valid successor of `predecessor`:
    /// same ISD and base, serial incremented by one, and a quorum (per the
    /// predecessor) of valid votes from the predecessor's voting keys.
    pub fn verify_update(&self, predecessor: &Trc) -> Result<(), PkiError> {
        if self.isd != predecessor.isd {
            return Err(PkiError::BrokenChain(format!(
                "ISD mismatch: {} vs {}",
                self.isd, predecessor.isd
            )));
        }
        if self.base != predecessor.base {
            return Err(PkiError::BrokenChain(format!(
                "base changed {} -> {}; re-establishment requires out-of-band trust",
                predecessor.base, self.base
            )));
        }
        if self.serial != predecessor.serial + 1 {
            return Err(PkiError::BrokenChain(format!(
                "serial {} does not follow {}",
                self.serial, predecessor.serial
            )));
        }
        let msg = self.signed_bytes();
        let mut valid = 0usize;
        let mut seen: Vec<IsdAsn> = Vec::new();
        for (voter, sig) in &self.votes {
            if seen.contains(voter) {
                continue; // one vote per voter
            }
            let Some(entry) = predecessor.voting_keys.iter().find(|e| e.holder == *voter) else {
                continue;
            };
            if entry.key.verify(&msg, sig).is_ok() {
                valid += 1;
                seen.push(*voter);
            }
        }
        if valid < predecessor.quorum {
            return Err(PkiError::InsufficientVotes {
                got: valid,
                needed: predecessor.quorum,
            });
        }
        Ok(())
    }

    /// Looks up a root key by holder AS.
    pub fn root_key_of(&self, holder: IsdAsn) -> Option<&VerifyingKey> {
        self.root_keys
            .iter()
            .find(|e| e.holder == holder)
            .map(|e| &e.key)
    }
}

/// A store of verified TRCs, one chain per ISD.
///
/// A base TRC enters via [`TrcStore::trust_base`] (the out-of-band step of
/// §4.1.2 — TLS to the bootstrap server or manual validation); all later
/// TRCs must chain from the stored one via [`TrcStore::apply_update`].
#[derive(Debug, Default)]
pub struct TrcStore {
    latest: Vec<Trc>,
}

impl TrcStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a base TRC obtained over a secure out-of-band channel.
    pub fn trust_base(&mut self, trc: Trc) {
        self.latest.retain(|t| t.isd != trc.isd);
        self.latest.push(trc);
    }

    /// Applies a TRC update, verifying the chain.
    pub fn apply_update(&mut self, update: Trc) -> Result<(), PkiError> {
        let Some(idx) = self.latest.iter().position(|t| t.isd == update.isd) else {
            return Err(PkiError::BrokenChain(format!(
                "no trusted base for ISD {}",
                update.isd
            )));
        };
        update.verify_update(&self.latest[idx])?;
        self.latest[idx] = update;
        Ok(())
    }

    /// The latest verified TRC for an ISD.
    pub fn latest(&self, isd: IsdNumber) -> Option<&Trc> {
        self.latest.iter().find(|t| t.isd == isd)
    }

    /// All ISDs with a trusted TRC.
    pub fn isds(&self) -> Vec<IsdNumber> {
        self.latest.iter().map(|t| t.isd).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_proto::addr::ia;

    fn core_keys() -> Vec<(IsdAsn, SigningKey)> {
        ["71-20965", "71-2:0:35", "71-2:0:3b"]
            .iter()
            .map(|s| (ia(s), SigningKey::from_seed(s.as_bytes())))
            .collect()
    }

    fn base_trc(keys: &[(IsdAsn, SigningKey)]) -> Trc {
        Trc {
            isd: IsdNumber(71),
            base: 1,
            serial: 1,
            valid_from: 0,
            valid_until: 1_000_000,
            core_ases: keys.iter().map(|(ia, _)| *ia).collect(),
            authoritative_ases: vec![keys[0].0],
            voting_keys: keys
                .iter()
                .map(|(ia, k)| TrcKeyEntry {
                    holder: *ia,
                    key: k.verifying_key(),
                })
                .collect(),
            root_keys: keys
                .iter()
                .map(|(ia, k)| TrcKeyEntry {
                    holder: *ia,
                    key: k.verifying_key(),
                })
                .collect(),
            quorum: 2,
            votes: vec![],
        }
    }

    fn successor(prev: &Trc, keys: &[(IsdAsn, SigningKey)], voters: &[usize]) -> Trc {
        let mut next = prev.clone();
        next.serial += 1;
        next.votes.clear();
        for &v in voters {
            let (ia, key) = &keys[v];
            next.add_vote(*ia, key);
        }
        next
    }

    #[test]
    fn update_with_quorum_accepted() {
        let keys = core_keys();
        let base = base_trc(&keys);
        let next = successor(&base, &keys, &[0, 1]);
        assert!(next.verify_update(&base).is_ok());
    }

    #[test]
    fn update_below_quorum_rejected() {
        let keys = core_keys();
        let base = base_trc(&keys);
        let next = successor(&base, &keys, &[0]);
        assert_eq!(
            next.verify_update(&base),
            Err(PkiError::InsufficientVotes { got: 1, needed: 2 })
        );
    }

    #[test]
    fn duplicate_votes_counted_once() {
        let keys = core_keys();
        let base = base_trc(&keys);
        let mut next = successor(&base, &keys, &[0]);
        next.add_vote(keys[0].0, &keys[0].1); // same voter again
        assert!(matches!(
            next.verify_update(&base),
            Err(PkiError::InsufficientVotes { got: 1, .. })
        ));
    }

    #[test]
    fn vote_by_non_voter_ignored() {
        let keys = core_keys();
        let base = base_trc(&keys);
        let mut next = successor(&base, &keys, &[0]);
        let outsider = SigningKey::from_seed(b"attacker");
        next.add_vote(ia("71-666"), &outsider);
        assert!(next.verify_update(&base).is_err());
    }

    #[test]
    fn forged_vote_rejected() {
        let keys = core_keys();
        let base = base_trc(&keys);
        let mut next = base.clone();
        next.serial += 1;
        next.votes.clear();
        // Attacker claims votes from legitimate voters using its own key.
        let attacker = SigningKey::from_seed(b"attacker");
        next.add_vote(keys[0].0, &attacker);
        next.add_vote(keys[1].0, &attacker);
        assert!(matches!(
            next.verify_update(&base),
            Err(PkiError::InsufficientVotes { .. })
        ));
    }

    #[test]
    fn serial_gap_rejected() {
        let keys = core_keys();
        let base = base_trc(&keys);
        let mut next = successor(&base, &keys, &[0, 1]);
        next.serial += 1; // skip one — votes also become stale but chain check fires first
        assert!(matches!(
            next.verify_update(&base),
            Err(PkiError::BrokenChain(_))
        ));
    }

    #[test]
    fn base_change_rejected() {
        let keys = core_keys();
        let base = base_trc(&keys);
        let mut next = base.clone();
        next.base = 2;
        next.serial = 2;
        assert!(matches!(
            next.verify_update(&base),
            Err(PkiError::BrokenChain(_))
        ));
    }

    #[test]
    fn tampered_content_invalidates_votes() {
        let keys = core_keys();
        let base = base_trc(&keys);
        let mut next = successor(&base, &keys, &[0, 1]);
        // Tamper after voting: add a rogue core AS.
        next.core_ases.push(ia("71-9999"));
        assert!(matches!(
            next.verify_update(&base),
            Err(PkiError::InsufficientVotes { .. })
        ));
    }

    #[test]
    fn store_chains_updates() {
        let keys = core_keys();
        let base = base_trc(&keys);
        let mut store = TrcStore::new();
        store.trust_base(base.clone());
        let n2 = successor(&base, &keys, &[0, 2]);
        store.apply_update(n2.clone()).unwrap();
        assert_eq!(store.latest(IsdNumber(71)).unwrap().serial, 2);
        // Replaying the old update must now fail (serial no longer follows).
        assert!(store.apply_update(n2.clone()).is_err());
        let n3 = successor(&n2, &keys, &[1, 2]);
        store.apply_update(n3).unwrap();
        assert_eq!(store.latest(IsdNumber(71)).unwrap().serial, 3);
    }

    #[test]
    fn store_rejects_unknown_isd() {
        let keys = core_keys();
        let base = base_trc(&keys);
        let mut store = TrcStore::new();
        let next = successor(&base, &keys, &[0, 1]);
        assert!(matches!(
            store.apply_update(next),
            Err(PkiError::BrokenChain(_))
        ));
    }

    #[test]
    fn validity_window() {
        let keys = core_keys();
        let trc = base_trc(&keys);
        assert!(trc.check_validity(500).is_ok());
        assert!(matches!(
            trc.check_validity(1_000_001),
            Err(PkiError::Expired { .. })
        ));
        let mut later = trc.clone();
        later.valid_from = 100;
        assert!(matches!(
            later.check_validity(50),
            Err(PkiError::NotYetValid { .. })
        ));
    }

    #[test]
    fn id_format() {
        let keys = core_keys();
        assert_eq!(base_trc(&keys).id(), "ISD71-B1-S1");
    }
}
