//! Certificates and chain verification.
//!
//! The hierarchy mirrors production SCION: a *root* certificate is pinned in
//! the TRC via its key; a *CA* certificate is signed by a root; an *AS*
//! certificate — the short-lived credential used to sign beacons and
//! topology documents — is signed by a CA. Chain verification walks
//! AS → CA → root and checks the root key against the TRC.

use scion_crypto::sign::{Signature, SigningKey, VerifyingKey};
use scion_proto::addr::IsdAsn;

use crate::trc::Trc;
use crate::PkiError;

/// The role of a certificate in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertType {
    /// Root certificate (key pinned in the TRC).
    Root,
    /// Intermediate CA certificate.
    Ca,
    /// End-entity AS certificate (signs beacons; short-lived).
    As,
}

/// A certificate binding a subject AS to a public key.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Subject AS.
    pub subject: IsdAsn,
    /// Role in the hierarchy.
    pub cert_type: CertType,
    /// The certified public key.
    pub public_key: VerifyingKey,
    /// Validity start (Unix seconds).
    pub valid_from: u64,
    /// Validity end (Unix seconds). AS certificates are valid for days only
    /// (§4.5), forcing automated renewal.
    pub valid_until: u64,
    /// Issuer AS (== subject for self-signed roots).
    pub issuer: IsdAsn,
    /// Monotonic serial number assigned by the issuer.
    pub serial: u64,
    /// Signature by the issuer key over [`Certificate::signed_bytes`].
    pub signature: Signature,
}

impl Certificate {
    /// Canonical byte encoding covered by the signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        out.extend_from_slice(b"scion-cert-v1");
        out.push(match self.cert_type {
            CertType::Root => 0,
            CertType::Ca => 1,
            CertType::As => 2,
        });
        out.extend_from_slice(&self.subject.to_u64().to_be_bytes());
        out.extend_from_slice(&self.public_key.key_id());
        out.extend_from_slice(&self.valid_from.to_be_bytes());
        out.extend_from_slice(&self.valid_until.to_be_bytes());
        out.extend_from_slice(&self.issuer.to_u64().to_be_bytes());
        out.extend_from_slice(&self.serial.to_be_bytes());
        out
    }

    /// Builds and signs a certificate in one step.
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        cert_type: CertType,
        subject: IsdAsn,
        public_key: VerifyingKey,
        valid_from: u64,
        valid_until: u64,
        issuer: IsdAsn,
        serial: u64,
        issuer_key: &SigningKey,
    ) -> Self {
        let mut cert = Certificate {
            subject,
            cert_type,
            public_key,
            valid_from,
            valid_until,
            issuer,
            serial,
            signature: Signature([0u8; 32]),
        };
        cert.signature = issuer_key.sign(&cert.signed_bytes());
        cert
    }

    /// Checks the validity window at `now`.
    pub fn check_validity(&self, now: u64) -> Result<(), PkiError> {
        if now < self.valid_from {
            return Err(PkiError::NotYetValid {
                what: format!("certificate of {}", self.subject),
                valid_from: self.valid_from,
                now,
            });
        }
        if now > self.valid_until {
            return Err(PkiError::Expired {
                what: format!("certificate of {}", self.subject),
                valid_until: self.valid_until,
                now,
            });
        }
        Ok(())
    }

    /// Verifies the signature with the claimed issuer key.
    pub fn verify_signature(&self, issuer_key: &VerifyingKey) -> Result<(), PkiError> {
        issuer_key
            .verify(&self.signed_bytes(), &self.signature)
            .map_err(|_| PkiError::BadSignature(format!("certificate of {}", self.subject)))
    }

    /// Remaining lifetime at `now` in seconds (0 if already expired).
    pub fn remaining_lifetime(&self, now: u64) -> u64 {
        self.valid_until.saturating_sub(now)
    }
}

/// An AS certificate together with its issuing CA certificate.
#[derive(Debug, Clone)]
pub struct CertificateChain {
    /// The end-entity AS certificate.
    pub as_cert: Certificate,
    /// The CA certificate that issued it.
    pub ca_cert: Certificate,
}

impl CertificateChain {
    /// Verifies the full chain at time `now` against `trc`:
    ///
    /// 1. the AS certificate is an `As` cert within validity, signed by the
    ///    CA certificate's key;
    /// 2. the CA certificate is a `Ca` cert within validity, signed by a
    ///    root key pinned in the TRC for the CA cert's issuer;
    /// 3. the TRC itself is within validity.
    pub fn verify(&self, trc: &Trc, now: u64) -> Result<(), PkiError> {
        trc.check_validity(now)?;
        if self.as_cert.cert_type != CertType::As {
            return Err(PkiError::BadChain("leaf is not an AS certificate".into()));
        }
        if self.ca_cert.cert_type != CertType::Ca {
            return Err(PkiError::BadChain(
                "intermediate is not a CA certificate".into(),
            ));
        }
        self.as_cert.check_validity(now)?;
        self.ca_cert.check_validity(now)?;
        if self.as_cert.issuer != self.ca_cert.subject {
            return Err(PkiError::BadChain(format!(
                "AS cert issued by {}, CA cert subject is {}",
                self.as_cert.issuer, self.ca_cert.subject
            )));
        }
        self.as_cert.verify_signature(&self.ca_cert.public_key)?;
        let root_key = trc.root_key_of(self.ca_cert.issuer).ok_or_else(|| {
            PkiError::BadChain(format!("no TRC root key for {}", self.ca_cert.issuer))
        })?;
        self.ca_cert.verify_signature(root_key)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trc::{Trc, TrcKeyEntry};
    use scion_proto::addr::{ia, IsdNumber};

    struct Pki {
        trc: Trc,
        root_key: SigningKey,
        ca_key: SigningKey,
        as_key: SigningKey,
        chain: CertificateChain,
    }

    fn setup() -> Pki {
        let root_key = SigningKey::from_seed(b"root-geant");
        let ca_key = SigningKey::from_seed(b"ca-geant");
        let as_key = SigningKey::from_seed(b"as-ovgu");
        let core = ia("71-20965");
        let trc = Trc {
            isd: IsdNumber(71),
            base: 1,
            serial: 1,
            valid_from: 0,
            valid_until: 10_000_000,
            core_ases: vec![core],
            authoritative_ases: vec![core],
            voting_keys: vec![TrcKeyEntry {
                holder: core,
                key: root_key.verifying_key(),
            }],
            root_keys: vec![TrcKeyEntry {
                holder: core,
                key: root_key.verifying_key(),
            }],
            quorum: 1,
            votes: vec![],
        };
        let ca_cert = Certificate::issue(
            CertType::Ca,
            core,
            ca_key.verifying_key(),
            0,
            5_000_000,
            core,
            1,
            &root_key,
        );
        let as_cert = Certificate::issue(
            CertType::As,
            ia("71-2:0:42"),
            as_key.verifying_key(),
            0,
            259_200, // 3 days — the short lifetime of §4.5
            core,
            7,
            &ca_key,
        );
        Pki {
            trc,
            root_key,
            ca_key,
            as_key,
            chain: CertificateChain { as_cert, ca_cert },
        }
    }

    #[test]
    fn valid_chain_verifies() {
        let pki = setup();
        pki.chain.verify(&pki.trc, 1000).unwrap();
    }

    #[test]
    fn expired_as_cert_rejected() {
        let pki = setup();
        assert!(matches!(
            pki.chain.verify(&pki.trc, 259_201),
            Err(PkiError::Expired { .. })
        ));
    }

    #[test]
    fn tampered_as_cert_rejected() {
        let mut pki = setup();
        pki.chain.as_cert.valid_until += 1;
        assert!(matches!(
            pki.chain.verify(&pki.trc, 1000),
            Err(PkiError::BadSignature(_))
        ));
    }

    #[test]
    fn ca_cert_signed_by_wrong_root_rejected() {
        let mut pki = setup();
        let rogue_root = SigningKey::from_seed(b"rogue");
        pki.chain.ca_cert = Certificate::issue(
            CertType::Ca,
            ia("71-20965"),
            pki.ca_key.verifying_key(),
            0,
            5_000_000,
            ia("71-20965"),
            1,
            &rogue_root,
        );
        assert!(matches!(
            pki.chain.verify(&pki.trc, 1000),
            Err(PkiError::BadSignature(_))
        ));
    }

    #[test]
    fn issuer_subject_mismatch_rejected() {
        let mut pki = setup();
        pki.chain.as_cert = Certificate::issue(
            CertType::As,
            ia("71-2:0:42"),
            pki.as_key.verifying_key(),
            0,
            259_200,
            ia("71-999"), // claims a different issuer than the CA cert subject
            7,
            &pki.ca_key,
        );
        assert!(matches!(
            pki.chain.verify(&pki.trc, 1000),
            Err(PkiError::BadChain(_))
        ));
    }

    #[test]
    fn wrong_cert_types_rejected() {
        let mut pki = setup();
        std::mem::swap(&mut pki.chain.as_cert, &mut pki.chain.ca_cert);
        assert!(matches!(
            pki.chain.verify(&pki.trc, 1000),
            Err(PkiError::BadChain(_))
        ));
    }

    #[test]
    fn unknown_root_rejected() {
        let mut pki = setup();
        pki.trc.root_keys.clear();
        assert!(matches!(
            pki.chain.verify(&pki.trc, 1000),
            Err(PkiError::BadChain(_))
        ));
    }

    #[test]
    fn expired_trc_rejected() {
        let pki = setup();
        assert!(matches!(
            pki.chain.verify(&pki.trc, 10_000_001),
            Err(PkiError::Expired { .. })
        ));
    }

    #[test]
    fn remaining_lifetime() {
        let pki = setup();
        assert_eq!(pki.chain.as_cert.remaining_lifetime(0), 259_200);
        assert_eq!(pki.chain.as_cert.remaining_lifetime(259_100), 100);
        assert_eq!(pki.chain.as_cert.remaining_lifetime(300_000), 0);
    }

    #[test]
    fn signature_covers_every_field() {
        let pki = setup();
        let base = pki.chain.as_cert.clone();
        let mutations: Vec<Certificate> = vec![
            Certificate {
                subject: ia("71-1"),
                ..base.clone()
            },
            Certificate {
                cert_type: CertType::Ca,
                ..base.clone()
            },
            Certificate {
                valid_from: base.valid_from + 1,
                ..base.clone()
            },
            Certificate {
                valid_until: base.valid_until + 1,
                ..base.clone()
            },
            Certificate {
                issuer: ia("71-1"),
                ..base.clone()
            },
            Certificate {
                serial: base.serial + 1,
                ..base.clone()
            },
            Certificate {
                public_key: pki.root_key.verifying_key(),
                ..base.clone()
            },
        ];
        for m in mutations {
            assert!(
                m.verify_signature(&pki.ca_key.verifying_key()).is_err(),
                "mutation not covered by signature"
            );
        }
    }
}
