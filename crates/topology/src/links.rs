//! The SCIERA link inventory and control-graph construction.
//!
//! Links follow §3.2 and Fig. 1: the KREONET ring circumnavigating the
//! Northern Hemisphere, the four parallel Singapore–Amsterdam circuits
//! (KREONET, CAE-1, KAUST I & II), GEANT's transatlantic and Asian
//! reaches, RNP's VLANs to both GEANT and Internet2/BRIDGES, two VLANs to
//! WACREN@London, the "range of VLANs" to UVa, the two UFMS–RNP links and
//! the inter-ISD core link to the Swiss production network via SWITCH.

use serde::{Deserialize, Serialize};

use scion_control::fullpath::FullPath;
use scion_control::graph::{ControlGraph, LinkType};
use scion_proto::addr::{ia, IsdAsn};

use crate::ases::{all_ases, as_info};
use crate::geo::{self, fiber_latency_ms};

/// One physical/L2 link of the deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One endpoint.
    pub a: IsdAsn,
    /// The other endpoint.
    pub b: IsdAsn,
    /// SCION link type as seen from `a`.
    pub link_type: LinkType,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
    /// Human label ("SG-AMS via KAUST I").
    pub label: String,
}

fn lat(a: IsdAsn, b: IsdAsn, indirectness: f64) -> f64 {
    let pa = as_info(a).expect("known AS").pop;
    let pb = as_info(b).expect("known AS").pop;
    fiber_latency_ms(pa, pb, indirectness)
}

fn core(a: &str, b: &str, indirectness: f64, label: &str) -> LinkSpec {
    // Core circuits are long-haul waves procured for the backbone; they
    // track the geodesic more closely than access circuits.
    let (a, b) = (ia(a), ia(b));
    LinkSpec {
        a,
        b,
        link_type: LinkType::Core,
        latency_ms: lat(a, b, (indirectness - 0.12).max(1.05)),
        label: label.into(),
    }
}

fn child(parent: &str, child_as: &str, indirectness: f64, label: &str) -> LinkSpec {
    let (a, b) = (ia(parent), ia(child_as));
    // Access circuits ride NREN infrastructure through intermediate PoPs
    // rather than the geodesic — systematically more indirect than core
    // circuits (and than commercial last miles), which is why §5.4 sees
    // RTT inflation on most pairs.
    LinkSpec {
        a,
        b,
        link_type: LinkType::Child,
        latency_ms: lat(a, b, indirectness + 0.55) + 1.2,
        label: label.into(),
    }
}

/// Per-AS data-plane cost in milliseconds (one way): border-router
/// processing plus the intra-AS IP-underlay crossing of §4.3.1.
pub const PER_AS_OVERHEAD_MS: f64 = 0.75;

/// The full link inventory (parallel circuits appear as separate entries).
pub fn link_inventory() -> Vec<LinkSpec> {
    let mut links = vec![
        // ---- Core mesh --------------------------------------------------
        core("71-20965", "71-2:0:35", 1.35, "GEANT-BRIDGES transatlantic"),
        // Second EU-US circuit; activated late January during the
        // measurement campaign ("several new links between EU and US
        // became available", Fig. 7).
        core("71-20965", "71-2:0:35", 1.5, "GEANT-BRIDGES via Paris"),
        core("71-20965", "71-2:0:3e", 1.4, "GEANT-KISTI Amsterdam"),
        core(
            "71-20965",
            "71-2:0:3d",
            1.35,
            "GEANT-KISTI Singapore (CAE-1 extension)",
        ),
        // RNP reaches Europe via the Lisbon and Madrid RedCLARA PoPs
        // (Table 1) and North America via Internet2/AtlanticWave in
        // Jacksonville.
        core("71-20965", "71-1916", 1.4, "GEANT-RNP via Lisbon"),
        core("71-20965", "71-1916", 1.48, "GEANT-RNP via Madrid"),
        core(
            "71-2:0:35",
            "71-1916",
            1.4,
            "BRIDGES-RNP (Internet2/AtlanticWave)",
        ),
        core("71-2:0:35", "71-1916", 1.5, "BRIDGES-RNP via Jacksonville"),
        core(
            "71-2:0:35",
            "71-2:0:3f",
            1.4,
            "BRIDGES-KISTI Chicago (Internet2)",
        ),
        // KREONET ring: Seattle - Chicago - Amsterdam - Singapore -
        // Hong Kong - Daejeon - Seattle.
        core("71-2:0:40", "71-2:0:3f", 1.4, "KISTI Seattle-Chicago"),
        core("71-2:0:3f", "71-2:0:3e", 1.35, "KISTI Chicago-Amsterdam"),
        core("71-2:0:3d", "71-2:0:3c", 1.3, "KISTI Singapore-Hong Kong"),
        core("71-2:0:3c", "71-2:0:3b", 1.3, "KISTI Hong Kong-Daejeon"),
        core(
            "71-2:0:3b",
            "71-2:0:40",
            1.35,
            "KISTI Daejeon-Seattle transpacific",
        ),
        // The direct Daejeon-Singapore circuit (the submarine cable cut of
        // §5.5 affected this link).
        core(
            "71-2:0:3b",
            "71-2:0:3d",
            1.3,
            "KISTI Daejeon-Singapore direct",
        ),
        // Inter-ISD core link to the commercial production network.
        core("71-20965", "64-559", 1.4, "GEANT-SWITCH (ISD 64)"),
        // ---- GEANT children --------------------------------------------
        child("71-20965", "71-559", 1.4, "GEANT-SWITCH (SCIERA AS)"),
        child("71-20965", "71-1140", 1.4, "GEANT-SIDN Labs"),
        child("71-20965", "71-2546", 1.4, "GEANT-Demokritos (GRNet)"),
        child("71-20965", "71-2:0:42", 1.4, "GEANT-OVGU"),
        child("71-20965", "71-2:0:49", 1.4, "GEANT-CybExer (EENet)"),
        child(
            "71-20965",
            "71-203311",
            1.4,
            "GEANT-CCDCoE (EENet, reused VLANs)",
        ),
        // ---- BRIDGES children -------------------------------------------
        child(
            "71-2:0:35",
            "71-88",
            1.4,
            "BRIDGES-Princeton (4-party VLAN)",
        ),
        child("71-2:0:35", "71-398900", 1.2, "BRIDGES-FABRIC"),
        child(
            "71-2:0:35",
            "71-2:0:48",
            1.1,
            "BRIDGES-Equinix cross-connect A",
        ),
        child(
            "71-2:0:35",
            "71-2:0:48",
            1.2,
            "BRIDGES-Equinix cross-connect B",
        ),
        // ---- KREONET children -------------------------------------------
        child(
            "71-2:0:3b",
            "71-2:0:4d",
            1.4,
            "KISTI Daejeon-Korea University",
        ),
        child("71-2:0:3c", "71-4158", 1.2, "KISTI HK-CityU (HARNET)"),
        child(
            "71-2:0:3d",
            "71-2:0:18",
            1.2,
            "KISTI SG-SEC (VXLAN over SingAREN)",
        ),
        child(
            "71-2:0:3d",
            "71-2:0:61",
            1.2,
            "KISTI SG-NUS (SingAREN Open Exchange)",
        ),
        // App. B recommends at least two physical links per customer AS.
        child(
            "71-2:0:3d",
            "71-2:0:4a",
            1.2,
            "KISTI SG-measurement AS link 1",
        ),
        child(
            "71-2:0:3d",
            "71-2:0:4a",
            1.3,
            "KISTI SG-measurement AS link 2",
        ),
        child("71-2:0:3d", "71-50999", 1.35, "KISTI SG-KAUST"),
        child("71-2:0:3e", "71-50999", 1.35, "KISTI AMS-KAUST"),
        // ---- ISD 64 -----------------------------------------------------
        child("64-559", "64-2:0:9", 1.2, "SWITCH-ETH Zurich"),
    ];
    // Parallel circuits.
    // Four distinct SG-AMS circuits (§3.2): the ring already provides the
    // KREONET one indirectly via Chicago; the direct circuits:
    links.push(core("71-2:0:3d", "71-2:0:3e", 1.3, "SG-AMS via KREONET"));
    links.push(core("71-2:0:3d", "71-2:0:3e", 1.45, "SG-AMS via CAE-1"));
    for (i, label) in ["SG-AMS via KAUST I", "SG-AMS via KAUST II"]
        .iter()
        .enumerate()
    {
        // KAUST circuits detour via Jeddah.
        let via = fiber_latency_ms(geo::SINGAPORE, geo::JEDDAH, 1.3)
            + fiber_latency_ms(geo::JEDDAH, geo::AMSTERDAM, 1.3)
            + i as f64 * 1.5;
        links.push(LinkSpec {
            a: ia("71-2:0:3d"),
            b: ia("71-2:0:3e"),
            link_type: LinkType::Core,
            latency_ms: via,
            label: (*label).into(),
        });
    }
    // Two VLANs to WACREN@London.
    for i in 0..2 {
        links.push(LinkSpec {
            a: ia("71-20965"),
            b: ia("71-37288"),
            link_type: LinkType::Child,
            latency_ms: lat(ia("71-20965"), ia("71-37288"), 1.4) + i as f64 * 0.8,
            label: format!("GEANT-WACREN VLAN {}", i + 1),
        });
    }
    // A "range of VLANs" between BRIDGES and UVa (App. C): model three.
    for i in 0..3 {
        links.push(LinkSpec {
            a: ia("71-2:0:35"),
            b: ia("71-225"),
            link_type: LinkType::Child,
            latency_ms: lat(ia("71-2:0:35"), ia("71-225"), 1.3) + i as f64 * 0.4,
            label: format!("BRIDGES-UVa VLAN {}", i + 1),
        });
    }
    // Two disjoint RNP PoP paths to UFMS (§3.2 South America).
    for i in 0..2 {
        links.push(LinkSpec {
            a: ia("71-1916"),
            b: ia("71-2:0:5c"),
            link_type: LinkType::Child,
            latency_ms: lat(ia("71-1916"), ia("71-2:0:5c"), 1.4 + i as f64 * 0.3),
            label: format!("RNP-UFMS path {}", i + 1),
        });
    }
    links
}

/// A link as realised in the control graph, with its interface IDs.
#[derive(Debug, Clone)]
pub struct BuiltLink {
    /// The specification.
    pub spec: LinkSpec,
    /// Interface ID at `spec.a`.
    pub ifid_a: u16,
    /// Interface ID at `spec.b`.
    pub ifid_b: u16,
}

/// The realised topology: control graph plus interface-to-link mapping.
pub struct BuiltTopology {
    /// The control graph (input to beaconing).
    pub graph: ControlGraph,
    /// All links with assigned interface IDs.
    pub links: Vec<BuiltLink>,
}

impl BuiltTopology {
    /// Index of the link attached at `(ia, ifid)`.
    pub fn link_index_of(&self, ia: IsdAsn, ifid: u16) -> Option<usize> {
        self.links.iter().position(|l| {
            (l.spec.a == ia && l.ifid_a == ifid) || (l.spec.b == ia && l.ifid_b == ifid)
        })
    }

    /// One-way latency of the link attached at `(ia, ifid)`.
    pub fn latency_of(&self, ia: IsdAsn, ifid: u16) -> Option<f64> {
        self.link_index_of(ia, ifid)
            .map(|i| self.links[i].spec.latency_ms)
    }

    /// Round-trip time along a combined path, in milliseconds: the sum of
    /// the one-way latencies of every crossed link (taken at each hop's
    /// egress), both directions, plus a small per-AS processing cost.
    ///
    /// `link_down` lets callers exclude links (fault injection); returns
    /// `None` if the path crosses a downed or unknown link.
    pub fn path_rtt_ms(&self, path: &FullPath, link_down: &dyn Fn(usize) -> bool) -> Option<f64> {
        let mut one_way = 0.0;
        let mut hops = 0u32;
        for h in &path.hops {
            if h.egress != 0 {
                let idx = self.link_index_of(h.ia, h.egress)?;
                if link_down(idx) {
                    return None;
                }
                one_way += self.links[idx].spec.latency_ms;
                hops += 1;
            }
        }
        let _ = hops;
        // Per-AS cost: border-router processing plus the intra-AS IP
        // underlay crossing of §4.3.1 (SCION packets traverse AS-internal
        // IP segments between border routers and services).
        Some(2.0 * (one_way + path.hops.len() as f64 * PER_AS_OVERHEAD_MS))
    }

    /// Whether every link on `path` is up.
    pub fn path_alive(&self, path: &FullPath, link_down: &dyn Fn(usize) -> bool) -> bool {
        self.path_rtt_ms(path, link_down).is_some()
    }
}

/// Builds the control graph for the whole deployment.
pub fn build_control_graph() -> BuiltTopology {
    let mut graph = ControlGraph::new();
    for a in all_ases() {
        graph.add_as(a.ia, a.core);
    }
    let mut links = Vec::new();
    for spec in link_inventory() {
        let (ifid_a, ifid_b) = graph
            .connect(spec.a, spec.b, spec.link_type)
            .expect("inventory references known ASes");
        links.push(BuiltLink {
            spec,
            ifid_a,
            ifid_b,
        });
    }
    graph
        .validate()
        .expect("SCIERA topology is structurally valid");
    BuiltTopology { graph, links }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_control::beacon::{BeaconConfig, BeaconEngine};
    use scion_control::combine::combine_paths;

    #[test]
    fn inventory_is_valid_topology() {
        let built = build_control_graph();
        assert!(built.graph.as_count() >= 28);
        assert!(built.graph.link_count() >= 35);
    }

    #[test]
    fn four_parallel_sg_ams_circuits() {
        let inv = link_inventory();
        let sg_ams = inv
            .iter()
            .filter(|l| {
                (l.a == ia("71-2:0:3d") && l.b == ia("71-2:0:3e"))
                    || (l.a == ia("71-2:0:3e") && l.b == ia("71-2:0:3d"))
            })
            .count();
        assert_eq!(sg_ams, 4, "§3.2: four distinct SG-AMS paths");
    }

    #[test]
    fn latencies_reflect_geography() {
        let built = build_control_graph();
        let find = |label: &str| {
            built
                .links
                .iter()
                .find(|l| l.spec.label == label)
                .unwrap_or_else(|| panic!("no link {label}"))
                .spec
                .latency_ms
        };
        let regional = find("GEANT-KISTI Amsterdam");
        let transatlantic = find("GEANT-BRIDGES transatlantic");
        let transpacific = find("KISTI Daejeon-Seattle transpacific");
        assert!(regional < 5.0, "regional {regional} ms");
        assert!(
            transatlantic > 25.0 && transatlantic < 60.0,
            "transatlantic {transatlantic} ms"
        );
        assert!(transpacific > 40.0, "transpacific {transpacific} ms");
        // The KAUST detour circuits are slower than the direct ones.
        assert!(find("SG-AMS via KAUST I") > find("SG-AMS via KREONET"));
    }

    #[test]
    fn beaconing_connects_the_world() {
        let built = build_control_graph();
        let store = BeaconEngine::new(&built.graph, 1_700_000_000, BeaconConfig::default())
            .run()
            .unwrap();
        // Every Fig. 8 vantage pair has at least 2 paths (the paper's
        // minimum observation).
        let vantages = crate::ases::fig8_vantages();
        for &s in &vantages {
            for &d in &vantages {
                if s == d {
                    continue;
                }
                let paths = combine_paths(&store, s, d, 300);
                assert!(paths.len() >= 2, "{s}->{d}: only {} paths", paths.len());
            }
        }
    }

    #[test]
    fn uva_ufms_has_rich_path_choice() {
        // The Fig. 8 extreme: >100 active paths between UVa and UFMS.
        let built = build_control_graph();
        let config = BeaconConfig {
            candidates_per_origin: 32,
            ..Default::default()
        };
        let store = BeaconEngine::new(&built.graph, 1_700_000_000, config)
            .run()
            .unwrap();
        let paths = combine_paths(&store, ia("71-225"), ia("71-2:0:5c"), 500);
        assert!(paths.len() > 100, "UVa->UFMS: {} paths", paths.len());
    }

    #[test]
    fn path_rtt_computation() {
        let built = build_control_graph();
        let store = BeaconEngine::new(&built.graph, 1_700_000_000, BeaconConfig::default())
            .run()
            .unwrap();
        let paths = combine_paths(&store, ia("71-2:0:42"), ia("71-1140"), 50);
        assert!(!paths.is_empty());
        let up = |_: usize| false;
        let rtt = built.path_rtt_ms(&paths[0], &up).unwrap();
        // OVGU -> GEANT(FRA) -> SIDN(Delft): a few ms each way.
        assert!(rtt > 1.0 && rtt < 40.0, "intra-EU rtt {rtt} ms");
        // Downing every link kills the path.
        let down = |_: usize| true;
        assert!(built.path_rtt_ms(&paths[0], &down).is_none());
        assert!(!built.path_alive(&paths[0], &down));
    }

    #[test]
    fn link_index_lookup_consistent() {
        let built = build_control_graph();
        for (i, l) in built.links.iter().enumerate() {
            assert_eq!(built.link_index_of(l.spec.a, l.ifid_a), Some(i));
            assert_eq!(built.link_index_of(l.spec.b, l.ifid_b), Some(i));
            assert_eq!(
                built.latency_of(l.spec.a, l.ifid_a),
                Some(l.spec.latency_ms)
            );
        }
    }
}

/// Average grid carbon intensity by longitude band, gCO₂eq/kWh — coarse
/// public figures (EU ~250, US ~380, Middle East ~550, Asia ~480,
/// Brazil ~100 thanks to hydro, West Africa ~450). Used for the §4.7
/// "green paths based on energy or carbon metrics".
fn grid_carbon_g_per_kwh(pop: crate::geo::Pop) -> f64 {
    if pop.lon < -30.0 {
        if pop.lat < 10.0 {
            100.0 // Brazil: hydro-heavy
        } else {
            380.0 // North America
        }
    } else if pop.lon < 35.0 {
        if pop.lat > 35.0 {
            250.0 // Europe
        } else {
            450.0 // West Africa
        }
    } else if pop.lon < 60.0 {
        550.0 // Middle East
    } else {
        480.0 // East/South-East Asia
    }
}

/// Transport energy per traffic volume and distance, kWh/(GB·1000 km) —
/// long-haul optical transport plus amplifier/regeneration sites.
const KWH_PER_GB_PER_1000KM: f64 = 0.02;
/// Fixed per-AS handling energy (routers, switching fabric), kWh/GB.
const KWH_PER_GB_PER_AS: f64 = 0.004;

impl BuiltTopology {
    /// Estimated carbon intensity of carrying one GB over `path`,
    /// gCO₂eq/GB: per-link transport energy priced at the mean of the two
    /// endpoints' grid intensities, plus per-AS handling energy priced at
    /// the hop's local grid.
    pub fn carbon_g_per_gb(&self, path: &FullPath) -> Option<f64> {
        let mut total = 0.0f64;
        for h in &path.hops {
            let local = as_info(h.ia)?.pop;
            total += KWH_PER_GB_PER_AS * grid_carbon_g_per_kwh(local);
            if h.egress != 0 {
                let idx = self.link_index_of(h.ia, h.egress)?;
                let l = &self.links[idx];
                let pa = as_info(l.spec.a)?.pop;
                let pb = as_info(l.spec.b)?.pop;
                let km = crate::geo::great_circle_km(pa, pb);
                let grid = (grid_carbon_g_per_kwh(pa) + grid_carbon_g_per_kwh(pb)) / 2.0;
                total += KWH_PER_GB_PER_1000KM * km / 1000.0 * grid;
            }
        }
        Some(total)
    }
}

#[cfg(test)]
mod carbon_tests {
    use super::*;
    use scion_control::beacon::{BeaconConfig, BeaconEngine};
    use scion_control::combine::combine_paths;

    #[test]
    fn longer_paths_emit_more() {
        let built = build_control_graph();
        let store = BeaconEngine::new(&built.graph, 1_700_000_000, BeaconConfig::default())
            .run()
            .unwrap();
        let paths = combine_paths(&store, ia("71-2:0:42"), ia("71-2:0:3b"), 50);
        assert!(paths.len() >= 2);
        let carbons: Vec<f64> = paths
            .iter()
            .map(|p| built.carbon_g_per_gb(p).unwrap())
            .collect();
        // All positive, and not all identical (there is something to
        // optimise).
        assert!(carbons.iter().all(|&c| c > 0.0));
        let min = carbons.iter().cloned().fold(f64::MAX, f64::min);
        let max = carbons.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min * 1.05, "carbon spread {min}..{max}");
    }

    #[test]
    fn hydro_powered_brazil_route_beats_middle_east_detour() {
        let built = build_control_graph();
        let store = BeaconEngine::new(
            &built.graph,
            1_700_000_000,
            BeaconConfig {
                candidates_per_origin: 16,
                ..Default::default()
            },
        )
        .run()
        .unwrap();
        // EU -> Singapore: routes exist via the Jeddah (KAUST) circuits
        // and via other circuits; the green metric must separate them.
        let paths = combine_paths(&store, ia("71-20965"), ia("71-2:0:3d"), 100);
        let via_jeddah: Vec<f64> = paths
            .iter()
            .filter(|p| {
                p.hops.iter().any(|h| {
                    h.egress != 0
                        && built
                            .link_index_of(h.ia, h.egress)
                            .map(|i| built.links[i].spec.label.contains("KAUST"))
                            .unwrap_or(false)
                })
            })
            .filter_map(|p| built.carbon_g_per_gb(p))
            .collect();
        let not_jeddah: Vec<f64> = paths
            .iter()
            .filter(|p| {
                !p.hops.iter().any(|h| {
                    h.egress != 0
                        && built
                            .link_index_of(h.ia, h.egress)
                            .map(|i| built.links[i].spec.label.contains("KAUST"))
                            .unwrap_or(false)
                })
            })
            .filter_map(|p| built.carbon_g_per_gb(p))
            .collect();
        assert!(!via_jeddah.is_empty() && !not_jeddah.is_empty());
        let min_j = via_jeddah.iter().cloned().fold(f64::MAX, f64::min);
        let min_n = not_jeddah.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            min_n < min_j,
            "greenest non-Jeddah route ({min_n:.1}) should undercut the Jeddah detour ({min_j:.1})"
        );
    }
}
