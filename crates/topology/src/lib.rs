//! The SCIERA deployment as data (§3, Fig. 1, Table 1, Fig. 3, App. C/D).
//!
//! Everything the paper states about the deployed network is encoded here:
//!
//! * [`ases`] — every AS of Fig. 1 with its real ISD-AS number, role
//!   (core / leaf), region and home PoP.
//! * [`geo`] — PoP coordinates and fiber-latency computation: link
//!   latencies derive from great-circle distances at the speed of light in
//!   fiber with route-indirectness factors, so the simulated RTTs carry
//!   the real geography of the five-continent deployment.
//! * [`links`] — the link inventory: the KREONET ring (Daejeon, Hong Kong,
//!   Singapore, Amsterdam, Chicago, Seattle), the four parallel
//!   Singapore–Amsterdam circuits, GEANT's European reach, BRIDGES,
//!   RNP and all leaf attachments; builds the [`scion_control::ControlGraph`]
//!   and the `netsim` link set.
//! * [`ip`] — the commercial-Internet baseline: a BGP-style graph over the
//!   same sites plus transit hubs, routed by *fewest AS hops* (not lowest
//!   latency) — which is exactly why IP sometimes wins and sometimes loses
//!   against SCION's path choice in §5.4.
//! * [`timeline`] — the Fig. 3 onboarding timeline with the Appendix C
//!   facts per event (connection type, coordinating parties, hardware
//!   procurement), plus Table 1's PoPs and Appendix D's NSP list.
//!
//! One mapping note (also in DESIGN.md): Fig. 8's vantage list contains
//! `71-2:0:4a`, which the paper text never names; we attach it as a
//! measurement AS under KISTI Singapore.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ases;
pub mod geo;
pub mod ip;
pub mod links;
pub mod synth;
pub mod timeline;

pub use ases::{all_ases, AsInfo, Region};
pub use geo::{fiber_rtt_ms, Pop};
pub use ip::IpBaseline;
pub use links::{build_control_graph, link_inventory, LinkSpec};
pub use synth::{synthesize, SynthConfig};
pub use timeline::{deployment_timeline, nsps, pops_table1};
