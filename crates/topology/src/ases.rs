//! The ASes of the SCIERA deployment (Fig. 1).

use serde::{Deserialize, Serialize};

use scion_proto::addr::{ia, IsdAsn};

use crate::geo::{self, Pop};

/// Deployment region as drawn in Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// North America.
    NorthAmerica,
    /// Europe.
    Europe,
    /// Asia.
    Asia,
    /// South America.
    SouthAmerica,
    /// Africa.
    Africa,
}

/// One AS of the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsInfo {
    /// The ISD-AS number as printed in Fig. 1.
    pub ia: IsdAsn,
    /// Site name.
    pub name: &'static str,
    /// Whether this is a (Tier-1) core AS.
    pub core: bool,
    /// Region.
    pub region: Region,
    /// Home PoP for latency computation.
    pub pop: Pop,
    /// Whether the multiping measurement tool runs here (§5.4: 11 ASes).
    pub measurement_point: bool,
}

fn info(
    ia_str: &str,
    name: &'static str,
    core: bool,
    region: Region,
    pop: Pop,
    measurement_point: bool,
) -> AsInfo {
    AsInfo {
        ia: ia(ia_str),
        name,
        core,
        region,
        pop,
        measurement_point,
    }
}

/// Every AS of the SCIERA deployment (ISD 71) plus the two ISD-64 ASes
/// reached via SWITCH. Measurement points: 5 in Europe, 2 in Asia, 3 in
/// North America, 1 in South America (§5.4).
pub fn all_ases() -> Vec<AsInfo> {
    use Region::*;
    vec![
        // ---- Europe ----------------------------------------------------
        info("71-20965", "GEANT", true, Europe, geo::FRANKFURT, true),
        info(
            "71-559",
            "SWITCH (SCIERA)",
            false,
            Europe,
            geo::ZURICH,
            true,
        ),
        info("71-1140", "SIDN Labs", false, Europe, geo::DELFT, true),
        info(
            "71-2546",
            "NCSR Demokritos",
            false,
            Europe,
            geo::ATHENS,
            true,
        ),
        info(
            "71-2:0:42",
            "OVGU Magdeburg",
            false,
            Europe,
            geo::MAGDEBURG,
            true,
        ),
        info("71-2:0:49", "CybExer", false, Europe, geo::TALLINN, false),
        info("71-203311", "CCDCoE", false, Europe, geo::TALLINN, false),
        // ---- North America ---------------------------------------------
        info(
            "71-2:0:35",
            "BRIDGES",
            true,
            NorthAmerica,
            geo::MCLEAN,
            false,
        ),
        info(
            "71-2:0:48",
            "Equinix Ashburn",
            false,
            NorthAmerica,
            geo::ASHBURN,
            true,
        ),
        info(
            "71-225",
            "University of Virginia",
            false,
            NorthAmerica,
            geo::CHARLOTTESVILLE,
            true,
        ),
        info(
            "71-88",
            "Princeton University",
            false,
            NorthAmerica,
            geo::PRINCETON,
            true,
        ),
        info(
            "71-398900",
            "FABRIC",
            false,
            NorthAmerica,
            geo::MCLEAN,
            false,
        ),
        info(
            "71-2:0:3f",
            "KISTI Chicago",
            true,
            NorthAmerica,
            geo::CHICAGO,
            false,
        ),
        info(
            "71-2:0:40",
            "KISTI Seattle",
            true,
            NorthAmerica,
            geo::SEATTLE,
            false,
        ),
        // ---- Asia --------------------------------------------------------
        info("71-2:0:3b", "KISTI Daejeon", true, Asia, geo::DAEJEON, true),
        info(
            "71-2:0:3c",
            "KISTI Hong Kong",
            true,
            Asia,
            geo::HONG_KONG,
            false,
        ),
        info(
            "71-2:0:3d",
            "KISTI Singapore",
            true,
            Asia,
            geo::SINGAPORE,
            true,
        ),
        info(
            "71-2:0:3e",
            "KISTI Amsterdam",
            true,
            Asia,
            geo::AMSTERDAM,
            false,
        ),
        info(
            "71-2:0:4d",
            "Korea University",
            false,
            Asia,
            geo::SEOUL,
            false,
        ),
        info(
            "71-2:0:18",
            "Singapore-ETH Centre",
            false,
            Asia,
            geo::SINGAPORE,
            false,
        ),
        info("71-2:0:61", "NUS", false, Asia, geo::SINGAPORE, false),
        info(
            "71-4158",
            "CityU Hong Kong",
            false,
            Asia,
            geo::HONG_KONG,
            false,
        ),
        info("71-50999", "KAUST", false, Asia, geo::JEDDAH, false),
        // Fig. 8 lists vantage 71-2:0:4a, unnamed in the paper text; we
        // model it as a KREONET-attached measurement AS in Singapore.
        info(
            "71-2:0:4a",
            "KREONET measurement AS",
            false,
            Asia,
            geo::SINGAPORE,
            false,
        ),
        // ---- South America -----------------------------------------------
        info("71-1916", "RNP", true, SouthAmerica, geo::SAO_PAULO, false),
        info(
            "71-2:0:5c",
            "UFMS",
            false,
            SouthAmerica,
            geo::CAMPO_GRANDE,
            true,
        ),
        // ---- Africa ------------------------------------------------------
        info("71-37288", "WACREN", false, Africa, geo::LAGOS, false),
        // ---- ISD 64 (commercial SCION production network) ---------------
        info(
            "64-559",
            "SWITCH (ISD 64 core)",
            true,
            Europe,
            geo::ZURICH,
            false,
        ),
        info("64-2:0:9", "ETH Zurich", false, Europe, geo::ZURICH, false),
    ]
}

/// Looks up an AS by ISD-AS.
pub fn as_info(target: IsdAsn) -> Option<AsInfo> {
    all_ases().into_iter().find(|a| a.ia == target)
}

/// The nine Fig. 8 / Fig. 9 vantage ASes, in the paper's axis order.
pub fn fig8_vantages() -> Vec<IsdAsn> {
    [
        "71-20965",
        "71-225",
        "71-2:0:3b",
        "71-2:0:3d",
        "71-2:0:3e",
        "71-2:0:3f",
        "71-2:0:48",
        "71-2:0:4a",
        "71-2:0:5c",
    ]
    .iter()
    .map(|s| ia(s))
    .collect()
}

/// The eleven §5.4 measurement ASes.
pub fn measurement_points() -> Vec<AsInfo> {
    all_ases()
        .into_iter()
        .filter(|a| a.measurement_point)
        .collect()
}

/// The commercial ASes for the §4.9 transit policy (the ISD-64 production
/// network reached via SWITCH).
pub fn commercial_ases() -> Vec<IsdAsn> {
    all_ases()
        .into_iter()
        .filter(|a| a.ia.isd.0 == 64)
        .map(|a| a.ia)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_numbers_unique_and_parse() {
        let ases = all_ases();
        let mut ids: Vec<IsdAsn> = ases.iter().map(|a| a.ia).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate ISD-AS");
        assert!(n >= 28);
    }

    #[test]
    fn isd_71_except_swiss() {
        for a in all_ases() {
            assert!(
                a.ia.isd.0 == 71 || a.ia.isd.0 == 64,
                "{} in unexpected ISD {}",
                a.name,
                a.ia.isd
            );
        }
        assert_eq!(commercial_ases().len(), 2);
    }

    #[test]
    fn measurement_points_match_paper_distribution() {
        let mp = measurement_points();
        assert_eq!(mp.len(), 11, "§5.4: tool deployed across 11 ASes");
        let count = |r: Region| mp.iter().filter(|a| a.region == r).count();
        assert_eq!(count(Region::Europe), 5);
        assert_eq!(count(Region::Asia), 2);
        assert_eq!(count(Region::NorthAmerica), 3);
        assert_eq!(count(Region::SouthAmerica), 1);
    }

    #[test]
    fn fig8_vantages_exist() {
        for v in fig8_vantages() {
            assert!(as_info(v).is_some(), "vantage {v} missing from AS table");
        }
        assert_eq!(fig8_vantages().len(), 9);
    }

    #[test]
    fn cores_match_paper() {
        let cores: Vec<&str> = all_ases()
            .into_iter()
            .filter(|a| a.core && a.ia.isd.0 == 71)
            .map(|a| a.name)
            .collect();
        assert!(cores.contains(&"GEANT"));
        assert!(cores.contains(&"BRIDGES"));
        assert!(cores.contains(&"RNP"));
        // The six KREONET ring PoPs are all core ASes (§3.2 "Asia is
        // structured with multiple Tier-1 core ASes").
        assert_eq!(cores.iter().filter(|n| n.starts_with("KISTI")).count(), 6);
    }

    #[test]
    fn known_numbers_spot_check() {
        assert_eq!(as_info(ia("71-2:0:3b")).unwrap().name, "KISTI Daejeon");
        assert_eq!(
            as_info(ia("71-225")).unwrap().name,
            "University of Virginia"
        );
        assert_eq!(as_info(ia("71-2:0:5c")).unwrap().name, "UFMS");
        assert_eq!(as_info(ia("71-50999")).unwrap().name, "KAUST");
    }
}
