//! The deployment timeline (Fig. 3 / Appendix C), Table 1 and Appendix D.

use scion_orchestrator::effort::{ConnectionType, OnboardingEvent};

/// The Fig. 3 onboarding events in chronological order, with the
/// Appendix C facts: month offset from GEANT's June-2022 go-live,
/// connection type, coordinating parties and hardware procurement.
pub fn deployment_timeline() -> Vec<OnboardingEvent> {
    let ev = |name: &str, month: u32, connection: ConnectionType, parties: u8, hw: bool| {
        OnboardingEvent {
            name: name.into(),
            month,
            connection,
            parties,
            hardware_procurement: hw,
        }
    };
    vec![
        // "The SCION setup in GEANT required a major effort. Most of the
        // effort … hardware and software purchase, shipping, installation."
        ev("GEANT", 0, ConnectionType::CoreBuildout, 3, true), // June 2022
        // "Connecting SWITCH to ISD 71 was rather straightforward."
        ev("SWITCH", 3, ConnectionType::SingleNetworkVlan, 2, false), // Sept 2022
        // "Connecting SIDN Labs was quite straightforward … two VLANs."
        ev("SIDN Labs", 9, ConnectionType::SingleNetworkVlan, 2, false), // March 2023
        // "Setting up SCION in BRIDGES took again more time … hardware
        // procurement … VLANs back to GEANT took around 1.5 months."
        ev("BRIDGES", 9, ConnectionType::CoreBuildout, 3, true), // March 2023
        // "UVa was the first site connected via BRIDGES … many parties
        // needed to collaborate."
        ev("UVa", 9, ConnectionType::MultiNetworkVlan, 3, true), // March 2023
        // "Connecting Equinix … via a cross-connect … took more effort
        // than initially expected."
        ev("Equinix", 11, ConnectionType::SingleNetworkVlan, 2, false), // May 2023
        // "Connecting Cybexer … was again very fast (two GEANT Plus links
        // via EENet)."
        ev("CybExer", 13, ConnectionType::SingleNetworkVlan, 2, false), // July 2023
        // "Connecting Princeton again required more effort … 4 parties."
        ev("Princeton", 14, ConnectionType::MultiNetworkVlan, 4, false), // Aug 2023
        ev("OVGU", 14, ConnectionType::SingleNetworkVlan, 2, true),      // Aug 2023
        // "Connecting Demokritos was straightforward (GEANT Plus via GRNet)."
        ev(
            "Demokritos",
            15,
            ConnectionType::SingleNetworkVlan,
            2,
            false,
        ), // Sept 2023
        // "Establishing connectivity with the SEC … VXLAN over SingAREN."
        ev("SEC", 16, ConnectionType::VxlanOverlay, 3, false), // Oct 2023
        // "KISTI CHG" — first KREONET node productionised. "Deploying SCION
        // productively over KISTI's Kreonet required much effort."
        ev("KISTI CHG", 16, ConnectionType::CoreBuildout, 4, true), // Oct 2023
        ev("KISTI DJ", 23, ConnectionType::CoreBuildout, 4, false), // May 2024
        ev("KISTI AMS", 23, ConnectionType::MultiNetworkVlan, 4, false), // May 2024
        ev("KISTI SG", 26, ConnectionType::MultiNetworkVlan, 4, false), // Aug 2024
        ev("UFMS", 26, ConnectionType::MultiNetworkVlan, 3, false), // Aug 2024
        // "CCDCoE was even able to reuse the existing VLANs established by
        // Cybexer."
        ev("CCDCoE", 27, ConnectionType::ReuseExisting, 1, false), // Sept 2024
        // "KAUST took a bit more time due to a long-lasting hardware
        // delivery."
        ev("KAUST", 33, ConnectionType::SingleNetworkVlan, 3, true), // March 2025
        // "The most recent SCION deployments in 2025 at RNP as well as
        // KISTI HK and STL took considerably less effort."
        ev("RNP", 34, ConnectionType::MultiNetworkVlan, 3, false), // April 2025
        ev("KISTI HK", 35, ConnectionType::CoreBuildout, 2, false), // 2025
        ev("KISTI STL", 35, ConnectionType::CoreBuildout, 2, false), // 2025
        // "NUS … straightforward on our side." Joined via the SingAREN
        // open exchange / AL2S multipoint experience.
        ev("NUS", 36, ConnectionType::MultipointJoin, 2, false), // June 2025
    ]
}

/// Table 1: SCIERA PoPs with their peering NRENs and partner networks.
pub fn pops_table1() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("Amsterdam, NL", "GEANT/KREONET", "Netherlight"),
        ("Ashburn, US", "BRIDGES", "Internet2/MARIA"),
        ("Chicago, US", "KREONET", "Internet2/StarLight"),
        ("Daejeon, KR", "KREONET", "KISTI"),
        ("Frankfurt, DE", "GEANT", ""),
        ("Geneva, CH", "GEANT", "CERN/SWITCH"),
        ("Hong Kong, HK", "KREONET", "CSTNet/HARNET"),
        ("Jacksonville, US", "RNP", "Internet2/AtlanticWave"),
        ("Jeddah, SA", "GEANT/KREONET", "KAUST"),
        ("Lisbon, PT", "GEANT/RNP", "RedCLARA"),
        ("London, GB", "GEANT/WACREN", "AfricaConnect"),
        ("Madrid, ES", "GEANT/RNP", "RedCLARA"),
        ("McLean, US", "BRIDGES", "Internet2/WIX"),
        ("Paris, FR", "GEANT", "SWITCH"),
        ("Seattle, US", "KREONET", "Internet2/PacificWave"),
        ("Singapore, SG", "GEANT/KREONET", "SingAREN"),
    ]
}

/// Appendix D: the commercial NSPs offering SCION connectivity.
pub fn nsps() -> Vec<&'static str> {
    vec![
        "Anapaya",
        "Axpo Systems",
        "BICS",
        "BSO Network Solutions",
        "British Telecom (BT)",
        "Celeste",
        "COLT",
        "Cyberlink",
        "Everyware",
        "GEANT",
        "Iristel / Karrier One",
        "KREONET",
        "Litecom",
        "LG U+",
        "Megaport",
        "Odido",
        "Proximus Luxembourg",
        "RNP",
        "Sunrise",
        "Swisscom",
        "SWITCH",
        "Varity BV",
        "VTX Services",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_orchestrator::effort::EffortModel;

    #[test]
    fn timeline_is_chronological() {
        let tl = deployment_timeline();
        assert!(tl.len() >= 20);
        for w in tl.windows(2) {
            assert!(
                w[0].month <= w[1].month,
                "{} after {}",
                w[0].name,
                w[1].name
            );
        }
        assert_eq!(tl[0].name, "GEANT");
    }

    #[test]
    fn effort_declines_for_comparable_setups() {
        // The Fig. 3 shape: later deployments of the same kind cost less.
        let tl = deployment_timeline();
        let efforts = EffortModel::default().evaluate(&tl);
        let find = |name: &str| {
            tl.iter()
                .position(|e| e.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        // Core buildouts: GEANT >> KISTI HK/STL.
        assert!(efforts[find("GEANT")] > 3.0 * efforts[find("KISTI HK")]);
        // Single-network VLANs: SWITCH (first) > Demokritos (later).
        assert!(efforts[find("SWITCH")] > efforts[find("Demokritos")]);
        // Reuse (CCDCoE) is among the cheapest of all.
        let ccdcoe = efforts[find("CCDCoE")];
        let cheaper = efforts.iter().filter(|&&e| e < ccdcoe).count();
        assert!(cheaper <= 2, "CCDCoE should be near-minimal effort");
    }

    #[test]
    fn hardware_sites_cost_more_than_twins() {
        let tl = deployment_timeline();
        let efforts = EffortModel::default().evaluate(&tl);
        let find = |name: &str| tl.iter().position(|e| e.name == name).unwrap();
        // KAUST (hardware delivery) vs Demokritos (same type, no hardware,
        // earlier but already discounted).
        assert!(efforts[find("KAUST")] > efforts[find("Demokritos")] * 0.9);
    }

    #[test]
    fn table1_complete() {
        let pops = pops_table1();
        assert_eq!(pops.len(), 16);
        assert!(pops.iter().any(|(city, _, _)| city.starts_with("Jeddah")));
    }

    #[test]
    fn over_20_nsps() {
        assert!(nsps().len() >= 20, "Appendix D: 20+ NSPs");
    }
}
