//! Parameterized synthetic topology generation for the scale observatory.
//!
//! The fixed SCIERA inventory ([`crate::links`]) tops out at a few dozen
//! ASes — enough to reproduce the paper's figures, far too small to ask
//! *where the implementation melts first* as the network grows. This
//! module grows structurally similar topologies to any size:
//!
//! * A configurable number of **ISDs**, each with a small core (the
//!   NREN-backbone analogue) meshed by preferential attachment, so core
//!   degree is skewed the way real transit cores are.
//! * An **inter-ISD core ring plus random chords**, mirroring how the
//!   SCIERA ISD reaches the production ISD over a handful of core links.
//! * Non-core ASes attached **preferentially** (Barabási–Albert style) to
//!   existing intra-ISD nodes over parent–child links, producing the
//!   heavy-tailed customer-cone distribution of the real Internet while
//!   staying a DAG (new ASes only attach to older ones).
//! * A **depth cap** on the customer hierarchy so up-segment length — and
//!   with it beacon size and combination cost — stays bounded as N grows,
//!   like real SCION deployments (ISSUE: provider chains rarely exceed
//!   five or six ASes).
//! * Intra-ISD **peering sprinkles** between non-core ASes, exercising the
//!   shortcut/peering machinery of the combiner at scale.
//!
//! Latencies come from the same fiber model as the real inventory: every
//! ISD gets a synthetic geographic center, every AS a PoP scattered around
//! it, and link latency follows the great-circle distance through fiber.
//! Generation is fully deterministic in the seed (SplitMix64), so a sweep
//! at N = 5000 is reproducible bit-for-bit.

use scion_control::graph::{ControlGraph, LinkType};
use scion_proto::addr::{Asn, IsdAsn};

use crate::geo::{fiber_latency_ms, Pop};
use crate::links::{BuiltLink, BuiltTopology, LinkSpec};

/// Parameters of the synthetic topology generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Total number of ASes across all ISDs (minimum: one core per ISD).
    pub n_ases: usize,
    /// Number of isolation domains.
    pub n_isds: usize,
    /// Core ASes per ISD (the per-ISD backbone).
    pub cores_per_isd: usize,
    /// Barabási–Albert attachment parameter: parent links each new
    /// non-core AS tries to establish (clamped to what exists).
    pub ba_m: usize,
    /// Fraction of ASes that get one extra intra-ISD peering link.
    pub peer_fraction: f64,
    /// Maximum depth of the customer hierarchy below the core (a node at
    /// `max_depth` accepts no children). Bounds up-segment length.
    pub max_depth: usize,
    /// PRNG seed; equal seeds yield identical topologies.
    pub seed: u64,
}

impl SynthConfig {
    /// A preset scaled for `n` ASes: more ISDs and cores as the network
    /// grows, attachment and peering parameters held constant so the
    /// degree distribution stays comparable across sweep points.
    pub fn sized(n: usize) -> SynthConfig {
        let n_isds = match n {
            0..=199 => 2,
            200..=599 => 3,
            600..=1499 => 4,
            _ => 5,
        };
        SynthConfig {
            n_ases: n,
            n_isds,
            cores_per_isd: if n < 600 { 3 } else { 4 },
            ba_m: 2,
            peer_fraction: 0.05,
            max_depth: 5,
            seed: 0x5C1E_12A0 ^ n as u64,
        }
    }
}

/// SplitMix64: tiny, fast, full-period deterministic PRNG. The vendored
/// `rand` stand-in is not a dependency of this crate; the generator only
/// needs reproducible uniform draws, which SplitMix64 provides in ten
/// lines.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct SynthNode {
    ia: IsdAsn,
    core: bool,
    depth: usize,
    pop: Pop,
}

/// Builds a synthetic topology per `cfg`. The returned [`BuiltTopology`]
/// is interchangeable with [`crate::links::build_control_graph`]'s: a
/// validated [`ControlGraph`] plus the link inventory with assigned
/// interface IDs, ready for beaconing and data-plane simulation.
///
/// Panics if `cfg` is degenerate (zero ISDs or zero cores per ISD).
pub fn synthesize(cfg: &SynthConfig) -> BuiltTopology {
    assert!(cfg.n_isds > 0 && cfg.cores_per_isd > 0, "degenerate config");
    let mut rng = SplitMix64::new(cfg.seed);
    let n = cfg.n_ases.max(cfg.n_isds * cfg.cores_per_isd);

    // ---- Nodes: round-robin ISD assignment, cores first per ISD -------
    // Each ISD gets a geographic center; member PoPs scatter around it so
    // intra-ISD links are short and inter-ISD core links are long-haul,
    // like the real deployment.
    let centers: Vec<(f64, f64)> = (0..cfg.n_isds)
        .map(|_| (rng.f64() * 110.0 - 50.0, rng.f64() * 360.0 - 180.0))
        .collect();
    let mut nodes: Vec<SynthNode> = Vec::with_capacity(n);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); cfg.n_isds];
    for i in 0..n {
        let isd_block = i % cfg.n_isds;
        let rank = i / cfg.n_isds; // position within its ISD
        let (clat, clon) = centers[isd_block];
        let pop = Pop {
            city: "synthetic",
            lat: (clat + rng.f64() * 16.0 - 8.0).clamp(-80.0, 80.0),
            lon: clon + rng.f64() * 16.0 - 8.0,
        };
        let ia = IsdAsn::new(
            10 + isd_block as u16,
            Asn::new(0x2_0001_0000 + i as u64).expect("synthetic ASN in range"),
        );
        members[isd_block].push(nodes.len());
        nodes.push(SynthNode {
            ia,
            core: rank < cfg.cores_per_isd,
            depth: 0,
            pop,
        });
    }

    let mut graph = ControlGraph::new();
    for node in &nodes {
        graph.add_as(node.ia, node.core);
    }

    let mut specs: Vec<LinkSpec> = Vec::new();
    fn link(
        nodes: &[SynthNode],
        specs: &mut Vec<LinkSpec>,
        a: usize,
        b: usize,
        lt: LinkType,
        label: String,
    ) {
        let ind = if lt == LinkType::Core { 1.25 } else { 1.6 };
        specs.push(LinkSpec {
            a: nodes[a].ia,
            b: nodes[b].ia,
            link_type: lt,
            latency_ms: fiber_latency_ms(nodes[a].pop, nodes[b].pop, ind),
            label,
        });
    }

    // ---- Per-ISD core mesh (preferential attachment over cores) -------
    // `targets` repeats a node once per incident core link, so drawing
    // uniformly from it is degree-proportional — the BA trick.
    for (isd, isd_members) in members.iter().enumerate().take(cfg.n_isds) {
        let cores: Vec<usize> = isd_members
            .iter()
            .copied()
            .filter(|&i| nodes[i].core)
            .collect();
        let mut targets: Vec<usize> = vec![cores[0]];
        for (k, &c) in cores.iter().enumerate().skip(1) {
            let want = k.min(cfg.ba_m.max(1));
            let mut picked: Vec<usize> = Vec::new();
            let mut tries = 0;
            while picked.len() < want && tries < 32 {
                tries += 1;
                let t = targets[rng.below(targets.len())];
                if t != c && !picked.contains(&t) {
                    picked.push(t);
                }
            }
            if picked.is_empty() {
                picked.push(cores[k - 1]);
            }
            for t in picked {
                link(
                    &nodes,
                    &mut specs,
                    c,
                    t,
                    LinkType::Core,
                    format!("synth core isd{isd}"),
                );
                targets.push(t);
                targets.push(c);
            }
        }
    }

    // ---- Inter-ISD core ring + chords ----------------------------------
    if cfg.n_isds > 1 {
        let first_core = |isd: usize| -> usize {
            members[isd]
                .iter()
                .copied()
                .find(|&i| nodes[i].core)
                .unwrap()
        };
        for isd in 0..cfg.n_isds {
            let next = (isd + 1) % cfg.n_isds;
            if cfg.n_isds == 2 && isd == 1 {
                break; // avoid doubling the single ring edge
            }
            link(
                &nodes,
                &mut specs,
                first_core(isd),
                first_core(next),
                LinkType::Core,
                format!("synth inter-isd ring {isd}-{next}"),
            );
        }
        // Chords make the inter-ISD core 2-connected beyond the ring.
        for _ in 0..cfg.n_isds / 2 {
            let a = rng.below(cfg.n_isds);
            let b = rng.below(cfg.n_isds);
            if a == b {
                continue;
            }
            let ca = members[a][rng.below(cfg.cores_per_isd)];
            let cb = members[b][rng.below(cfg.cores_per_isd)];
            if nodes[ca].core && nodes[cb].core {
                link(
                    &nodes,
                    &mut specs,
                    ca,
                    cb,
                    LinkType::Core,
                    format!("synth chord {a}-{b}"),
                );
            }
        }
    }

    // ---- Customer hierarchy: preferential child attachment -------------
    // Per-ISD degree-weighted target lists again; parents must sit above
    // the depth cap so the provider chain below the core stays short.
    // Children only attach to already-wired nodes (old → new), so the
    // customer hierarchy is acyclic by construction.
    for (isd, isd_members) in members.iter().enumerate().take(cfg.n_isds) {
        let mut targets: Vec<usize> = isd_members
            .iter()
            .copied()
            .filter(|&i| nodes[i].core)
            .collect();
        let leaves: Vec<usize> = isd_members
            .iter()
            .copied()
            .filter(|&i| !nodes[i].core)
            .collect();
        for &c in &leaves {
            let want = cfg.ba_m.max(1);
            let mut parents: Vec<usize> = Vec::new();
            let mut tries = 0;
            while parents.len() < want && tries < 64 {
                tries += 1;
                let t = targets[rng.below(targets.len())];
                if t != c && !parents.contains(&t) && nodes[t].depth < cfg.max_depth {
                    parents.push(t);
                }
            }
            if parents.is_empty() {
                // Degenerate draw streak: fall back to a core, depth 1.
                parents.push(*isd_members.iter().find(|&&i| nodes[i].core).unwrap());
            }
            // Depth is the max over parents: every upward walk strictly
            // decreases it, so no provider chain exceeds max_depth.
            nodes[c].depth = parents.iter().map(|&p| nodes[p].depth).max().unwrap() + 1;
            for p in parents {
                link(
                    &nodes,
                    &mut specs,
                    p,
                    c,
                    LinkType::Child,
                    format!("synth child isd{isd}"),
                );
                targets.push(p);
                targets.push(c);
            }
        }
        // Peering sprinkles between non-core members.
        let n_peers = (leaves.len() as f64 * cfg.peer_fraction) as usize;
        for _ in 0..n_peers {
            let a = leaves[rng.below(leaves.len())];
            let b = leaves[rng.below(leaves.len())];
            if a != b && nodes[a].ia != nodes[b].ia {
                link(
                    &nodes,
                    &mut specs,
                    a,
                    b,
                    LinkType::Peer,
                    format!("synth peer isd{isd}"),
                );
            }
        }
    }

    let mut links = Vec::with_capacity(specs.len());
    for spec in specs {
        let (ifid_a, ifid_b) = graph
            .connect(spec.a, spec.b, spec.link_type)
            .expect("generator references known ASes");
        links.push(BuiltLink {
            spec,
            ifid_a,
            ifid_b,
        });
    }
    graph
        .validate()
        .expect("synthetic topology is structurally valid");
    BuiltTopology { graph, links }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_presets_scale_isds() {
        assert_eq!(SynthConfig::sized(100).n_isds, 2);
        assert_eq!(SynthConfig::sized(1000).n_isds, 4);
        assert_eq!(SynthConfig::sized(5000).n_isds, 5);
    }

    #[test]
    fn generator_is_deterministic_in_seed() {
        let cfg = SynthConfig::sized(120);
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        assert_eq!(a.graph.as_count(), b.graph.as_count());
        assert_eq!(a.links.len(), b.links.len());
        for (la, lb) in a.links.iter().zip(&b.links) {
            assert_eq!(la.spec, lb.spec);
        }
        let mut cfg2 = cfg;
        cfg2.seed ^= 1;
        let c = synthesize(&cfg2);
        assert!(
            a.links.iter().zip(&c.links).any(|(x, y)| x.spec != y.spec),
            "different seeds should produce different wiring"
        );
    }

    #[test]
    fn generated_topology_validates_at_several_sizes() {
        for n in [30, 100, 400] {
            let built = synthesize(&SynthConfig::sized(n));
            assert_eq!(built.graph.as_count(), n);
            // validate() already ran inside synthesize; spot-check shape.
            let cores = built.graph.core_ases().len();
            let cfg = SynthConfig::sized(n);
            assert_eq!(cores, cfg.n_isds * cfg.cores_per_isd);
            assert!(built.links.len() >= n - 1, "must at least span the nodes");
        }
    }

    #[test]
    fn depth_cap_bounds_customer_chains() {
        let cfg = SynthConfig::sized(300);
        let built = synthesize(&cfg);
        // Walk parent links upward from every leaf; chain length must not
        // exceed max_depth.
        let g = &built.graph;
        for node in g.ases() {
            let mut depth = 0;
            let mut cur = node.ia;
            loop {
                let Some(up) = g
                    .as_node(cur)
                    .unwrap()
                    .interfaces_of_type(LinkType::Parent)
                    .next()
                else {
                    break;
                };
                cur = up.neighbor;
                depth += 1;
                assert!(
                    depth <= cfg.max_depth,
                    "customer chain exceeds max_depth at {}",
                    node.ia
                );
            }
        }
    }

    #[test]
    fn beaconing_converges_on_synthetic_topology() {
        use scion_control::beacon::{BeaconConfig, BeaconEngine};
        let built = synthesize(&SynthConfig::sized(60));
        let mut engine = BeaconEngine::new(&built.graph, 1_700_000_000, BeaconConfig::default());
        let store = engine.run().expect("beaconing succeeds");
        for node in built.graph.ases() {
            if !node.core {
                assert!(
                    !store.up_segments(node.ia).is_empty(),
                    "{} never learned an up-segment",
                    node.ia
                );
            }
        }
    }
}
