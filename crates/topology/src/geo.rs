//! PoP geography and fiber latency.
//!
//! Latencies in the simulation are not free parameters: they derive from
//! the great-circle distance between the PoP cities of Table 1 at the
//! speed of light in fiber (≈ 2×10⁵ km/s), times a route-indirectness
//! factor (terrestrial fiber ≈ 1.4× geodesic; submarine routes more).

use serde::{Deserialize, Serialize};

/// A point of presence (city).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pop {
    /// City label as in Table 1.
    pub city: &'static str,
    /// Latitude, degrees.
    pub lat: f64,
    /// Longitude, degrees.
    pub lon: f64,
}

macro_rules! pops {
    ($($name:ident => ($city:expr, $lat:expr, $lon:expr);)*) => {
        $(
            #[doc = concat!("PoP: ", $city, ".")]
            pub const $name: Pop = Pop { city: $city, lat: $lat, lon: $lon };
        )*
        /// All defined PoPs.
        pub fn all_pops() -> Vec<Pop> {
            vec![$($name),*]
        }
    };
}

pops! {
    AMSTERDAM => ("Amsterdam", 52.37, 4.90);
    ASHBURN => ("Ashburn", 39.04, -77.49);
    ATHENS => ("Athens", 37.98, 23.73);
    CAMPO_GRANDE => ("Campo Grande", -20.46, -54.62);
    CHARLOTTESVILLE => ("Charlottesville", 38.03, -78.48);
    CHICAGO => ("Chicago", 41.88, -87.63);
    DAEJEON => ("Daejeon", 36.35, 127.38);
    DELFT => ("Delft", 52.01, 4.36);
    FRANKFURT => ("Frankfurt", 50.11, 8.68);
    GENEVA => ("Geneva", 46.20, 6.14);
    HONG_KONG => ("Hong Kong", 22.32, 114.17);
    JACKSONVILLE => ("Jacksonville", 30.33, -81.66);
    JEDDAH => ("Jeddah", 21.49, 39.19);
    LAGOS => ("Lagos", 6.52, 3.38);
    LISBON => ("Lisbon", 38.72, -9.14);
    LONDON => ("London", 51.51, -0.13);
    MADRID => ("Madrid", 40.42, -3.70);
    MAGDEBURG => ("Magdeburg", 52.13, 11.63);
    MCLEAN => ("McLean", 38.93, -77.18);
    PARIS => ("Paris", 48.86, 2.35);
    PRINCETON => ("Princeton", 40.34, -74.66);
    SAO_PAULO => ("Sao Paulo", -23.55, -46.63);
    SEATTLE => ("Seattle", 47.61, -122.33);
    SEOUL => ("Seoul", 37.57, 126.98);
    SINGAPORE => ("Singapore", 1.35, 103.82);
    TALLINN => ("Tallinn", 59.44, 24.75);
    ZURICH => ("Zurich", 47.37, 8.54);
}

/// Speed of light in fiber, km/s.
pub const FIBER_KM_PER_S: f64 = 200_000.0;

/// Default terrestrial route-indirectness factor over the geodesic.
pub const TERRESTRIAL_INDIRECTNESS: f64 = 1.4;

/// Great-circle distance in kilometres (haversine).
pub fn great_circle_km(a: Pop, b: Pop) -> f64 {
    let to_rad = |d: f64| d.to_radians();
    let (lat1, lon1, lat2, lon2) = (to_rad(a.lat), to_rad(a.lon), to_rad(b.lat), to_rad(b.lon));
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * 6371.0 * h.sqrt().asin()
}

/// One-way fiber latency in milliseconds for a route between two PoPs with
/// a given indirectness factor, plus a small fixed per-link equipment
/// delay.
pub fn fiber_latency_ms(a: Pop, b: Pop, indirectness: f64) -> f64 {
    great_circle_km(a, b) * indirectness / FIBER_KM_PER_S * 1000.0 + 0.3
}

/// Round-trip fiber latency using the default terrestrial factor.
pub fn fiber_rtt_ms(a: Pop, b: Pop) -> f64 {
    2.0 * fiber_latency_ms(a, b, TERRESTRIAL_INDIRECTNESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances_roughly_right() {
        // Amsterdam–Singapore ≈ 10,500 km.
        let d = great_circle_km(AMSTERDAM, SINGAPORE);
        assert!((10_000.0..11_200.0).contains(&d), "AMS-SG {d} km");
        // Chicago–Seattle ≈ 2,800 km.
        let d2 = great_circle_km(CHICAGO, SEATTLE);
        assert!((2_600.0..3_100.0).contains(&d2), "CHI-SEA {d2} km");
        // Zero distance to self.
        assert!(great_circle_km(PARIS, PARIS) < 1e-9);
    }

    #[test]
    fn latency_scales_with_distance() {
        let short = fiber_latency_ms(AMSTERDAM, PARIS, 1.4);
        let long = fiber_latency_ms(AMSTERDAM, SINGAPORE, 1.4);
        assert!(short < 6.0, "AMS-PAR one-way {short} ms");
        assert!((60.0..90.0).contains(&long), "AMS-SG one-way {long} ms");
        assert!(long > 10.0 * short);
    }

    #[test]
    fn transatlantic_rtt_plausible() {
        // AMS–Ashburn RTT at 1.4 indirectness ≈ 80–95 ms (real ~80–90).
        let rtt = fiber_rtt_ms(AMSTERDAM, ASHBURN);
        assert!((70.0..110.0).contains(&rtt), "transatlantic RTT {rtt} ms");
    }

    #[test]
    fn symmetry() {
        assert_eq!(
            great_circle_km(DAEJEON, SINGAPORE),
            great_circle_km(SINGAPORE, DAEJEON)
        );
    }

    #[test]
    fn all_pops_distinct_cities() {
        let pops = all_pops();
        let mut cities: Vec<&str> = pops.iter().map(|p| p.city).collect();
        let n = cities.len();
        cities.sort();
        cities.dedup();
        assert_eq!(cities.len(), n);
        assert!(n >= 25);
    }
}
