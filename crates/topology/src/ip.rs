//! The commercial-Internet (BGP) baseline.
//!
//! §5.4 compares SCION RTTs against "ICMP echo pings over the IP Internet,
//! which follows the path defined by BGP". We reproduce that baseline with
//! a small commercial topology: every SCIERA site attaches to regional
//! transit hubs, hubs interconnect along the commercial backbone, and
//! routes are selected by *fewest AS hops* with latency only as a
//! tie-break — BGP's actual behaviour, and the reason IP latency is
//! sometimes far from geodesic. Notably, the model reflects §3.2 / App. B:
//! "the current BGP-based Internet routes the majority of traffic through
//! Pacific and Atlantic links", so Asia–Europe commercial traffic hairpins
//! through the US while SCIERA's direct Singapore–Amsterdam circuits do
//! not.

use std::collections::{BinaryHeap, HashMap};

use scion_proto::addr::IsdAsn;

use crate::ases::all_ases;
use crate::geo::{self, fiber_latency_ms, Pop};

/// A node of the commercial graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum IpNode {
    /// A SCIERA site (by AS).
    Site(IsdAsn),
    /// A commercial transit hub.
    Hub(u8),
}

const US_EAST: IpNode = IpNode::Hub(0);
const US_WEST: IpNode = IpNode::Hub(1);
const EU_WEST: IpNode = IpNode::Hub(2);
const EU_CENTRAL: IpNode = IpNode::Hub(3);
const ASIA_SE: IpNode = IpNode::Hub(4);
const ASIA_NE: IpNode = IpNode::Hub(5);
const LATAM: IpNode = IpNode::Hub(6);
const MEA: IpNode = IpNode::Hub(7);
const AFRICA: IpNode = IpNode::Hub(8);

fn hub_pop(h: IpNode) -> Pop {
    match h {
        IpNode::Hub(0) => geo::ASHBURN,
        IpNode::Hub(1) => geo::SEATTLE,
        IpNode::Hub(2) => geo::LONDON,
        IpNode::Hub(3) => geo::FRANKFURT,
        IpNode::Hub(4) => geo::SINGAPORE,
        IpNode::Hub(5) => geo::SEOUL,
        IpNode::Hub(6) => geo::SAO_PAULO,
        IpNode::Hub(7) => geo::JEDDAH,
        IpNode::Hub(8) => geo::LAGOS,
        _ => unreachable!("not a hub"),
    }
}

/// The commercial hubs serving a geographic location.
fn hubs_for(pop: Pop) -> &'static [IpNode] {
    if pop.lon < -30.0 {
        // The Americas.
        if pop.lat < 10.0 {
            &[LATAM]
        } else if pop.lon < -100.0 {
            &[US_WEST]
        } else {
            &[US_EAST]
        }
    } else if pop.lon < 35.0 {
        // Europe / West Africa.
        if pop.lat > 35.0 {
            &[EU_CENTRAL, EU_WEST]
        } else {
            &[AFRICA]
        }
    } else if pop.lon < 60.0 {
        &[MEA]
    } else if pop.lat > 20.0 {
        &[ASIA_NE]
    } else {
        &[ASIA_SE]
    }
}

/// The baseline graph with hop-count routing.
pub struct IpBaseline {
    adj: HashMap<IpNode, Vec<(IpNode, f64)>>,
}

impl Default for IpBaseline {
    fn default() -> Self {
        Self::new()
    }
}

impl IpBaseline {
    /// Builds the commercial topology for all SCIERA sites.
    pub fn new() -> Self {
        let mut b = IpBaseline {
            adj: HashMap::new(),
        };
        // Commercial backbone. South-East Asia reaches Europe over the
        // Suez route (via the MEA hub), but North-East Asia's commercial
        // transit to Europe crosses the Pacific and Atlantic — the
        // "majority of traffic through Pacific and Atlantic links" of
        // App. B.
        let backbone = [
            (US_EAST, US_WEST, 1.2),
            (US_EAST, EU_WEST, 1.25),
            (EU_WEST, EU_CENTRAL, 1.3),
            (US_WEST, ASIA_NE, 1.3),
            (US_WEST, ASIA_SE, 1.3),
            (ASIA_NE, ASIA_SE, 1.3),
            (ASIA_SE, MEA, 1.35),
            (US_EAST, LATAM, 1.35),
            (EU_WEST, LATAM, 1.4),
            (EU_WEST, MEA, 1.35),
            (EU_WEST, AFRICA, 1.35),
        ];
        for (x, y, f) in backbone {
            let ms = fiber_latency_ms(hub_pop(x), hub_pop(y), f);
            b.edge(x, y, ms);
        }
        // Site attachments: each site homes onto the transit hub(s) of its
        // *geographic* location (a KREONET router in Amsterdam buys
        // transit in Amsterdam, whatever its administrative region) with a
        // last-mile + access-network cost.
        for a in all_ases() {
            for &h in hubs_for(a.pop) {
                let ms = fiber_latency_ms(a.pop, hub_pop(h), 1.35) + 0.5;
                b.edge(IpNode::Site(a.ia), h, ms);
            }
        }
        b
    }

    fn edge(&mut self, x: IpNode, y: IpNode, ms: f64) {
        self.adj.entry(x).or_default().push((y, ms));
        self.adj.entry(y).or_default().push((x, ms));
    }

    /// BGP-style route lookup: minimise hop count, tie-break on latency.
    /// Returns the one-way latency in ms, or `None` if unreachable.
    pub fn one_way_ms(&self, from: IsdAsn, to: IsdAsn) -> Option<f64> {
        if from == to {
            return Some(0.1);
        }
        let src = IpNode::Site(from);
        let dst = IpNode::Site(to);
        // Dijkstra over (hops, latency·µs) lexicographic cost.
        let mut best: HashMap<IpNode, (u32, u64)> = HashMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u64, IpNode)>> = BinaryHeap::new();
        heap.push(std::cmp::Reverse((0, 0, src)));
        best.insert(src, (0, 0));
        while let Some(std::cmp::Reverse((hops, lat_us, node))) = heap.pop() {
            if node == dst {
                return Some(lat_us as f64 / 1000.0);
            }
            if best
                .get(&node)
                .map(|&(h, l)| (h, l) < (hops, lat_us))
                .unwrap_or(false)
            {
                continue;
            }
            for &(next, ms) in self.adj.get(&node).into_iter().flatten() {
                let cand = (hops + 1, lat_us + (ms * 1000.0) as u64);
                if best.get(&next).map(|&(h, l)| cand < (h, l)).unwrap_or(true) {
                    best.insert(next, cand);
                    heap.push(std::cmp::Reverse((cand.0, cand.1, next)));
                }
            }
        }
        None
    }

    /// Round-trip time over the BGP baseline, ms.
    pub fn rtt_ms(&self, a: IsdAsn, b: IsdAsn) -> Option<f64> {
        Some(self.one_way_ms(a, b)? + self.one_way_ms(b, a)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_proto::addr::ia;

    #[test]
    fn all_site_pairs_reachable() {
        let ip = IpBaseline::new();
        let ases = all_ases();
        for x in &ases {
            for y in &ases {
                assert!(
                    ip.rtt_ms(x.ia, y.ia).is_some(),
                    "{} -> {} unreachable over IP",
                    x.name,
                    y.name
                );
            }
        }
    }

    #[test]
    fn intra_european_pairs_fast() {
        let ip = IpBaseline::new();
        // OVGU (Magdeburg) to SIDN (Delft) over commercial transit.
        let rtt = ip.rtt_ms(ia("71-2:0:42"), ia("71-1140")).unwrap();
        assert!(rtt < 25.0, "intra-EU IP rtt {rtt} ms");
    }

    #[test]
    fn asia_europe_rides_suez_with_inflation() {
        let ip = IpBaseline::new();
        // Singapore–Amsterdam commercial transit rides the Suez route:
        // inflated vs the ~105 ms geodesic, though without a Pacific
        // hairpin. SCIERA's direct circuits undercut it (§5.4).
        let sg = ip.rtt_ms(ia("71-2:0:3d"), ia("71-2:0:3e")).unwrap();
        assert!((115.0..220.0).contains(&sg), "SG-AMS IP rtt {sg} ms");
        let dj = ip.rtt_ms(ia("71-2:0:3b"), ia("71-2:0:3e")).unwrap();
        assert!(dj > sg, "Korea-AMS {dj} ms should exceed SG-AMS {sg} ms");
    }

    #[test]
    fn transatlantic_reasonable() {
        let ip = IpBaseline::new();
        let rtt = ip.rtt_ms(ia("71-225"), ia("71-20965")).unwrap();
        assert!((60.0..160.0).contains(&rtt), "UVa-GEANT IP rtt {rtt} ms");
    }

    #[test]
    fn self_rtt_near_zero() {
        let ip = IpBaseline::new();
        assert!(ip.rtt_ms(ia("71-225"), ia("71-225")).unwrap() < 1.0);
    }

    #[test]
    fn symmetric() {
        let ip = IpBaseline::new();
        let a = ip.rtt_ms(ia("71-2:0:5c"), ia("71-2:0:3b")).unwrap();
        let b = ip.rtt_ms(ia("71-2:0:3b"), ia("71-2:0:5c")).unwrap();
        assert!((a - b).abs() < 1e-9);
    }
}
