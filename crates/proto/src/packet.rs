//! The SCION common header, address header and whole-packet codec.
//!
//! Layout of the common header (12 bytes):
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-------+-------+---------------------------------------------+
//! |Version|  QoS  |                FlowID (20 bits)             |
//! +-------+-------+---------------+-------------------------------+
//! |    NextHdr    |    HdrLen     |          PayloadLen           |
//! +---------------+---------------+-------------------------------+
//! |    PathType   |DT |DL |ST |SL |             RSV               |
//! +---------------+---------------+-------------------------------+
//! ```
//!
//! `HdrLen` counts 4-byte units covering common + address + path headers.

use serde::{Deserialize, Serialize};

use crate::addr::{HostAddr, IsdAsn, ScionAddr};
use crate::path::ScionPath;
use crate::trace::{TraceContext, HBH_EXT_PROTOCOL, TRACE_EXT_LEN};
use crate::ProtoError;

/// SCION header version implemented here.
pub const VERSION: u8 = 0;
/// Size of the common header in bytes.
pub const COMMON_HDR_LEN: usize = 12;

/// Value of the `NextHdr`/protocol field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum L4Protocol {
    /// UDP/SCION.
    Udp,
    /// SCMP (the SCION control message protocol).
    Scmp,
    /// BFD (not otherwise modelled; accepted on the wire).
    Bfd,
    /// Experimental / other.
    Other(u8),
}

impl L4Protocol {
    /// Wire value (mirrors the IANA-style assignments used by SCION).
    pub fn to_u8(self) -> u8 {
        match self {
            L4Protocol::Udp => 17,
            L4Protocol::Scmp => 202,
            L4Protocol::Bfd => 203,
            L4Protocol::Other(v) => v,
        }
    }

    /// Parses the wire value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            17 => L4Protocol::Udp,
            202 => L4Protocol::Scmp,
            203 => L4Protocol::Bfd,
            other => L4Protocol::Other(other),
        }
    }
}

/// The path type discriminator in the common header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathType {
    /// Empty path (AS-local communication).
    Empty,
    /// The standard SCION path (meta + info + hop fields).
    Scion,
    /// One-hop path for neighbour bootstrap (beaconing to a new link).
    OneHop,
}

impl PathType {
    /// Wire value of the discriminator.
    pub fn to_u8(self) -> u8 {
        match self {
            PathType::Empty => 0,
            PathType::Scion => 1,
            PathType::OneHop => 2,
        }
    }

    /// Parses the wire value of the discriminator.
    pub fn from_u8(v: u8) -> Result<Self, ProtoError> {
        match v {
            0 => Ok(PathType::Empty),
            1 => Ok(PathType::Scion),
            2 => Ok(PathType::OneHop),
            other => Err(ProtoError::InvalidField {
                field: "path type",
                detail: format!("unknown path type {other}"),
            }),
        }
    }
}

/// The data-plane path carried in a packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataPlanePath {
    /// No path: source and destination are in the same AS.
    Empty,
    /// A standard SCION path.
    Scion(ScionPath),
    /// A one-hop path: an info field plus first hop field, with space for
    /// the second hop field filled in by the ingress border router. Used by
    /// beaconing over not-yet-announced links.
    OneHop {
        /// The (single) info field; always in construction direction.
        info: crate::path::InfoField,
        /// Hop field of the sending AS.
        first_hop: crate::path::HopField,
        /// Hop field of the receiving AS (zeroed until filled by ingress BR).
        second_hop: crate::path::HopField,
    },
}

impl DataPlanePath {
    /// The discriminator for the common header.
    pub fn path_type(&self) -> PathType {
        match self {
            DataPlanePath::Empty => PathType::Empty,
            DataPlanePath::Scion(_) => PathType::Scion,
            DataPlanePath::OneHop { .. } => PathType::OneHop,
        }
    }

    /// Serialised length.
    pub fn wire_len(&self) -> usize {
        match self {
            DataPlanePath::Empty => 0,
            DataPlanePath::Scion(p) => p.wire_len(),
            DataPlanePath::OneHop { .. } => {
                crate::path::INFO_FIELD_LEN + 2 * crate::path::HOP_FIELD_LEN
            }
        }
    }

    fn write(&self, out: &mut Vec<u8>) {
        match self {
            DataPlanePath::Empty => {}
            DataPlanePath::Scion(p) => p.write(out),
            DataPlanePath::OneHop {
                info,
                first_hop,
                second_hop,
            } => {
                out.extend_from_slice(&info.to_bytes());
                out.extend_from_slice(&first_hop.to_bytes());
                out.extend_from_slice(&second_hop.to_bytes());
            }
        }
    }

    fn parse(ty: PathType, buf: &[u8]) -> Result<Self, ProtoError> {
        match ty {
            PathType::Empty => Ok(DataPlanePath::Empty),
            PathType::Scion => Ok(DataPlanePath::Scion(ScionPath::parse(buf)?)),
            PathType::OneHop => {
                let needed = crate::path::INFO_FIELD_LEN + 2 * crate::path::HOP_FIELD_LEN;
                crate::need("one-hop path", buf, needed)?;
                Ok(DataPlanePath::OneHop {
                    info: crate::path::InfoField::parse(buf)?,
                    first_hop: crate::path::HopField::parse(&buf[8..])?,
                    second_hop: crate::path::HopField::parse(&buf[20..])?,
                })
            }
        }
    }
}

/// A complete SCION packet (headers + L4 payload bytes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScionPacket {
    /// Traffic class (QoS byte).
    pub qos: u8,
    /// Flow identifier (20 bits used).
    pub flow_id: u32,
    /// Layer-4 protocol of the payload.
    pub next_hdr: L4Protocol,
    /// Destination endpoint.
    pub dst: ScionAddr,
    /// Source endpoint.
    pub src: ScionAddr,
    /// The forwarding path.
    pub path: DataPlanePath,
    /// L4 payload (e.g. a serialised UDP/SCION or SCMP message).
    pub payload: Vec<u8>,
    /// Causal trace context, carried as a hop-by-hop extension when set.
    /// Outside the hop-field MACs, so stamping never invalidates a path.
    pub trace: Option<TraceContext>,
}

impl ScionPacket {
    /// Creates a packet with defaults for QoS and flow ID.
    pub fn new(
        src: ScionAddr,
        dst: ScionAddr,
        next_hdr: L4Protocol,
        path: DataPlanePath,
        payload: Vec<u8>,
    ) -> Self {
        ScionPacket {
            qos: 0,
            flow_id: 1,
            next_hdr,
            dst,
            src,
            path,
            payload,
            trace: None,
        }
    }

    /// Length of the address header for this packet.
    fn addr_hdr_len(&self) -> usize {
        16 + self.dst.host.wire_len() + self.src.host.wire_len()
    }

    /// Total serialised header length (common + address + path), bytes.
    pub fn header_len(&self) -> usize {
        COMMON_HDR_LEN + self.addr_hdr_len() + self.path.wire_len()
    }

    /// Serialises the whole packet.
    pub fn encode(&self) -> Result<Vec<u8>, ProtoError> {
        let hdr_len = self.header_len();
        if !hdr_len.is_multiple_of(4) {
            return Err(ProtoError::InvalidField {
                field: "hdr_len",
                detail: format!("header length {hdr_len} not a multiple of 4"),
            });
        }
        if hdr_len / 4 > u8::MAX as usize {
            return Err(ProtoError::InvalidField {
                field: "hdr_len",
                detail: format!("header length {hdr_len} exceeds 1020 bytes"),
            });
        }
        // The trace extension rides in the payload region (after the path
        // header, before L4), so `payload_len` covers it.
        let ext_len = if self.trace.is_some() {
            TRACE_EXT_LEN
        } else {
            0
        };
        if self.payload.len() + ext_len > u16::MAX as usize {
            return Err(ProtoError::InvalidField {
                field: "payload_len",
                detail: format!("payload of {} bytes exceeds 65535", self.payload.len()),
            });
        }
        if self.trace.is_some() && self.next_hdr.to_u8() == HBH_EXT_PROTOCOL {
            return Err(ProtoError::InvalidField {
                field: "next_hdr",
                detail: "cannot nest a hop-by-hop extension inside itself".into(),
            });
        }
        let mut out = Vec::with_capacity(hdr_len + ext_len + self.payload.len());

        // Common header. A present trace context wraps the L4 protocol in
        // the hop-by-hop extension number.
        let w0: u32 =
            ((VERSION as u32) << 28) | ((self.qos as u32) << 20) | (self.flow_id & 0xf_ffff);
        out.extend_from_slice(&w0.to_be_bytes());
        out.push(if self.trace.is_some() {
            HBH_EXT_PROTOCOL
        } else {
            self.next_hdr.to_u8()
        });
        out.push((hdr_len / 4) as u8);
        out.extend_from_slice(&((self.payload.len() + ext_len) as u16).to_be_bytes());
        out.push(self.path.path_type().to_u8());
        let (dt, dl) = self.dst.host.type_len_nibbles();
        let (st, sl) = self.src.host.type_len_nibbles();
        out.push((dt << 6) | (dl << 4) | (st << 2) | sl);
        out.extend_from_slice(&[0, 0]); // RSV

        // Address header.
        out.extend_from_slice(&self.dst.ia.to_u64().to_be_bytes());
        out.extend_from_slice(&self.src.ia.to_u64().to_be_bytes());
        self.dst.host.write(&mut out);
        self.src.host.write(&mut out);

        // Path header.
        self.path.write(&mut out);
        debug_assert_eq!(out.len(), hdr_len);

        if let Some(ctx) = &self.trace {
            out.extend_from_slice(&ctx.encode_ext(self.next_hdr.to_u8()));
        }
        out.extend_from_slice(&self.payload);
        Ok(out)
    }

    /// Parses a packet from the wire.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        crate::need("common header", buf, COMMON_HDR_LEN)?;
        let w0 = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let version = (w0 >> 28) as u8;
        if version != VERSION {
            return Err(ProtoError::InvalidField {
                field: "version",
                detail: format!("unsupported version {version}"),
            });
        }
        let qos = ((w0 >> 20) & 0xff) as u8;
        let flow_id = w0 & 0xf_ffff;
        let next_hdr = L4Protocol::from_u8(buf[4]);
        let hdr_len = buf[5] as usize * 4;
        let payload_len = u16::from_be_bytes([buf[6], buf[7]]) as usize;
        let path_type = PathType::from_u8(buf[8])?;
        let tl = buf[9];
        let (dt, dl, st, sl) = (tl >> 6, (tl >> 4) & 0x3, (tl >> 2) & 0x3, tl & 0x3);

        crate::need("scion packet", buf, hdr_len + payload_len)?;
        if hdr_len < COMMON_HDR_LEN + 16 {
            return Err(ProtoError::InvalidField {
                field: "hdr_len",
                detail: format!("header length {hdr_len} too small"),
            });
        }

        let mut off = COMMON_HDR_LEN;
        let dst_ia = IsdAsn::from_u64(u64::from_be_bytes(buf[off..off + 8].try_into().unwrap()));
        off += 8;
        let src_ia = IsdAsn::from_u64(u64::from_be_bytes(buf[off..off + 8].try_into().unwrap()));
        off += 8;
        let (dst_host, n) = HostAddr::parse(dt, dl, &buf[off..hdr_len])?;
        off += n;
        let (src_host, n) = HostAddr::parse(st, sl, &buf[off..hdr_len])?;
        off += n;

        let path = DataPlanePath::parse(path_type, &buf[off..hdr_len])?;
        let expected_hdr =
            COMMON_HDR_LEN + 16 + dst_host.wire_len() + src_host.wire_len() + path.wire_len();
        if expected_hdr != hdr_len {
            return Err(ProtoError::InvalidField {
                field: "hdr_len",
                detail: format!("declared {hdr_len}, computed {expected_hdr}"),
            });
        }

        // Unwrap a hop-by-hop trace extension from the payload region.
        let mut l4 = &buf[hdr_len..hdr_len + payload_len];
        let (trace, next_hdr) = if next_hdr.to_u8() == HBH_EXT_PROTOCOL {
            let (ctx, real) = TraceContext::decode_ext(l4)?;
            l4 = &l4[TRACE_EXT_LEN..];
            (Some(ctx), L4Protocol::from_u8(real))
        } else {
            (None, next_hdr)
        };

        Ok(ScionPacket {
            qos,
            flow_id,
            next_hdr,
            dst: ScionAddr::new(dst_ia, dst_host),
            src: ScionAddr::new(src_ia, src_host),
            path,
            payload: l4.to_vec(),
            trace,
        })
    }

    /// Builds the reply skeleton: src/dst swapped, path reversed.
    ///
    /// Returns `None` for one-hop paths, which are not reversible without
    /// control-plane involvement.
    pub fn reply_template(&self) -> Option<(ScionAddr, ScionAddr, DataPlanePath)> {
        let path = match &self.path {
            DataPlanePath::Empty => DataPlanePath::Empty,
            DataPlanePath::Scion(p) => DataPlanePath::Scion(p.reversed()),
            DataPlanePath::OneHop { .. } => return None,
        };
        Some((self.dst, self.src, path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ia, HostAddr};
    use crate::path::{HopField, InfoField, ScionPath};

    fn sample_path() -> ScionPath {
        let hf = |ig: u16, eg: u16| HopField {
            ingress_alert: false,
            egress_alert: false,
            exp_time: 63,
            cons_ingress: ig,
            cons_egress: eg,
            mac: [0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff],
        };
        ScionPath::from_segments(vec![(
            InfoField {
                peering: false,
                cons_dir: true,
                seg_id: 7,
                timestamp: 1_700_000_000,
            },
            vec![hf(0, 2), hf(1, 0)],
        )])
        .unwrap()
    }

    fn sample_packet() -> ScionPacket {
        ScionPacket::new(
            ScionAddr::new(ia("71-20965"), HostAddr::v4(10, 0, 0, 1)),
            ScionAddr::new(ia("71-2:0:3b"), HostAddr::v4(10, 0, 0, 2)),
            L4Protocol::Udp,
            DataPlanePath::Scion(sample_path()),
            b"hello sciera".to_vec(),
        )
    }

    #[test]
    fn packet_roundtrip() {
        let p = sample_packet();
        let wire = p.encode().unwrap();
        assert_eq!(ScionPacket::decode(&wire).unwrap(), p);
    }

    #[test]
    fn empty_path_roundtrip() {
        let mut p = sample_packet();
        p.path = DataPlanePath::Empty;
        let wire = p.encode().unwrap();
        assert_eq!(ScionPacket::decode(&wire).unwrap(), p);
    }

    #[test]
    fn one_hop_roundtrip() {
        let mut p = sample_packet();
        let sp = sample_path();
        p.path = DataPlanePath::OneHop {
            info: sp.info[0],
            first_hop: sp.hops[0],
            second_hop: HopField {
                ingress_alert: false,
                egress_alert: false,
                exp_time: 0,
                cons_ingress: 0,
                cons_egress: 0,
                mac: [0; 6],
            },
        };
        let wire = p.encode().unwrap();
        assert_eq!(ScionPacket::decode(&wire).unwrap(), p);
    }

    #[test]
    fn v6_addresses_roundtrip() {
        let mut p = sample_packet();
        p.src.host = HostAddr::V6([1; 16]);
        p.dst.host = HostAddr::V6([2; 16]);
        let wire = p.encode().unwrap();
        assert_eq!(ScionPacket::decode(&wire).unwrap(), p);
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut wire = sample_packet().encode().unwrap();
        wire[0] |= 0xf0;
        assert!(ScionPacket::decode(&wire).is_err());
    }

    #[test]
    fn decode_rejects_truncated() {
        let wire = sample_packet().encode().unwrap();
        for cut in [0, 5, 11, 20, wire.len() - 1] {
            assert!(ScionPacket::decode(&wire[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_inconsistent_hdr_len() {
        let mut wire = sample_packet().encode().unwrap();
        wire[5] += 1; // declare a longer header than the fields occupy
                      // Either a parse failure or a header length mismatch — never a panic.
        assert!(ScionPacket::decode(&wire).is_err());
    }

    #[test]
    fn qos_and_flow_id_preserved() {
        let mut p = sample_packet();
        p.qos = 0xb8;
        p.flow_id = 0xabcde;
        let wire = p.encode().unwrap();
        let q = ScionPacket::decode(&wire).unwrap();
        assert_eq!(q.qos, 0xb8);
        assert_eq!(q.flow_id, 0xabcde);
    }

    #[test]
    fn reply_template_swaps_and_reverses() {
        let p = sample_packet();
        let (src, dst, path) = p.reply_template().unwrap();
        assert_eq!(src, p.dst);
        assert_eq!(dst, p.src);
        match (path, &p.path) {
            (DataPlanePath::Scion(r), DataPlanePath::Scion(orig)) => {
                assert_eq!(r, orig.reversed());
            }
            _ => panic!("wrong path variant"),
        }
    }

    #[test]
    fn traced_packet_roundtrip() {
        let mut p = sample_packet();
        p.trace = Some(crate::trace::TraceContext::root(0x5c1e_7a00).child());
        let wire = p.encode().unwrap();
        let back = ScionPacket::decode(&wire).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.next_hdr, L4Protocol::Udp, "L4 protocol survives");
        assert_eq!(back.payload, p.payload, "extension stripped from payload");
    }

    #[test]
    fn trace_extension_declares_hbh_protocol_on_wire() {
        let mut p = sample_packet();
        p.trace = Some(crate::trace::TraceContext::root(9));
        let wire = p.encode().unwrap();
        assert_eq!(wire[4], crate::trace::HBH_EXT_PROTOCOL);
        // Untraced packets keep the plain L4 number.
        assert_eq!(sample_packet().encode().unwrap()[4], 17);
    }

    #[test]
    fn nested_hbh_rejected() {
        let mut p = sample_packet();
        p.next_hdr = L4Protocol::Other(crate::trace::HBH_EXT_PROTOCOL);
        p.trace = Some(crate::trace::TraceContext::root(1));
        assert!(p.encode().is_err());
    }

    #[test]
    fn l4_protocol_roundtrip() {
        for p in [
            L4Protocol::Udp,
            L4Protocol::Scmp,
            L4Protocol::Bfd,
            L4Protocol::Other(99),
        ] {
            assert_eq!(L4Protocol::from_u8(p.to_u8()), p);
        }
    }
}
