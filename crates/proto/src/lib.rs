//! SCION wire formats and addressing.
//!
//! This crate defines the on-the-wire representation of SCION packets as
//! used by every other layer of the stack, in the spirit of smoltcp's typed
//! packet views: explicit byte layouts, zero surprises, and malformed input
//! surfacing as [`ProtoError`] rather than panics.
//!
//! Modules:
//!
//! * [`addr`] — ISD, AS and ISD-AS addressing, including the `2:0:3b`-style
//!   SCION AS number format the paper uses throughout (e.g. `71-2:0:3b` for
//!   the KISTI Daejeon core).
//! * [`path`] — the SCION path header: path meta, info fields (one per
//!   segment, carrying the chained segment identifier `beta`), and hop
//!   fields (carrying ingress/egress interfaces plus the 6-byte MAC).
//! * [`packet`] — the common and address headers and whole-packet
//!   serialisation.
//! * [`scmp`] — the SCION Control Message Protocol: echo (used by the
//!   measurement campaign of §5.4), external-interface-down and
//!   destination-unreachable notifications.
//! * [`trace`] — the causal trace context: a hop-by-hop extension carrying
//!   a trace id and span chain that border routers advance per hop.
//! * [`udp`] — UDP/SCION, the transport the PAN socket API exposes.
//! * [`encap`] — the IP-UDP "Layer 2.5" underlay encapsulation (§4.3.1)
//!   that lets SCION packets traverse unmodified intra-AS IP networks.
//! * [`wire`] — zero-copy packet views ([`wire::PacketView`]) and in-place
//!   mutation cursors ([`wire::WireCursor`]) over raw frames, the substrate
//!   of the border-router forwarding fast path.
//! * [`chain`] — persistent structurally-shared append chains
//!   ([`chain::Chain`]), the copy-on-extend substrate of beacon
//!   propagation: extending a path prefix appends one node instead of
//!   deep-copying the prefix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod chain;
pub mod encap;
pub mod packet;
pub mod path;
pub mod scmp;
pub mod trace;
pub mod udp;
pub mod wire;

pub use addr::{Asn, HostAddr, IsdAsn, IsdNumber};
pub use packet::ScionPacket;
pub use path::{HopField, InfoField, PathMeta, ScionPath};
pub use trace::TraceContext;
pub use wire::{HeaderOffsets, PacketView, WireCursor};

/// Errors produced while parsing or building wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer is shorter than the format requires.
    Truncated {
        /// What was being parsed.
        what: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A field carried an invalid or unsupported value.
    InvalidField {
        /// Field name.
        field: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A textual address failed to parse.
    AddrParse(String),
    /// Path structure violated an invariant (e.g. too many segments).
    InvalidPath(String),
}

impl core::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtoError::Truncated { what, needed, got } => {
                write!(f, "truncated {what}: need {needed} bytes, got {got}")
            }
            ProtoError::InvalidField { field, detail } => {
                write!(f, "invalid field {field}: {detail}")
            }
            ProtoError::AddrParse(s) => write!(f, "address parse error: {s}"),
            ProtoError::InvalidPath(s) => write!(f, "invalid path: {s}"),
        }
    }
}

impl std::error::Error for ProtoError {}

pub(crate) fn need(what: &'static str, buf: &[u8], needed: usize) -> Result<(), ProtoError> {
    if buf.len() < needed {
        Err(ProtoError::Truncated {
            what,
            needed,
            got: buf.len(),
        })
    } else {
        Ok(())
    }
}
