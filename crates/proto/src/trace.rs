//! Causal trace context carried end to end on SCION packets.
//!
//! Operators of a path-aware network need to answer "where along this path
//! did the latency go" — per-path aggregates alone cannot. The trace
//! context is a tiny hop-by-hop extension: a `trace_id` naming the packet's
//! journey and a span chain (`span_id`/`parent_span_id`/`hop`) that every
//! border router advances as it processes the packet. Routers that share a
//! telemetry flight recorder emit one event per hop carrying the chain, so
//! the full per-hop latency attribution is reconstructable afterwards
//! (`sciera_telemetry::spans`).
//!
//! On the wire the context rides a SCION hop-by-hop extension header
//! (protocol number 200) inserted between the path header and the L4
//! payload, exactly like the router-alert traceroute bits it complements:
//! it is *outside* the hop-field MACs, so stamping a packet never
//! invalidates its path authorisation.

use serde::{Deserialize, Serialize};

use crate::ProtoError;

/// Protocol number of the hop-by-hop extension header (SCION assigns 200).
pub const HBH_EXT_PROTOCOL: u8 = 200;

/// Serialised length of the trace extension, bytes (4-byte aligned).
pub const TRACE_EXT_LEN: usize = 28;

/// The per-packet causal trace context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Identifies one packet's journey end to end.
    pub trace_id: u64,
    /// The current span (this hop's unit of work).
    pub span_id: u64,
    /// The span this one descends from (0 for the root span).
    pub parent_span_id: u64,
    /// Hops traversed so far (0 at the sending host).
    pub hop: u8,
}

/// SplitMix64: cheap, well-distributed span-id derivation. Deterministic so
/// a reconstructed chain can be re-derived and cross-checked.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TraceContext {
    /// The root span of a new trace, stamped by the sending host.
    pub fn root(trace_id: u64) -> Self {
        TraceContext {
            trace_id,
            span_id: splitmix64(trace_id),
            parent_span_id: 0,
            hop: 0,
        }
    }

    /// The next span in the chain, derived by a border router taking
    /// custody of the packet. Span ids are a deterministic function of the
    /// chain so far, which lets offline tooling verify no hop was skipped.
    pub fn child(&self) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: splitmix64(self.span_id ^ u64::from(self.hop).wrapping_add(1)),
            parent_span_id: self.span_id,
            hop: self.hop.saturating_add(1),
        }
    }

    /// Serialises the hop-by-hop extension: the real L4 protocol number
    /// followed by the trace option.
    ///
    /// ```text
    /// [0]     next_hdr (the wrapped L4 protocol)
    /// [1]     ext_len in 4-byte units (= 7)
    /// [2]     hop
    /// [3]     reserved
    /// [4..12]  trace_id      (big endian)
    /// [12..20] span_id
    /// [20..28] parent_span_id
    /// ```
    pub fn encode_ext(&self, next_hdr: u8) -> [u8; TRACE_EXT_LEN] {
        let mut out = [0u8; TRACE_EXT_LEN];
        out[0] = next_hdr;
        out[1] = (TRACE_EXT_LEN / 4) as u8;
        out[2] = self.hop;
        out[4..12].copy_from_slice(&self.trace_id.to_be_bytes());
        out[12..20].copy_from_slice(&self.span_id.to_be_bytes());
        out[20..28].copy_from_slice(&self.parent_span_id.to_be_bytes());
        out
    }

    /// Parses the extension, returning the context and the wrapped L4
    /// protocol number.
    pub fn decode_ext(buf: &[u8]) -> Result<(Self, u8), ProtoError> {
        crate::need("trace extension", buf, TRACE_EXT_LEN)?;
        if buf[1] as usize != TRACE_EXT_LEN / 4 {
            return Err(ProtoError::InvalidField {
                field: "trace ext_len",
                detail: format!("expected {}, got {}", TRACE_EXT_LEN / 4, buf[1]),
            });
        }
        Ok((
            TraceContext {
                trace_id: u64::from_be_bytes(buf[4..12].try_into().unwrap()),
                span_id: u64::from_be_bytes(buf[12..20].try_into().unwrap()),
                parent_span_id: u64::from_be_bytes(buf[20..28].try_into().unwrap()),
                hop: buf[2],
            },
            buf[0],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_roundtrips() {
        let ctx = TraceContext::root(0xdead_beef).child().child();
        let wire = ctx.encode_ext(17);
        let (back, next) = TraceContext::decode_ext(&wire).unwrap();
        assert_eq!(back, ctx);
        assert_eq!(next, 17);
    }

    #[test]
    fn child_chain_links_and_counts() {
        let root = TraceContext::root(42);
        assert_eq!(root.hop, 0);
        assert_eq!(root.parent_span_id, 0);
        let c1 = root.child();
        let c2 = c1.child();
        assert_eq!(c1.parent_span_id, root.span_id);
        assert_eq!(c2.parent_span_id, c1.span_id);
        assert_eq!((c1.hop, c2.hop), (1, 2));
        assert_eq!(c1.trace_id, 42);
        // Deterministic: re-deriving the chain gives the same spans.
        assert_eq!(root.child().span_id, c1.span_id);
        // Distinct traces produce distinct span chains.
        assert_ne!(TraceContext::root(43).span_id, root.span_id);
    }

    #[test]
    fn decode_rejects_truncated_and_bad_len() {
        assert!(TraceContext::decode_ext(&[0; 10]).is_err());
        let mut wire = TraceContext::root(1).encode_ext(17);
        wire[1] = 3;
        assert!(TraceContext::decode_ext(&wire).is_err());
    }
}
