//! The SCION path header.
//!
//! A standard SCION path consists of a 4-byte *path meta* header, up to
//! three *info fields* (one per path segment) and up to 64 *hop fields*.
//! The end host assembles this header from the path segments it fetched
//! from the control plane and embeds it in every packet; border routers
//! only read it, verify the current hop field's MAC, and advance the
//! pointers.
//!
//! Wire layout (big endian throughout):
//!
//! ```text
//! PathMeta (4 B):  CurrINF(2b) CurrHF(6b) RSV(6b) Seg0Len(6b) Seg1Len(6b) Seg2Len(6b)
//! InfoField (8 B): Flags(1) RSV(1) SegID(2) Timestamp(4)
//! HopField (12 B): Flags(1) ExpTime(1) ConsIngress(2) ConsEgress(2) MAC(6)
//! ```

use serde::{Deserialize, Serialize};

use crate::ProtoError;

/// Maximum number of segments in one path.
pub const MAX_SEGMENTS: usize = 3;
/// Maximum number of hop fields in one path.
pub const MAX_HOPS: usize = 64;
/// Serialised size of an info field.
pub const INFO_FIELD_LEN: usize = 8;
/// Serialised size of a hop field.
pub const HOP_FIELD_LEN: usize = 12;
/// Serialised size of the path meta header.
pub const PATH_META_LEN: usize = 4;

/// Path meta header: current pointers and per-segment hop counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PathMeta {
    /// Index of the info field for the segment currently being traversed.
    pub curr_inf: u8,
    /// Index of the hop field currently being traversed (global index).
    pub curr_hf: u8,
    /// Number of hop fields in each segment; zero marks an absent segment.
    pub seg_len: [u8; MAX_SEGMENTS],
}

impl PathMeta {
    /// Total number of hop fields.
    pub fn total_hops(&self) -> usize {
        self.seg_len.iter().map(|&l| l as usize).sum()
    }

    /// Number of present segments (prefix of non-zero lengths).
    pub fn segment_count(&self) -> usize {
        self.seg_len.iter().take_while(|&&l| l > 0).count()
    }

    /// Serialises to 4 bytes.
    pub fn to_bytes(&self) -> [u8; PATH_META_LEN] {
        let v: u32 = ((self.curr_inf as u32 & 0x3) << 30)
            | ((self.curr_hf as u32 & 0x3f) << 24)
            | ((self.seg_len[0] as u32 & 0x3f) << 12)
            | ((self.seg_len[1] as u32 & 0x3f) << 6)
            | (self.seg_len[2] as u32 & 0x3f);
        v.to_be_bytes()
    }

    /// Parses from 4 bytes.
    pub fn parse(buf: &[u8]) -> Result<Self, ProtoError> {
        crate::need("path meta", buf, PATH_META_LEN)?;
        let v = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        Ok(PathMeta {
            curr_inf: ((v >> 30) & 0x3) as u8,
            curr_hf: ((v >> 24) & 0x3f) as u8,
            seg_len: [
                ((v >> 12) & 0x3f) as u8,
                ((v >> 6) & 0x3f) as u8,
                (v & 0x3f) as u8,
            ],
        })
    }
}

/// Per-segment info field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfoField {
    /// Set if this segment contains a peering hop field.
    pub peering: bool,
    /// Set if the packet traverses the segment in construction direction.
    pub cons_dir: bool,
    /// Chained segment identifier (`beta`) for MAC verification.
    pub seg_id: u16,
    /// Segment creation timestamp (Unix seconds).
    pub timestamp: u32,
}

impl InfoField {
    /// Serialises to 8 bytes.
    pub fn to_bytes(&self) -> [u8; INFO_FIELD_LEN] {
        let mut b = [0u8; INFO_FIELD_LEN];
        if self.peering {
            b[0] |= 0b10;
        }
        if self.cons_dir {
            b[0] |= 0b01;
        }
        b[2..4].copy_from_slice(&self.seg_id.to_be_bytes());
        b[4..8].copy_from_slice(&self.timestamp.to_be_bytes());
        b
    }

    /// Parses from 8 bytes.
    pub fn parse(buf: &[u8]) -> Result<Self, ProtoError> {
        crate::need("info field", buf, INFO_FIELD_LEN)?;
        Ok(InfoField {
            peering: buf[0] & 0b10 != 0,
            cons_dir: buf[0] & 0b01 != 0,
            seg_id: u16::from_be_bytes([buf[2], buf[3]]),
            timestamp: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
        })
    }
}

/// Per-AS hop field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopField {
    /// Router alert for the ingress border router (SCMP traceroute).
    pub ingress_alert: bool,
    /// Router alert for the egress border router.
    pub egress_alert: bool,
    /// Expiry time, in units of `(ts + (exp_time+1) * 24h/256)`.
    pub exp_time: u8,
    /// Ingress interface in construction direction (0 = segment start).
    pub cons_ingress: u16,
    /// Egress interface in construction direction (0 = segment end).
    pub cons_egress: u16,
    /// Truncated AES-CMAC over the hop data and chained `seg_id`.
    pub mac: [u8; 6],
}

impl HopField {
    /// Serialises to 12 bytes.
    pub fn to_bytes(&self) -> [u8; HOP_FIELD_LEN] {
        let mut b = [0u8; HOP_FIELD_LEN];
        if self.ingress_alert {
            b[0] |= 0b10;
        }
        if self.egress_alert {
            b[0] |= 0b01;
        }
        b[1] = self.exp_time;
        b[2..4].copy_from_slice(&self.cons_ingress.to_be_bytes());
        b[4..6].copy_from_slice(&self.cons_egress.to_be_bytes());
        b[6..12].copy_from_slice(&self.mac);
        b
    }

    /// Parses from 12 bytes.
    pub fn parse(buf: &[u8]) -> Result<Self, ProtoError> {
        crate::need("hop field", buf, HOP_FIELD_LEN)?;
        let mut mac = [0u8; 6];
        mac.copy_from_slice(&buf[6..12]);
        Ok(HopField {
            ingress_alert: buf[0] & 0b10 != 0,
            egress_alert: buf[0] & 0b01 != 0,
            exp_time: buf[1],
            cons_ingress: u16::from_be_bytes([buf[2], buf[3]]),
            cons_egress: u16::from_be_bytes([buf[4], buf[5]]),
            mac,
        })
    }

    /// Absolute expiry in Unix seconds relative to the segment timestamp.
    ///
    /// SCION encodes hop expiry as `(exp_time + 1) * (24h / 256)` past the
    /// info-field timestamp, i.e. a granularity of 337.5 s and a maximum
    /// lifetime of 24 hours.
    pub fn expiry_unix(&self, info_timestamp: u32) -> u64 {
        info_timestamp as u64 + ((self.exp_time as u64 + 1) * 86_400) / 256
    }
}

/// A complete standard SCION path: meta + info fields + hop fields.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScionPath {
    /// The meta header (pointers + segment lengths).
    pub meta: PathMeta,
    /// One info field per segment, `meta.segment_count()` entries used.
    pub info: Vec<InfoField>,
    /// Hop fields, grouped by segment in `meta.seg_len` order.
    pub hops: Vec<HopField>,
}

impl ScionPath {
    /// Builds a path from per-segment hop-field groups, validating the
    /// structural invariants (1–3 segments, ≤ 64 hops, non-empty segments).
    pub fn from_segments(segments: Vec<(InfoField, Vec<HopField>)>) -> Result<Self, ProtoError> {
        if segments.is_empty() || segments.len() > MAX_SEGMENTS {
            return Err(ProtoError::InvalidPath(format!(
                "path must have 1..=3 segments, got {}",
                segments.len()
            )));
        }
        let mut meta = PathMeta::default();
        let mut info = Vec::new();
        let mut hops = Vec::new();
        for (i, (inf, segment_hops)) in segments.into_iter().enumerate() {
            if segment_hops.is_empty() {
                return Err(ProtoError::InvalidPath(format!("segment {i} is empty")));
            }
            if segment_hops.len() > 63 {
                return Err(ProtoError::InvalidPath(format!(
                    "segment {i} has {} hops (max 63)",
                    segment_hops.len()
                )));
            }
            meta.seg_len[i] = segment_hops.len() as u8;
            info.push(inf);
            hops.extend(segment_hops);
        }
        if hops.len() > MAX_HOPS {
            return Err(ProtoError::InvalidPath(format!(
                "{} hops exceed max {MAX_HOPS}",
                hops.len()
            )));
        }
        Ok(ScionPath { meta, info, hops })
    }

    /// Serialised length in bytes.
    pub fn wire_len(&self) -> usize {
        PATH_META_LEN + self.info.len() * INFO_FIELD_LEN + self.hops.len() * HOP_FIELD_LEN
    }

    /// Serialises the path header.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.meta.to_bytes());
        for inf in &self.info {
            out.extend_from_slice(&inf.to_bytes());
        }
        for hf in &self.hops {
            out.extend_from_slice(&hf.to_bytes());
        }
    }

    /// Parses a path header; `buf` must contain exactly the path bytes as
    /// sized by the common header.
    pub fn parse(buf: &[u8]) -> Result<Self, ProtoError> {
        let meta = PathMeta::parse(buf)?;
        let n_seg = meta.segment_count();
        if n_seg == 0 {
            return Err(ProtoError::InvalidPath("no segments".into()));
        }
        // Segment lengths must be a contiguous non-zero prefix.
        for i in n_seg..MAX_SEGMENTS {
            if meta.seg_len[i] != 0 {
                return Err(ProtoError::InvalidPath(format!(
                    "segment {i} non-zero after zero-length segment"
                )));
            }
        }
        let n_hops = meta.total_hops();
        let needed = PATH_META_LEN + n_seg * INFO_FIELD_LEN + n_hops * HOP_FIELD_LEN;
        crate::need("scion path", buf, needed)?;
        let mut off = PATH_META_LEN;
        let mut info = Vec::with_capacity(n_seg);
        for _ in 0..n_seg {
            info.push(InfoField::parse(&buf[off..])?);
            off += INFO_FIELD_LEN;
        }
        let mut hops = Vec::with_capacity(n_hops);
        for _ in 0..n_hops {
            hops.push(HopField::parse(&buf[off..])?);
            off += HOP_FIELD_LEN;
        }
        if (meta.curr_inf as usize) >= n_seg || (meta.curr_hf as usize) >= n_hops {
            return Err(ProtoError::InvalidPath(format!(
                "pointers out of range: inf {} / {n_seg}, hf {} / {n_hops}",
                meta.curr_inf, meta.curr_hf
            )));
        }
        Ok(ScionPath { meta, info, hops })
    }

    /// The segment index that hop `hf_idx` belongs to.
    pub fn segment_of_hop(&self, hf_idx: usize) -> usize {
        let mut acc = 0usize;
        for (seg, &len) in self.meta.seg_len.iter().enumerate() {
            acc += len as usize;
            if hf_idx < acc {
                return seg;
            }
        }
        self.meta.segment_count().saturating_sub(1)
    }

    /// The info field governing the current hop.
    pub fn current_info(&self) -> &InfoField {
        &self.info[self.meta.curr_inf as usize]
    }

    /// The current hop field.
    pub fn current_hop(&self) -> &HopField {
        &self.hops[self.meta.curr_hf as usize]
    }

    /// Whether the current hop is the last one.
    pub fn at_last_hop(&self) -> bool {
        self.meta.curr_hf as usize == self.hops.len() - 1
    }

    /// Advances the hop pointer (and the info pointer on a segment
    /// boundary), as a border router does after processing its hop.
    pub fn advance(&mut self) -> Result<(), ProtoError> {
        if self.at_last_hop() {
            return Err(ProtoError::InvalidPath("advance past last hop".into()));
        }
        self.meta.curr_hf += 1;
        let new_seg = self.segment_of_hop(self.meta.curr_hf as usize);
        self.meta.curr_inf = new_seg as u8;
        Ok(())
    }

    /// Reverses the path for the return direction: segment order, hop order
    /// and construction-direction flags all flip, and the pointers reset to
    /// the start. This is what a server does to reply without a path lookup.
    pub fn reversed(&self) -> ScionPath {
        let n_seg = self.meta.segment_count();
        let mut segments: Vec<(InfoField, Vec<HopField>)> = Vec::with_capacity(n_seg);
        let mut off = 0usize;
        for s in 0..n_seg {
            let len = self.meta.seg_len[s] as usize;
            let mut hops: Vec<HopField> = self.hops[off..off + len].to_vec();
            hops.reverse();
            let mut inf = self.info[s];
            inf.cons_dir = !inf.cons_dir;
            segments.push((inf, hops));
            off += len;
        }
        segments.reverse();
        ScionPath::from_segments(segments).expect("reversing a valid path yields a valid path")
    }

    /// The ingress interface of the current hop *in traversal direction*:
    /// `cons_ingress` when travelling in construction direction, otherwise
    /// `cons_egress`.
    pub fn current_ingress(&self) -> u16 {
        let hf = self.current_hop();
        if self.current_info().cons_dir {
            hf.cons_ingress
        } else {
            hf.cons_egress
        }
    }

    /// The egress interface of the current hop in traversal direction.
    pub fn current_egress(&self) -> u16 {
        let hf = self.current_hop();
        if self.current_info().cons_dir {
            hf.cons_egress
        } else {
            hf.cons_ingress
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hf(ig: u16, eg: u16) -> HopField {
        HopField {
            ingress_alert: false,
            egress_alert: false,
            exp_time: 63,
            cons_ingress: ig,
            cons_egress: eg,
            mac: [1, 2, 3, 4, 5, 6],
        }
    }

    fn inf(seg_id: u16, cons_dir: bool) -> InfoField {
        InfoField {
            peering: false,
            cons_dir,
            seg_id,
            timestamp: 1_700_000_000,
        }
    }

    fn sample_path() -> ScionPath {
        ScionPath::from_segments(vec![
            (inf(10, false), vec![hf(0, 1), hf(2, 3)]),
            (inf(20, true), vec![hf(0, 5), hf(6, 7), hf(8, 0)]),
        ])
        .unwrap()
    }

    #[test]
    fn meta_roundtrip() {
        let m = PathMeta {
            curr_inf: 2,
            curr_hf: 37,
            seg_len: [12, 40, 11],
        };
        assert_eq!(PathMeta::parse(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn info_roundtrip() {
        let i = InfoField {
            peering: true,
            cons_dir: false,
            seg_id: 0xbeef,
            timestamp: 42,
        };
        assert_eq!(InfoField::parse(&i.to_bytes()).unwrap(), i);
    }

    #[test]
    fn hop_roundtrip() {
        let h = HopField {
            ingress_alert: true,
            egress_alert: true,
            exp_time: 200,
            cons_ingress: 700,
            cons_egress: 0,
            mac: [9, 8, 7, 6, 5, 4],
        };
        assert_eq!(HopField::parse(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn path_wire_roundtrip() {
        let p = sample_path();
        let mut buf = Vec::new();
        p.write(&mut buf);
        assert_eq!(buf.len(), p.wire_len());
        assert_eq!(ScionPath::parse(&buf).unwrap(), p);
    }

    #[test]
    fn parse_rejects_gap_in_segments() {
        let mut p = sample_path();
        p.meta.seg_len = [2, 0, 3];
        let mut buf = Vec::new();
        p.write(&mut buf);
        assert!(matches!(
            ScionPath::parse(&buf),
            Err(ProtoError::InvalidPath(_))
        ));
    }

    #[test]
    fn parse_rejects_out_of_range_pointer() {
        let mut p = sample_path();
        p.meta.curr_hf = 5;
        let mut buf = Vec::new();
        p.write(&mut buf);
        assert!(ScionPath::parse(&buf).is_err());
    }

    #[test]
    fn parse_rejects_truncation() {
        let p = sample_path();
        let mut buf = Vec::new();
        p.write(&mut buf);
        assert!(matches!(
            ScionPath::parse(&buf[..buf.len() - 1]),
            Err(ProtoError::Truncated { .. })
        ));
    }

    #[test]
    fn advance_crosses_segment_boundary() {
        let mut p = sample_path();
        assert_eq!(p.meta.curr_inf, 0);
        p.advance().unwrap(); // hop 1, still segment 0
        assert_eq!(p.meta.curr_inf, 0);
        p.advance().unwrap(); // hop 2, segment 1
        assert_eq!(p.meta.curr_inf, 1);
        p.advance().unwrap();
        p.advance().unwrap();
        assert!(p.at_last_hop());
        assert!(p.advance().is_err());
    }

    #[test]
    fn reversal_is_involutive() {
        let p = sample_path();
        assert_eq!(p.reversed().reversed(), p);
    }

    #[test]
    fn reversal_flips_direction_and_order() {
        let p = sample_path();
        let r = p.reversed();
        assert_eq!(r.meta.seg_len[0], 3);
        assert_eq!(r.meta.seg_len[1], 2);
        assert!(!r.info[0].cons_dir);
        assert!(r.info[1].cons_dir);
        // First hop of reversed = last hop of original.
        assert_eq!(r.hops[0], p.hops[4]);
    }

    #[test]
    fn traversal_direction_interfaces() {
        let p = sample_path();
        // Segment 0 is against construction direction: ingress = cons_egress.
        assert_eq!(p.current_ingress(), 1);
        assert_eq!(p.current_egress(), 0);
        let mut q = p.clone();
        q.advance().unwrap();
        q.advance().unwrap(); // now in segment 1, cons_dir = true
        assert_eq!(q.current_ingress(), 0);
        assert_eq!(q.current_egress(), 5);
    }

    #[test]
    fn from_segments_validates() {
        assert!(ScionPath::from_segments(vec![]).is_err());
        assert!(ScionPath::from_segments(vec![(inf(0, true), vec![])]).is_err());
        let four = vec![
            (inf(0, true), vec![hf(0, 1)]),
            (inf(0, true), vec![hf(0, 1)]),
            (inf(0, true), vec![hf(0, 1)]),
            (inf(0, true), vec![hf(0, 1)]),
        ];
        assert!(ScionPath::from_segments(four).is_err());
    }

    #[test]
    fn expiry_computation() {
        let h = hf(0, 1); // exp_time 63
                          // (63+1) * 86400/256 = 64 * 337.5 = 21600 s = 6 h
        assert_eq!(h.expiry_unix(1000), 1000 + 21_600);
        let max = HopField { exp_time: 255, ..h };
        assert_eq!(max.expiry_unix(0), 86_400);
    }
}
