//! SCION addressing: ISD numbers, AS numbers, ISD-AS pairs and host
//! addresses.
//!
//! SCION AS numbers are 48 bits wide. Numbers below 2^32 render as plain
//! decimals (BGP-compatible, e.g. `559` for SWITCH); larger numbers render
//! as three colon-separated 16-bit groups in hex, e.g. `2:0:3b` — the format
//! the paper uses for SCIERA's natively assigned ASes.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::ProtoError;

/// An Isolation Domain number (16 bits).
///
/// SCIERA operates ISD 71; the Swiss production ISD is 64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IsdNumber(pub u16);

impl fmt::Display for IsdNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The wildcard ISD (0) used in lookups.
pub const WILDCARD_ISD: IsdNumber = IsdNumber(0);

/// A 48-bit SCION AS number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Asn(u64);

/// Maximum representable AS number (2^48 − 1).
pub const MAX_ASN: u64 = (1 << 48) - 1;
const BGP_ASN_MAX: u64 = u32::MAX as u64;

impl Asn {
    /// Creates an AS number, rejecting values above 48 bits.
    pub fn new(value: u64) -> Result<Self, ProtoError> {
        if value > MAX_ASN {
            return Err(ProtoError::InvalidField {
                field: "asn",
                detail: format!("{value} exceeds 48 bits"),
            });
        }
        Ok(Asn(value))
    }

    /// The raw 48-bit value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Whether this AS number is in the BGP-compatible (< 2^32) range.
    pub fn is_bgp_compatible(&self) -> bool {
        self.0 <= BGP_ASN_MAX
    }

    /// The wildcard AS number (0).
    pub const WILDCARD: Asn = Asn(0);
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bgp_compatible() {
            write!(f, "{}", self.0)
        } else {
            let g0 = (self.0 >> 32) & 0xffff;
            let g1 = (self.0 >> 16) & 0xffff;
            let g2 = self.0 & 0xffff;
            write!(f, "{g0:x}:{g1:x}:{g2:x}")
        }
    }
}

impl FromStr for Asn {
    type Err = ProtoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.contains(':') {
            let groups: Vec<&str> = s.split(':').collect();
            if groups.len() != 3 {
                return Err(ProtoError::AddrParse(format!(
                    "AS number `{s}` must have exactly 3 groups"
                )));
            }
            let mut value = 0u64;
            for g in groups {
                let part = u64::from_str_radix(g, 16)
                    .map_err(|e| ProtoError::AddrParse(format!("AS group `{g}`: {e}")))?;
                if part > 0xffff {
                    return Err(ProtoError::AddrParse(format!(
                        "AS group `{g}` exceeds 16 bits"
                    )));
                }
                value = (value << 16) | part;
            }
            Asn::new(value)
        } else {
            let value: u64 = s
                .parse()
                .map_err(|e| ProtoError::AddrParse(format!("AS number `{s}`: {e}")))?;
            if value > BGP_ASN_MAX {
                return Err(ProtoError::AddrParse(format!(
                    "decimal AS number `{s}` exceeds the BGP-compatible range; use x:y:z"
                )));
            }
            Asn::new(value)
        }
    }
}

/// A fully-qualified SCION AS identifier: ISD plus AS number.
///
/// Displays as `71-2:0:3b` or `64-559`, the notation of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IsdAsn {
    /// Isolation domain.
    pub isd: IsdNumber,
    /// AS number.
    pub asn: Asn,
}

impl IsdAsn {
    /// Creates an ISD-AS pair.
    pub fn new(isd: u16, asn: Asn) -> Self {
        IsdAsn {
            isd: IsdNumber(isd),
            asn,
        }
    }

    /// Whether either component is a wildcard.
    pub fn is_wildcard(&self) -> bool {
        self.isd == WILDCARD_ISD || self.asn == Asn::WILDCARD
    }

    /// Packs into the 64-bit wire representation (16-bit ISD ∥ 48-bit AS).
    pub fn to_u64(&self) -> u64 {
        ((self.isd.0 as u64) << 48) | self.asn.0
    }

    /// Unpacks from the 64-bit wire representation.
    pub fn from_u64(raw: u64) -> Self {
        IsdAsn {
            isd: IsdNumber((raw >> 48) as u16),
            asn: Asn(raw & MAX_ASN),
        }
    }
}

impl fmt::Display for IsdAsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.isd, self.asn)
    }
}

impl FromStr for IsdAsn {
    type Err = ProtoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (isd_str, asn_str) = s
            .split_once('-')
            .ok_or_else(|| ProtoError::AddrParse(format!("ISD-AS `{s}` missing `-`")))?;
        let isd: u16 = isd_str
            .parse()
            .map_err(|e| ProtoError::AddrParse(format!("ISD `{isd_str}`: {e}")))?;
        let asn: Asn = asn_str.parse()?;
        Ok(IsdAsn {
            isd: IsdNumber(isd),
            asn,
        })
    }
}

/// Convenience constructor: `ia("71-2:0:3b")`. Panics on malformed input, so
/// only use it for literals (topology tables, tests).
pub fn ia(s: &str) -> IsdAsn {
    s.parse()
        .unwrap_or_else(|e| panic!("bad ISD-AS literal `{s}`: {e}"))
}

/// A SCION host address within an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HostAddr {
    /// IPv4 host address.
    V4([u8; 4]),
    /// IPv6 host address.
    V6([u8; 16]),
    /// An AS-local anycast service address (control service, discovery…).
    Svc(ServiceAddr),
}

/// Well-known SCION service addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceAddr {
    /// The AS control service (beacon, path and certificate servers).
    ControlService,
    /// The discovery/bootstrapping service.
    Discovery,
    /// Wildcard/unspecified service.
    None,
}

impl HostAddr {
    /// Shorthand IPv4 constructor.
    pub fn v4(a: u8, b: u8, c: u8, d: u8) -> Self {
        HostAddr::V4([a, b, c, d])
    }

    /// Length of the serialised address in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            HostAddr::V4(_) => 4,
            HostAddr::V6(_) => 16,
            HostAddr::Svc(_) => 4,
        }
    }

    /// The (type, length) nibbles used in the SCION common header:
    /// `(DT, DL)` for the destination or `(ST, SL)` for the source.
    pub fn type_len_nibbles(&self) -> (u8, u8) {
        match self {
            HostAddr::V4(_) => (0b00, 0b00),
            HostAddr::V6(_) => (0b00, 0b11),
            HostAddr::Svc(_) => (0b01, 0b00),
        }
    }

    /// Serialises the address bytes.
    pub fn write(&self, out: &mut Vec<u8>) {
        match self {
            HostAddr::V4(b) => out.extend_from_slice(b),
            HostAddr::V6(b) => out.extend_from_slice(b),
            HostAddr::Svc(s) => {
                let code: u16 = match s {
                    ServiceAddr::ControlService => 0x0002,
                    ServiceAddr::Discovery => 0x0001,
                    ServiceAddr::None => 0xffff,
                };
                out.extend_from_slice(&code.to_be_bytes());
                out.extend_from_slice(&[0, 0]);
            }
        }
    }

    /// Parses an address from `buf` given the header's type/len nibbles.
    pub fn parse(ty: u8, len: u8, buf: &[u8]) -> Result<(Self, usize), ProtoError> {
        match (ty, len) {
            (0b00, 0b00) => {
                crate::need("host addr v4", buf, 4)?;
                Ok((HostAddr::V4([buf[0], buf[1], buf[2], buf[3]]), 4))
            }
            (0b00, 0b11) => {
                crate::need("host addr v6", buf, 16)?;
                let mut b = [0u8; 16];
                b.copy_from_slice(&buf[..16]);
                Ok((HostAddr::V6(b), 16))
            }
            (0b01, 0b00) => {
                crate::need("host addr svc", buf, 4)?;
                let code = u16::from_be_bytes([buf[0], buf[1]]);
                let svc = match code {
                    0x0002 => ServiceAddr::ControlService,
                    0x0001 => ServiceAddr::Discovery,
                    0xffff => ServiceAddr::None,
                    other => {
                        return Err(ProtoError::InvalidField {
                            field: "svc",
                            detail: format!("unknown service code {other:#x}"),
                        })
                    }
                };
                Ok((HostAddr::Svc(svc), 4))
            }
            _ => Err(ProtoError::InvalidField {
                field: "addr type/len",
                detail: format!("unsupported combination ({ty:#b}, {len:#b})"),
            }),
        }
    }
}

impl fmt::Display for HostAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostAddr::V4(b) => write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3]),
            HostAddr::V6(b) => {
                let groups: Vec<String> = b
                    .chunks_exact(2)
                    .map(|c| format!("{:x}", u16::from_be_bytes([c[0], c[1]])))
                    .collect();
                write!(f, "{}", groups.join(":"))
            }
            HostAddr::Svc(ServiceAddr::ControlService) => write!(f, "CS"),
            HostAddr::Svc(ServiceAddr::Discovery) => write!(f, "DS"),
            HostAddr::Svc(ServiceAddr::None) => write!(f, "SVC_NONE"),
        }
    }
}

/// A complete SCION end-point address: ISD-AS plus host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ScionAddr {
    /// The AS the host lives in.
    pub ia: IsdAsn,
    /// The host within the AS.
    pub host: HostAddr,
}

impl ScionAddr {
    /// Creates an end-point address.
    pub fn new(ia: IsdAsn, host: HostAddr) -> Self {
        ScionAddr { ia, host }
    }
}

impl fmt::Display for ScionAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.ia, self.host)
    }
}

impl FromStr for ScionAddr {
    type Err = ProtoError;

    /// Parses `"71-2:0:3b,10.0.0.1"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ia_str, host_str) = s
            .split_once(',')
            .ok_or_else(|| ProtoError::AddrParse(format!("SCION addr `{s}` missing `,`")))?;
        let ia: IsdAsn = ia_str.parse()?;
        let parts: Vec<&str> = host_str.split('.').collect();
        if parts.len() == 4 {
            let mut b = [0u8; 4];
            for (i, p) in parts.iter().enumerate() {
                b[i] = p
                    .parse()
                    .map_err(|e| ProtoError::AddrParse(format!("IPv4 octet `{p}`: {e}")))?;
            }
            return Ok(ScionAddr::new(ia, HostAddr::V4(b)));
        }
        Err(ProtoError::AddrParse(format!(
            "unsupported host address `{host_str}`"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_bgp_display() {
        assert_eq!(Asn::new(559).unwrap().to_string(), "559");
        assert_eq!(Asn::new(20965).unwrap().to_string(), "20965");
    }

    #[test]
    fn asn_scion_display() {
        // 2:0:3b == (2 << 32) | (0 << 16) | 0x3b
        let v = (2u64 << 32) | 0x3b;
        assert_eq!(Asn::new(v).unwrap().to_string(), "2:0:3b");
    }

    #[test]
    fn asn_parse_roundtrip() {
        for s in [
            "559",
            "20965",
            "2:0:3b",
            "2:0:5c",
            "ffff:ffff:ffff",
            "1:0:0",
        ] {
            let a: Asn = s.parse().unwrap();
            assert_eq!(a.to_string(), s, "roundtrip of {s}");
        }
    }

    #[test]
    fn asn_rejects_malformed() {
        assert!("2:0".parse::<Asn>().is_err());
        assert!("2:0:3b:1".parse::<Asn>().is_err());
        assert!("2:0:10000".parse::<Asn>().is_err());
        assert!("hello".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err()); // 2^32 must use colon form
        assert!(Asn::new(1 << 48).is_err());
    }

    #[test]
    fn isd_as_display_matches_paper_notation() {
        assert_eq!(ia("71-2:0:3b").to_string(), "71-2:0:3b");
        assert_eq!(ia("64-559").to_string(), "64-559");
        assert_eq!(ia("71-20965").to_string(), "71-20965");
    }

    #[test]
    fn isd_as_u64_roundtrip() {
        for s in ["71-2:0:3b", "64-559", "71-225", "1-ffff:ffff:ffff"] {
            let x = ia(s);
            assert_eq!(IsdAsn::from_u64(x.to_u64()), x);
        }
    }

    #[test]
    fn wildcard_detection() {
        assert!(ia("0-559").is_wildcard());
        assert!(ia("71-0").is_wildcard());
        assert!(!ia("71-559").is_wildcard());
    }

    #[test]
    fn host_addr_wire_roundtrip() {
        let addrs = [
            HostAddr::v4(192, 168, 1, 10),
            HostAddr::V6([0x20, 0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]),
            HostAddr::Svc(ServiceAddr::ControlService),
            HostAddr::Svc(ServiceAddr::Discovery),
        ];
        for a in addrs {
            let (ty, len) = a.type_len_nibbles();
            let mut buf = Vec::new();
            a.write(&mut buf);
            assert_eq!(buf.len(), a.wire_len());
            let (parsed, consumed) = HostAddr::parse(ty, len, &buf).unwrap();
            assert_eq!(parsed, a);
            assert_eq!(consumed, buf.len());
        }
    }

    #[test]
    fn host_addr_parse_truncated() {
        assert!(matches!(
            HostAddr::parse(0b00, 0b11, &[1, 2, 3]),
            Err(ProtoError::Truncated { .. })
        ));
    }

    #[test]
    fn scion_addr_parse_and_display() {
        let a: ScionAddr = "71-2:0:5c,10.1.2.3".parse().unwrap();
        assert_eq!(a.ia, ia("71-2:0:5c"));
        assert_eq!(a.host, HostAddr::v4(10, 1, 2, 3));
        assert_eq!(a.to_string(), "71-2:0:5c,10.1.2.3");
        assert!("71-2:0:5c".parse::<ScionAddr>().is_err());
        assert!("71-2:0:5c,10.1.2".parse::<ScionAddr>().is_err());
    }

    #[test]
    fn display_v6() {
        let a = HostAddr::V6([0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(a.to_string(), "2001:db8:0:0:0:0:0:1");
    }
}
