//! Zero-copy views over serialised SCION packets.
//!
//! The decode path ([`crate::packet::ScionPacket::decode`]) materialises a
//! full `ScionPacket` — three `Vec`s and a payload copy — even though a
//! border router only ever touches a handful of header bytes: the current
//! info field's `seg_id`, the current hop field, and the two pointer bits in
//! the path meta header. This module locates those bytes *by offset* in the
//! raw frame and mutates them in place, the way real SCION routers (and the
//! verified forwarding loop of *Protocols to Code*) operate.
//!
//! Offset map of a standard SCION frame (all offsets relative to frame
//! start; `D`/`S` are the destination/source host address lengths):
//!
//! ```text
//! 0            12           20           28      28+D     28+D+S = M
//! +------------+------------+------------+--------+--------+
//! | common hdr |   dst IA   |   src IA   | dstHost| srcHost|
//! +------------+------------+------------+--------+--------+
//! M        M+4          M+4+8·i                M+4+8·n
//! +--------+----------------+--- ... ---+----------------+--- ...
//! |PathMeta|  InfoField[0]  |           |  HopField[0]   |
//! +--------+----------------+--- ... ---+----------------+--- ...
//! InfoField[i] at M + 4 + 8·i          (n = segment count)
//! HopField[j]  at M + 4 + 8·n + 12·j
//! seg_id of segment i at M + 4 + 8·i + 2 .. +4
//! ```
//!
//! Two types share this logic: [`PacketView`] for read-only inspection and
//! [`WireCursor`] for the in-place mutations a router performs (pointer
//! advance, `seg_id ^= mac[0..2]` chaining).
//!
//! [`HeaderOffsets::locate`] mirrors every validation `decode` performs on
//! the header region, so a frame accepted here is never one the reference
//! path would reject as malformed. The converse is deliberately allowed:
//! callers fall back to the decode path whenever `locate` declines.

use crate::addr::IsdAsn;
use crate::packet::{PathType, COMMON_HDR_LEN, VERSION};
use crate::path::{
    HopField, InfoField, HOP_FIELD_LEN, INFO_FIELD_LEN, MAX_SEGMENTS, PATH_META_LEN,
};
use crate::trace::HBH_EXT_PROTOCOL;
use crate::ProtoError;

/// Byte length of the two ISD-AS fields in the address header.
const IA_HDR_LEN: usize = 16;

/// Resolved offsets of the header regions of one serialised SCION packet.
///
/// Constructed by [`HeaderOffsets::locate`], which performs the same header
/// validation as [`crate::packet::ScionPacket::decode`]; the resulting value
/// is only meaningful for the exact buffer it was located in (plus in-place
/// mutations that preserve the layout, which is all [`WireCursor`] offers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderOffsets {
    /// Declared header length in bytes (common + address + path).
    hdr_len: usize,
    /// Declared payload length in bytes (includes any HBH extension).
    payload_len: usize,
    /// The path type discriminator.
    path_type: PathType,
    /// Offset of the path header (== end of the address header).
    meta_off: usize,
    /// Number of path segments (0 for empty / one-hop paths).
    n_seg: usize,
    /// Total number of hop fields.
    n_hops: usize,
    /// Hop count per segment.
    seg_len: [u8; MAX_SEGMENTS],
    /// Serialised length of the destination host address.
    dst_len: usize,
}

impl HeaderOffsets {
    /// Locates and validates the header regions of `buf`.
    ///
    /// Accepts exactly the frames whose *headers* `ScionPacket::decode`
    /// accepts: version 0, known path type, consistent `HdrLen`, supported
    /// address type/length nibbles (including service-code validation), and
    /// — for standard SCION paths — a contiguous segment prefix with both
    /// pointers in range. Payload contents are not inspected; a hop-by-hop
    /// extension (which `decode` also validates) is the caller's cue to
    /// fall back, see [`HeaderOffsets::has_hbh_ext`].
    pub fn locate(buf: &[u8]) -> Result<Self, ProtoError> {
        if buf.len() < COMMON_HDR_LEN {
            return Err(ProtoError::Truncated {
                what: "common header",
                needed: COMMON_HDR_LEN,
                got: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != VERSION {
            return Err(ProtoError::InvalidField {
                field: "version",
                detail: format!("unsupported version {version}"),
            });
        }
        let hdr_len = buf[5] as usize * 4;
        let payload_len = u16::from_be_bytes([buf[6], buf[7]]) as usize;
        let path_type = PathType::from_u8(buf[8])?;
        if buf.len() < hdr_len + payload_len {
            return Err(ProtoError::Truncated {
                what: "scion packet",
                needed: hdr_len + payload_len,
                got: buf.len(),
            });
        }
        if hdr_len < COMMON_HDR_LEN + IA_HDR_LEN {
            return Err(ProtoError::InvalidField {
                field: "hdr_len",
                detail: format!("header length {hdr_len} too small"),
            });
        }
        let tl = buf[9];
        let dst_len = host_len(tl >> 6, (tl >> 4) & 0x3)?;
        let src_len = host_len((tl >> 2) & 0x3, tl & 0x3)?;
        let meta_off = COMMON_HDR_LEN + IA_HDR_LEN + dst_len + src_len;
        if meta_off > hdr_len {
            return Err(ProtoError::Truncated {
                what: "address header",
                needed: meta_off,
                got: hdr_len,
            });
        }
        // Service addresses carry a 16-bit code `decode` validates too.
        check_svc(tl >> 6, &buf[COMMON_HDR_LEN + IA_HDR_LEN..])?;
        check_svc(
            (tl >> 2) & 0x3,
            &buf[COMMON_HDR_LEN + IA_HDR_LEN + dst_len..],
        )?;

        let mut off = HeaderOffsets {
            hdr_len,
            payload_len,
            path_type,
            meta_off,
            n_seg: 0,
            n_hops: 0,
            seg_len: [0; MAX_SEGMENTS],
            dst_len,
        };
        let expected_hdr = match path_type {
            PathType::Empty => meta_off,
            PathType::OneHop => meta_off + INFO_FIELD_LEN + 2 * HOP_FIELD_LEN,
            PathType::Scion => {
                if hdr_len - meta_off < PATH_META_LEN {
                    return Err(ProtoError::Truncated {
                        what: "path meta",
                        needed: PATH_META_LEN,
                        got: hdr_len - meta_off,
                    });
                }
                let meta = meta_word(buf, meta_off);
                off.seg_len = [
                    ((meta >> 12) & 0x3f) as u8,
                    ((meta >> 6) & 0x3f) as u8,
                    (meta & 0x3f) as u8,
                ];
                off.n_seg = off.seg_len.iter().take_while(|&&l| l > 0).count();
                if off.n_seg == 0 {
                    return Err(ProtoError::InvalidPath("no segments".into()));
                }
                for i in off.n_seg..MAX_SEGMENTS {
                    if off.seg_len[i] != 0 {
                        return Err(ProtoError::InvalidPath(format!(
                            "segment {i} non-zero after zero-length segment"
                        )));
                    }
                }
                off.n_hops = off.seg_len.iter().map(|&l| l as usize).sum();
                let curr_inf = ((meta >> 30) & 0x3) as usize;
                let curr_hf = ((meta >> 24) & 0x3f) as usize;
                if curr_inf >= off.n_seg || curr_hf >= off.n_hops {
                    return Err(ProtoError::InvalidPath(format!(
                        "pointers out of range: inf {curr_inf} / {}, hf {curr_hf} / {}",
                        off.n_seg, off.n_hops
                    )));
                }
                meta_off + PATH_META_LEN + off.n_seg * INFO_FIELD_LEN + off.n_hops * HOP_FIELD_LEN
            }
        };
        if expected_hdr != hdr_len {
            return Err(ProtoError::InvalidField {
                field: "hdr_len",
                detail: format!("declared {hdr_len}, computed {expected_hdr}"),
            });
        }
        Ok(off)
    }

    /// Whether the frame declares a hop-by-hop extension (e.g. a trace
    /// context) as its next header. Extensions live in the payload region
    /// and are re-serialised by the decode path, so fast-path callers must
    /// fall back when this is set.
    pub fn has_hbh_ext(buf: &[u8]) -> bool {
        buf.len() > 4 && buf[4] == HBH_EXT_PROTOCOL
    }

    /// Declared header length in bytes.
    pub fn hdr_len(&self) -> usize {
        self.hdr_len
    }

    /// Declared payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Whether `buf` is exactly header + payload with no trailing bytes.
    ///
    /// `decode` tolerates trailing bytes but `encode` strips them, so the
    /// fast path only operates on exact-length frames to stay byte-identical
    /// with decode-then-re-encode.
    pub fn is_exact_length(&self, buf: &[u8]) -> bool {
        buf.len() == self.hdr_len + self.payload_len
    }

    /// The path type discriminator.
    pub fn path_type(&self) -> PathType {
        self.path_type
    }

    /// Whether every reserved bit of the header region is zero.
    ///
    /// `decode` *ignores* reserved bits and `encode` writes them back as
    /// zero, so decode-then-re-encode canonicalises frames that carry
    /// non-zero RSV bits (common-header RSV, path-meta RSV, info/hop flag
    /// padding, service-address padding). In-place processing preserves
    /// them instead — so the fast path only handles canonical frames and
    /// falls back for the rest, keeping its output byte-identical with the
    /// reference path.
    pub fn is_canonical(&self, buf: &[u8]) -> bool {
        if buf[10] != 0 || buf[11] != 0 {
            return false; // common-header RSV
        }
        let tl = buf[9];
        let addr_base = COMMON_HDR_LEN + IA_HDR_LEN;
        if tl >> 6 == 0b01 && buf[addr_base + 2..addr_base + 4] != [0, 0] {
            return false; // dst service-address padding
        }
        let src_base = addr_base + self.dst_len;
        if (tl >> 2) & 0x3 == 0b01 && buf[src_base + 2..src_base + 4] != [0, 0] {
            return false; // src service-address padding
        }
        if self.path_type == PathType::Scion {
            if meta_word(buf, self.meta_off) & 0x00fc_0000 != 0 {
                return false; // path-meta RSV
            }
            for i in 0..self.n_seg {
                let o = self.info_off(i);
                if buf[o] & !0b11 != 0 || buf[o + 1] != 0 {
                    return false; // info-field flag padding / RSV byte
                }
            }
            for j in 0..self.n_hops {
                let o = self.hop_off(j);
                if buf[o] & !0b11 != 0 {
                    return false; // hop-field flag padding
                }
            }
        }
        true
    }

    /// Number of path segments (0 unless a standard SCION path).
    pub fn segment_count(&self) -> usize {
        self.n_seg
    }

    /// Total number of hop fields.
    pub fn total_hops(&self) -> usize {
        self.n_hops
    }

    /// Hop count of segment `i`.
    pub fn seg_len(&self, i: usize) -> usize {
        self.seg_len[i] as usize
    }

    /// Global index of the first hop of segment `seg`.
    pub fn seg_start(&self, seg: usize) -> usize {
        self.seg_len[..seg].iter().map(|&l| l as usize).sum()
    }

    /// The segment index hop `hf_idx` belongs to (mirror of
    /// [`crate::path::ScionPath::segment_of_hop`]).
    pub fn segment_of_hop(&self, hf_idx: usize) -> usize {
        let mut acc = 0usize;
        for (seg, &len) in self.seg_len.iter().enumerate() {
            acc += len as usize;
            if hf_idx < acc {
                return seg;
            }
        }
        self.n_seg.saturating_sub(1)
    }

    /// Offset of info field `i`.
    fn info_off(&self, i: usize) -> usize {
        self.meta_off + PATH_META_LEN + i * INFO_FIELD_LEN
    }

    /// Offset of hop field `j`.
    fn hop_off(&self, j: usize) -> usize {
        self.meta_off + PATH_META_LEN + self.n_seg * INFO_FIELD_LEN + j * HOP_FIELD_LEN
    }

    fn curr_inf(&self, buf: &[u8]) -> usize {
        ((meta_word(buf, self.meta_off) >> 30) & 0x3) as usize
    }

    fn curr_hf(&self, buf: &[u8]) -> usize {
        ((meta_word(buf, self.meta_off) >> 24) & 0x3f) as usize
    }
}

fn meta_word(buf: &[u8], meta_off: usize) -> u32 {
    u32::from_be_bytes([
        buf[meta_off],
        buf[meta_off + 1],
        buf[meta_off + 2],
        buf[meta_off + 3],
    ])
}

/// Host address length for a (type, len) nibble pair; rejects the
/// combinations `HostAddr::parse` rejects.
fn host_len(ty: u8, len: u8) -> Result<usize, ProtoError> {
    match (ty, len) {
        (0b00, 0b00) => Ok(4),
        (0b00, 0b11) => Ok(16),
        (0b01, 0b00) => Ok(4),
        _ => Err(ProtoError::InvalidField {
            field: "addr type/len",
            detail: format!("unsupported combination ({ty:#b}, {len:#b})"),
        }),
    }
}

/// For a service address (type nibble 0b01), validates the 16-bit service
/// code the same way `HostAddr::parse` does.
fn check_svc(ty: u8, addr_bytes: &[u8]) -> Result<(), ProtoError> {
    if ty != 0b01 {
        return Ok(());
    }
    let code = u16::from_be_bytes([addr_bytes[0], addr_bytes[1]]);
    match code {
        0x0001 | 0x0002 | 0xffff => Ok(()),
        other => Err(ProtoError::InvalidField {
            field: "svc",
            detail: format!("unknown service code {other:#x}"),
        }),
    }
}

macro_rules! view_accessors {
    () => {
        /// Destination ISD-AS, read from the address header.
        pub fn dst_ia(&self) -> IsdAsn {
            IsdAsn::from_u64(u64::from_be_bytes(
                self.buf[COMMON_HDR_LEN..COMMON_HDR_LEN + 8]
                    .try_into()
                    .expect("locate guaranteed 8 bytes"),
            ))
        }

        /// Source ISD-AS, read from the address header.
        pub fn src_ia(&self) -> IsdAsn {
            IsdAsn::from_u64(u64::from_be_bytes(
                self.buf[COMMON_HDR_LEN + 8..COMMON_HDR_LEN + 16]
                    .try_into()
                    .expect("locate guaranteed 8 bytes"),
            ))
        }

        /// The resolved header offsets.
        pub fn offsets(&self) -> &HeaderOffsets {
            &self.off
        }

        /// Index of the info field currently being traversed.
        pub fn curr_inf(&self) -> usize {
            self.off.curr_inf(self.buf)
        }

        /// Global index of the hop field currently being traversed.
        pub fn curr_hf(&self) -> usize {
            self.off.curr_hf(self.buf)
        }

        /// Whether the current hop is the last one.
        pub fn at_last_hop(&self) -> bool {
            self.curr_hf() == self.off.n_hops - 1
        }

        /// Info field `i`, parsed from its 8 header bytes.
        pub fn info(&self, i: usize) -> InfoField {
            debug_assert!(i < self.off.n_seg);
            let o = self.off.info_off(i);
            InfoField::parse(&self.buf[o..o + INFO_FIELD_LEN])
                .expect("locate guaranteed info-field bounds")
        }

        /// Hop field `j`, parsed from its 12 header bytes.
        pub fn hop(&self, j: usize) -> HopField {
            debug_assert!(j < self.off.n_hops);
            let o = self.off.hop_off(j);
            HopField::parse(&self.buf[o..o + HOP_FIELD_LEN])
                .expect("locate guaranteed hop-field bounds")
        }

        /// The info field governing the current hop.
        pub fn current_info(&self) -> InfoField {
            self.info(self.curr_inf())
        }

        /// The current hop field.
        pub fn current_hop(&self) -> HopField {
            self.hop(self.curr_hf())
        }
    };
}

/// A read-only zero-copy view over a serialised SCION packet.
#[derive(Debug, Clone, Copy)]
pub struct PacketView<'a> {
    buf: &'a [u8],
    off: HeaderOffsets,
}

impl<'a> PacketView<'a> {
    /// Locates the header regions of `buf` (see [`HeaderOffsets::locate`]).
    pub fn parse(buf: &'a [u8]) -> Result<Self, ProtoError> {
        let off = HeaderOffsets::locate(buf)?;
        Ok(PacketView { buf, off })
    }

    view_accessors!();
}

/// A mutable zero-copy cursor over a serialised SCION packet: the in-place
/// operations a border router performs while forwarding.
#[derive(Debug)]
pub struct WireCursor<'a> {
    buf: &'a mut [u8],
    off: HeaderOffsets,
}

impl<'a> WireCursor<'a> {
    /// Locates the header regions of `buf` (see [`HeaderOffsets::locate`]).
    pub fn parse(buf: &'a mut [u8]) -> Result<Self, ProtoError> {
        let off = HeaderOffsets::locate(buf)?;
        Ok(WireCursor { buf, off })
    }

    /// Wraps a buffer whose offsets were already located (by
    /// [`HeaderOffsets::locate`] *on this exact buffer*), skipping
    /// re-validation. All accesses stay bounds-checked, so a mismatched
    /// pairing can panic but never read out of bounds.
    pub fn from_offsets(buf: &'a mut [u8], off: HeaderOffsets) -> Self {
        debug_assert!(buf.len() >= off.hdr_len + off.payload_len);
        WireCursor { buf, off }
    }

    view_accessors!();

    /// Overwrites the `seg_id` of info field `i` in place.
    pub fn set_seg_id(&mut self, i: usize, seg_id: u16) {
        debug_assert!(i < self.off.n_seg);
        let o = self.off.info_off(i) + 2;
        self.buf[o..o + 2].copy_from_slice(&seg_id.to_be_bytes());
    }

    /// XORs `mask` into the `seg_id` of info field `i` in place — the
    /// `seg_id ^= mac[0..2]` chaining step of hop-field verification.
    pub fn xor_seg_id(&mut self, i: usize, mask: u16) {
        let o = self.off.info_off(i) + 2;
        let cur = u16::from_be_bytes([self.buf[o], self.buf[o + 1]]);
        self.buf[o..o + 2].copy_from_slice(&(cur ^ mask).to_be_bytes());
    }

    /// Advances the hop pointer (and the info pointer on a segment
    /// boundary) in place — the mirror of [`ScionPath::advance`].
    ///
    /// [`ScionPath::advance`]: crate::path::ScionPath::advance
    pub fn advance(&mut self) -> Result<(), ProtoError> {
        if self.at_last_hop() {
            return Err(ProtoError::InvalidPath("advance past last hop".into()));
        }
        let new_hf = self.curr_hf() + 1;
        let new_inf = self.off.segment_of_hop(new_hf);
        let word = meta_word(self.buf, self.off.meta_off);
        let new_word = (word & 0x00ff_ffff)
            | (((new_inf as u32) & 0x3) << 30)
            | (((new_hf as u32) & 0x3f) << 24);
        self.buf[self.off.meta_off..self.off.meta_off + PATH_META_LEN]
            .copy_from_slice(&new_word.to_be_bytes());
        Ok(())
    }

    /// The underlying frame bytes.
    pub fn as_bytes(&self) -> &[u8] {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ia, HostAddr, ScionAddr, ServiceAddr};
    use crate::packet::{DataPlanePath, L4Protocol, ScionPacket};
    use crate::path::ScionPath;

    fn hf(ig: u16, eg: u16) -> HopField {
        HopField {
            ingress_alert: false,
            egress_alert: false,
            exp_time: 63,
            cons_ingress: ig,
            cons_egress: eg,
            mac: [1, 2, 3, 4, 5, 6],
        }
    }

    fn inf(seg_id: u16, cons_dir: bool) -> InfoField {
        InfoField {
            peering: false,
            cons_dir,
            seg_id,
            timestamp: 1_700_000_000,
        }
    }

    fn two_segment_path() -> ScionPath {
        ScionPath::from_segments(vec![
            (inf(10, false), vec![hf(0, 1), hf(2, 3)]),
            (inf(20, true), vec![hf(0, 5), hf(6, 7), hf(8, 0)]),
        ])
        .unwrap()
    }

    fn sample_packet(path: ScionPath) -> ScionPacket {
        ScionPacket::new(
            ScionAddr::new(ia("71-20965"), HostAddr::v4(10, 0, 0, 1)),
            ScionAddr::new(ia("71-2:0:3b"), HostAddr::v4(10, 0, 0, 2)),
            L4Protocol::Udp,
            DataPlanePath::Scion(path),
            b"fast path".to_vec(),
        )
    }

    #[test]
    fn view_agrees_with_decode() {
        let pkt = sample_packet(two_segment_path());
        let wire = pkt.encode().unwrap();
        let view = PacketView::parse(&wire).unwrap();
        assert_eq!(view.dst_ia(), pkt.dst.ia);
        assert_eq!(view.src_ia(), pkt.src.ia);
        assert_eq!(view.offsets().path_type(), PathType::Scion);
        assert!(view.offsets().is_exact_length(&wire));
        let DataPlanePath::Scion(path) = &pkt.path else {
            unreachable!()
        };
        assert_eq!(view.curr_inf(), path.meta.curr_inf as usize);
        assert_eq!(view.curr_hf(), path.meta.curr_hf as usize);
        assert_eq!(view.offsets().segment_count(), 2);
        assert_eq!(view.offsets().total_hops(), 5);
        for i in 0..2 {
            assert_eq!(view.info(i), path.info[i]);
        }
        for j in 0..5 {
            assert_eq!(view.hop(j), path.hops[j]);
            assert_eq!(
                view.offsets().segment_of_hop(j),
                path.segment_of_hop(j),
                "hop {j}"
            );
        }
        assert_eq!(view.current_info(), *path.current_info());
        assert_eq!(view.current_hop(), *path.current_hop());
    }

    #[test]
    fn view_handles_all_address_kinds() {
        for (dst, src) in [
            (HostAddr::V6([1; 16]), HostAddr::v4(1, 2, 3, 4)),
            (
                HostAddr::Svc(ServiceAddr::ControlService),
                HostAddr::V6([2; 16]),
            ),
            (
                HostAddr::Svc(ServiceAddr::Discovery),
                HostAddr::Svc(ServiceAddr::None),
            ),
        ] {
            let mut pkt = sample_packet(two_segment_path());
            pkt.dst.host = dst;
            pkt.src.host = src;
            let wire = pkt.encode().unwrap();
            let view = PacketView::parse(&wire).unwrap();
            assert_eq!(view.dst_ia(), pkt.dst.ia, "{dst:?}/{src:?}");
            assert_eq!(view.current_hop(), two_segment_path().hops[0]);
        }
    }

    #[test]
    fn locate_never_accepts_what_decode_rejects() {
        // Single-byte corruption sweep: anywhere `locate` still accepts the
        // frame, `decode` must accept it too (the fast path must not be more
        // permissive than the reference path).
        let wire = sample_packet(two_segment_path()).encode().unwrap();
        for pos in 0..wire.len() {
            for val in [0x00, 0x01, 0x3f, 0x80, 0xff] {
                let mut w = wire.clone();
                w[pos] = val;
                if HeaderOffsets::locate(&w).is_ok() && !HeaderOffsets::has_hbh_ext(&w) {
                    assert!(
                        ScionPacket::decode(&w).is_ok(),
                        "locate accepted but decode rejected: byte {pos} = {val:#x}"
                    );
                }
            }
        }
        // Truncation sweep.
        for cut in 0..wire.len() {
            assert!(
                HeaderOffsets::locate(&wire[..cut]).is_err(),
                "truncated at {cut}"
            );
        }
    }

    #[test]
    fn cursor_advance_matches_path_advance() {
        let pkt = sample_packet(two_segment_path());
        let mut wire = pkt.encode().unwrap();
        let reference = wire.clone();
        let mut cursor = WireCursor::parse(&mut wire).unwrap();
        for step in 0..4 {
            cursor.advance().unwrap();
            let mut ref_pkt = ScionPacket::decode(&reference).unwrap();
            let DataPlanePath::Scion(p) = &mut ref_pkt.path else {
                unreachable!()
            };
            for _ in 0..=step {
                p.advance().unwrap();
            }
            assert_eq!(cursor.as_bytes(), &ref_pkt.encode().unwrap()[..], "{step}");
        }
        assert!(cursor.at_last_hop());
        assert!(cursor.advance().is_err());
    }

    #[test]
    fn cursor_seg_id_mutation_matches_struct_mutation() {
        let pkt = sample_packet(two_segment_path());
        let mut wire = pkt.encode().unwrap();
        let mut cursor = WireCursor::parse(&mut wire).unwrap();
        cursor.xor_seg_id(0, 0xbeef);
        cursor.set_seg_id(1, 0x1234);
        let mut ref_pkt = pkt.clone();
        let DataPlanePath::Scion(p) = &mut ref_pkt.path else {
            unreachable!()
        };
        p.info[0].seg_id ^= 0xbeef;
        p.info[1].seg_id = 0x1234;
        assert_eq!(wire, ref_pkt.encode().unwrap());
    }

    #[test]
    fn empty_and_one_hop_paths_locate() {
        let mut pkt = sample_packet(two_segment_path());
        pkt.path = DataPlanePath::Empty;
        let wire = pkt.encode().unwrap();
        let view = PacketView::parse(&wire).unwrap();
        assert_eq!(view.offsets().path_type(), PathType::Empty);
        assert_eq!(view.offsets().total_hops(), 0);

        let sp = two_segment_path();
        pkt.path = DataPlanePath::OneHop {
            info: sp.info[0],
            first_hop: sp.hops[0],
            second_hop: hf(0, 0),
        };
        let wire = pkt.encode().unwrap();
        let view = PacketView::parse(&wire).unwrap();
        assert_eq!(view.offsets().path_type(), PathType::OneHop);
    }

    #[test]
    fn traced_frame_flagged_for_fallback() {
        let mut pkt = sample_packet(two_segment_path());
        pkt.trace = Some(crate::trace::TraceContext::root(7));
        let wire = pkt.encode().unwrap();
        assert!(HeaderOffsets::has_hbh_ext(&wire));
        // The header region itself still locates fine.
        assert!(HeaderOffsets::locate(&wire).is_ok());
        assert!(!HeaderOffsets::has_hbh_ext(
            &sample_packet(two_segment_path()).encode().unwrap()
        ));
    }

    #[test]
    fn reserved_bits_break_canonical_form() {
        let wire = sample_packet(two_segment_path()).encode().unwrap();
        let off = HeaderOffsets::locate(&wire).unwrap();
        assert!(off.is_canonical(&wire), "encode output must be canonical");

        // Every decode-ignored bit: setting it must flip `is_canonical`
        // while decode still accepts the frame (it canonicalises instead).
        let meta_off = COMMON_HDR_LEN + IA_HDR_LEN + 4 + 4;
        let info0 = meta_off + PATH_META_LEN;
        let hop0 = info0 + 2 * INFO_FIELD_LEN;
        let cases = [
            (10, 0x40, "common RSV[0]"),
            (11, 0x01, "common RSV[1]"),
            (meta_off + 1, 0x80, "path-meta RSV bits"),
            (info0, 0x80, "info flag padding"),
            (info0 + 1, 0xff, "info RSV byte"),
            (hop0, 0x80, "hop flag padding"),
        ];
        for (pos, bits, what) in cases {
            let mut w = wire.clone();
            w[pos] |= bits;
            let off = HeaderOffsets::locate(&w).unwrap();
            assert!(!off.is_canonical(&w), "{what} not caught");
            let reencoded = ScionPacket::decode(&w).unwrap().encode().unwrap();
            assert_eq!(reencoded, wire, "{what}: decode should canonicalise");
        }
    }

    #[test]
    fn svc_padding_breaks_canonical_form() {
        let mut pkt = sample_packet(two_segment_path());
        pkt.dst.host = HostAddr::Svc(ServiceAddr::ControlService);
        pkt.src.host = HostAddr::Svc(ServiceAddr::Discovery);
        let wire = pkt.encode().unwrap();
        let off = HeaderOffsets::locate(&wire).unwrap();
        assert!(off.is_canonical(&wire));
        let addr_base = COMMON_HDR_LEN + IA_HDR_LEN;
        for pos in [addr_base + 2, addr_base + 3, addr_base + 6, addr_base + 7] {
            let mut w = wire.clone();
            w[pos] = 0xaa;
            let off = HeaderOffsets::locate(&w).unwrap();
            assert!(!off.is_canonical(&w), "svc padding byte {pos} not caught");
            assert_eq!(
                ScionPacket::decode(&w).unwrap().encode().unwrap(),
                wire,
                "svc padding byte {pos}: decode should canonicalise"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_not_exact_length() {
        let mut wire = sample_packet(two_segment_path()).encode().unwrap();
        wire.push(0);
        let off = HeaderOffsets::locate(&wire).unwrap();
        assert!(!off.is_exact_length(&wire));
    }
}
