//! Persistent, structurally-shared append chains.
//!
//! [`Chain`] is an immutable cons list over [`std::sync::Arc`] nodes,
//! newest element at the head. [`push`](Chain::push) returns a *new*
//! chain whose prefix is shared with the original — one node allocation,
//! two `Arc` bumps, no copying — which is exactly the shape beacon
//! propagation needs: every AS that extends a path-construction beacon
//! appends one entry to a prefix that tens of neighbors also extend.
//! With a flat `Vec` representation each of those extensions deep-copies
//! the whole prefix (O(segment-length) allocations per offer); with a
//! chain they share it (O(1) per offer), and a flat view is materialized
//! only when something needs one ([`Chain::collect_refs`]).
//!
//! The chain is deliberately minimal — push, length, reverse iteration,
//! and an in-order reference collector — because its one consumer is the
//! control plane's copy-on-extend segment
//! (`scion_control::segment::CowSegment`). It lives here in the
//! wire-format crate next to the path types it represents prefixes of.

use std::sync::Arc;

/// One element of a [`Chain`], holding the payload and the shared prefix.
struct Node<T> {
    item: T,
    prev: Option<Arc<Node<T>>>,
    /// Elements up to and including this node (cached so `len` is O(1)).
    len: usize,
}

/// An immutable, structurally-shared append-only list.
///
/// `Clone` is two machine words and an `Arc` bump; [`push`](Self::push)
/// allocates exactly one node and shares the entire prefix with the
/// source chain.
pub struct Chain<T> {
    head: Option<Arc<Node<T>>>,
}

impl<T> Chain<T> {
    /// The empty chain.
    pub const fn new() -> Self {
        Chain { head: None }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.head.as_ref().map_or(0, |n| n.len)
    }

    /// Whether the chain has no elements.
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// A new chain with `item` appended; `self` is untouched and shares
    /// every existing node with the result.
    pub fn push(&self, item: T) -> Chain<T> {
        Chain {
            head: Some(Arc::new(Node {
                item,
                prev: self.head.clone(),
                len: self.len() + 1,
            })),
        }
    }

    /// The most recently pushed element.
    pub fn last(&self) -> Option<&T> {
        self.head.as_ref().map(|n| &n.item)
    }

    /// Iterates newest → oldest (reverse insertion order).
    pub fn iter_rev(&self) -> IterRev<'_, T> {
        IterRev {
            node: self.head.as_deref(),
        }
    }

    /// References to every element in insertion order (oldest first).
    /// O(len) pointer chasing plus one `Vec` allocation — the
    /// materialization step of the copy-on-extend discipline.
    pub fn collect_refs(&self) -> Vec<&T> {
        let mut out: Vec<&T> = Vec::with_capacity(self.len());
        out.extend(self.iter_rev());
        out.reverse();
        out
    }
}

impl<T> Default for Chain<T> {
    fn default() -> Self {
        Chain::new()
    }
}

impl<T> Clone for Chain<T> {
    fn clone(&self) -> Self {
        Chain {
            head: self.head.clone(),
        }
    }
}

impl<T> Drop for Chain<T> {
    /// Iterative teardown: unwind uniquely-owned nodes in a loop instead
    /// of letting `Arc`'s recursive drop walk the prefix on the call
    /// stack (a long uniquely-held chain would otherwise overflow it).
    /// The first shared node ends the walk — its other owners keep the
    /// rest of the prefix alive.
    fn drop(&mut self) {
        let mut cur = self.head.take();
        while let Some(node) = cur {
            match Arc::try_unwrap(node) {
                Ok(mut n) => cur = n.prev.take(),
                Err(_) => break,
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Chain<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.collect_refs()).finish()
    }
}

/// Newest-to-oldest iterator over a [`Chain`].
pub struct IterRev<'a, T> {
    node: Option<&'a Node<T>>,
}

impl<'a, T> Iterator for IterRev<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let n = self.node?;
        self.node = n.prev.as_deref();
        Some(&n.item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shares_the_prefix() {
        let base = Chain::new().push(1).push(2);
        let a = base.push(3);
        let b = base.push(4);
        assert_eq!(base.collect_refs(), vec![&1, &2]);
        assert_eq!(a.collect_refs(), vec![&1, &2, &3]);
        assert_eq!(b.collect_refs(), vec![&1, &2, &4]);
        assert_eq!(base.len(), 2);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn empty_chain_basics() {
        let c: Chain<u8> = Chain::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.last().is_none());
        assert!(c.collect_refs().is_empty());
        assert_eq!(c.iter_rev().count(), 0);
    }

    #[test]
    fn last_and_reverse_iteration() {
        let c = Chain::new().push("a").push("b").push("c");
        assert_eq!(c.last(), Some(&"c"));
        let rev: Vec<&&str> = c.iter_rev().collect();
        assert_eq!(rev, vec![&"c", &"b", &"a"]);
    }

    #[test]
    fn clone_is_shallow_and_independent() {
        let a = Chain::new().push(10).push(20);
        let b = a.clone();
        let a2 = a.push(30);
        assert_eq!(b.collect_refs(), vec![&10, &20]);
        assert_eq!(a2.collect_refs(), vec![&10, &20, &30]);
    }

    #[test]
    fn long_unique_chain_drops_without_recursion() {
        // 200k nodes would overflow the stack under recursive drop.
        let mut c = Chain::new();
        for i in 0..200_000u32 {
            c = c.push(i);
        }
        assert_eq!(c.len(), 200_000);
        drop(c);
    }

    #[test]
    fn shared_prefix_survives_sibling_drop() {
        let base = Chain::new().push(1).push(2);
        let a = base.push(3);
        drop(base);
        drop(a.clone());
        assert_eq!(a.collect_refs(), vec![&1, &2, &3]);
    }
}
