//! The IP-UDP "Layer 2.5" underlay encapsulation.
//!
//! §4.3.1 of the paper: IP is repurposed as a bridging layer to carry SCION
//! packets across IP-routed segments *within* an AS, while SCION remains the
//! inter-AS layer 3. Every SCION frame on such a segment is a UDP datagram
//! addressed to the receiving component's underlay endpoint.
//!
//! The frame format here is a minimal IP/UDP stand-in sized like the real
//! thing (IPv4 20 B + UDP 8 B), so per-packet overhead in throughput
//! experiments is faithful.

use serde::{Deserialize, Serialize};

use crate::ProtoError;

/// The default UDP underlay port of the legacy shared dispatcher (§4.8).
pub const DISPATCHER_PORT: u16 = 30041;
/// Start of the ephemeral range used by dispatcherless applications.
pub const EPHEMERAL_PORT_START: u16 = 31000;

/// An underlay endpoint: an intra-AS IPv4 address and UDP port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UnderlayAddr {
    /// IPv4 address on the AS-internal network.
    pub ip: [u8; 4],
    /// UDP port.
    pub port: u16,
}

impl UnderlayAddr {
    /// Convenience constructor.
    pub fn new(ip: [u8; 4], port: u16) -> Self {
        UnderlayAddr { ip, port }
    }
}

impl core::fmt::Display for UnderlayAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{}",
            self.ip[0], self.ip[1], self.ip[2], self.ip[3], self.port
        )
    }
}

/// Overhead of the underlay headers in bytes (IPv4 20 + UDP 8).
pub const UNDERLAY_OVERHEAD: usize = 28;

/// A layer-2.5 frame: underlay source/destination plus the SCION packet
/// bytes as UDP payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnderlayFrame {
    /// Underlay source endpoint.
    pub src: UnderlayAddr,
    /// Underlay destination endpoint.
    pub dst: UnderlayAddr,
    /// The encapsulated SCION packet bytes.
    pub scion: Vec<u8>,
}

impl UnderlayFrame {
    /// Wraps SCION packet bytes for transmission on an IP segment.
    pub fn encapsulate(src: UnderlayAddr, dst: UnderlayAddr, scion: Vec<u8>) -> Self {
        UnderlayFrame { src, dst, scion }
    }

    /// Total on-the-wire size including underlay overhead.
    pub fn wire_len(&self) -> usize {
        UNDERLAY_OVERHEAD + self.scion.len()
    }

    /// Serialises the frame (compact stand-in IPv4+UDP header, then payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        // Stand-in IPv4 header: version/ihl, tos, total length, then the
        // two addresses; remaining IPv4 fields are fixed filler so the
        // overhead matches the real 20 bytes.
        out.push(0x45);
        out.push(0);
        out.extend_from_slice(&((self.wire_len()) as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0, 0, 0, 64, 17, 0, 0]); // id/frag/ttl/proto=UDP/cksum
        out.extend_from_slice(&self.src.ip);
        out.extend_from_slice(&self.dst.ip);
        // UDP header.
        out.extend_from_slice(&self.src.port.to_be_bytes());
        out.extend_from_slice(&self.dst.port.to_be_bytes());
        out.extend_from_slice(&((8 + self.scion.len()) as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&self.scion);
        out
    }

    /// Parses a frame.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        crate::need("underlay frame", buf, UNDERLAY_OVERHEAD)?;
        if buf[0] != 0x45 {
            return Err(ProtoError::InvalidField {
                field: "underlay version/ihl",
                detail: format!("expected 0x45, got {:#x}", buf[0]),
            });
        }
        if buf[9] != 17 {
            return Err(ProtoError::InvalidField {
                field: "underlay proto",
                detail: format!("expected UDP (17), got {}", buf[9]),
            });
        }
        let total = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if total < UNDERLAY_OVERHEAD || total > buf.len() {
            return Err(ProtoError::InvalidField {
                field: "underlay length",
                detail: format!("total {total} vs buffer {}", buf.len()),
            });
        }
        let src_ip = [buf[12], buf[13], buf[14], buf[15]];
        let dst_ip = [buf[16], buf[17], buf[18], buf[19]];
        let src_port = u16::from_be_bytes([buf[20], buf[21]]);
        let dst_port = u16::from_be_bytes([buf[22], buf[23]]);
        let udp_len = u16::from_be_bytes([buf[24], buf[25]]) as usize;
        if udp_len != total - 20 {
            return Err(ProtoError::InvalidField {
                field: "underlay udp length",
                detail: format!("udp length {udp_len} inconsistent with total {total}"),
            });
        }
        Ok(UnderlayFrame {
            src: UnderlayAddr::new(src_ip, src_port),
            dst: UnderlayAddr::new(dst_ip, dst_port),
            scion: buf[UNDERLAY_OVERHEAD..total].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = UnderlayFrame::encapsulate(
            UnderlayAddr::new([192, 168, 1, 10], 31000),
            UnderlayAddr::new([10, 0, 5, 1], DISPATCHER_PORT),
            b"scion packet bytes".to_vec(),
        );
        let wire = f.encode();
        assert_eq!(wire.len(), f.wire_len());
        assert_eq!(UnderlayFrame::decode(&wire).unwrap(), f);
    }

    #[test]
    fn roundtrip_empty_payload() {
        let f = UnderlayFrame::encapsulate(
            UnderlayAddr::new([1, 2, 3, 4], 1),
            UnderlayAddr::new([5, 6, 7, 8], 2),
            vec![],
        );
        assert_eq!(UnderlayFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn overhead_matches_ipv4_udp() {
        let f = UnderlayFrame::encapsulate(
            UnderlayAddr::new([0, 0, 0, 0], 0),
            UnderlayAddr::new([0, 0, 0, 0], 0),
            vec![0xab; 100],
        );
        assert_eq!(f.wire_len() - 100, 28);
    }

    #[test]
    fn rejects_non_udp_and_truncation() {
        let f = UnderlayFrame::encapsulate(
            UnderlayAddr::new([1, 1, 1, 1], 9),
            UnderlayAddr::new([2, 2, 2, 2], 9),
            b"x".to_vec(),
        );
        let mut wire = f.encode();
        assert!(UnderlayFrame::decode(&wire[..10]).is_err());
        wire[9] = 6; // TCP
        assert!(UnderlayFrame::decode(&wire).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            UnderlayAddr::new([10, 0, 0, 1], 30041).to_string(),
            "10.0.0.1:30041"
        );
    }
}
