//! SCMP — the SCION Control Message Protocol.
//!
//! The measurement campaign of §5.4 is built on SCMP echo (the SCION
//! equivalent of ICMP ping); border routers additionally emit
//! external-interface-down and internal-connectivity-down notifications
//! that path-aware end hosts use to fail over instantly.
//!
//! Message layout: 4-byte header (type, code, checksum) followed by a
//! type-specific body.

use serde::{Deserialize, Serialize};

use crate::addr::IsdAsn;
use crate::ProtoError;

/// SCMP message type values.
mod ty {
    pub const DEST_UNREACHABLE: u8 = 1;
    pub const PACKET_TOO_BIG: u8 = 2;
    pub const PARAMETER_PROBLEM: u8 = 4;
    pub const EXTERNAL_INTERFACE_DOWN: u8 = 5;
    pub const INTERNAL_CONNECTIVITY_DOWN: u8 = 6;
    pub const ECHO_REQUEST: u8 = 128;
    pub const ECHO_REPLY: u8 = 129;
    pub const TRACEROUTE_REQUEST: u8 = 130;
    pub const TRACEROUTE_REPLY: u8 = 131;
}

/// A parsed SCMP message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScmpMessage {
    /// Echo request with identifier, sequence number and opaque data.
    EchoRequest {
        /// Sender-chosen identifier (like ICMP id).
        id: u16,
        /// Monotonic sequence number.
        seq: u16,
        /// Opaque payload, echoed back verbatim.
        data: Vec<u8>,
    },
    /// Echo reply mirroring the request.
    EchoReply {
        /// Identifier from the request.
        id: u16,
        /// Sequence number from the request.
        seq: u16,
        /// Payload from the request.
        data: Vec<u8>,
    },
    /// The destination could not be reached (code disambiguates).
    DestinationUnreachable {
        /// Reason code (0 = no route, 1 = denied, 4 = port unreachable).
        code: u8,
    },
    /// A border router's inter-AS link is down.
    ExternalInterfaceDown {
        /// AS originating the notification.
        ia: IsdAsn,
        /// The interface identifier that went down.
        interface: u64,
    },
    /// Connectivity between two interfaces inside an AS is down.
    InternalConnectivityDown {
        /// AS originating the notification.
        ia: IsdAsn,
        /// Ingress interface.
        ingress: u64,
        /// Egress interface.
        egress: u64,
    },
    /// Traceroute probe directed at a hop with the router-alert flag.
    TracerouteRequest {
        /// Sender-chosen identifier.
        id: u16,
        /// Sequence number.
        seq: u16,
    },
    /// Traceroute answer carrying the replying AS and interface.
    TracerouteReply {
        /// Identifier from the request.
        id: u16,
        /// Sequence number from the request.
        seq: u16,
        /// Replying AS.
        ia: IsdAsn,
        /// Replying interface identifier.
        interface: u64,
    },
}

impl ScmpMessage {
    /// True for informational (echo/traceroute) messages, false for errors.
    pub fn is_informational(&self) -> bool {
        matches!(
            self,
            ScmpMessage::EchoRequest { .. }
                | ScmpMessage::EchoReply { .. }
                | ScmpMessage::TracerouteRequest { .. }
                | ScmpMessage::TracerouteReply { .. }
        )
    }

    /// Serialises the message (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            ScmpMessage::EchoRequest { id, seq, data } => {
                out.push(ty::ECHO_REQUEST);
                out.push(0);
                out.extend_from_slice(&[0, 0]); // checksum (computed over underlay in sim)
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(data);
            }
            ScmpMessage::EchoReply { id, seq, data } => {
                out.push(ty::ECHO_REPLY);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(data);
            }
            ScmpMessage::DestinationUnreachable { code } => {
                out.push(ty::DEST_UNREACHABLE);
                out.push(*code);
                out.extend_from_slice(&[0, 0]);
            }
            ScmpMessage::ExternalInterfaceDown { ia, interface } => {
                out.push(ty::EXTERNAL_INTERFACE_DOWN);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&ia.to_u64().to_be_bytes());
                out.extend_from_slice(&interface.to_be_bytes());
            }
            ScmpMessage::InternalConnectivityDown {
                ia,
                ingress,
                egress,
            } => {
                out.push(ty::INTERNAL_CONNECTIVITY_DOWN);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&ia.to_u64().to_be_bytes());
                out.extend_from_slice(&ingress.to_be_bytes());
                out.extend_from_slice(&egress.to_be_bytes());
            }
            ScmpMessage::TracerouteRequest { id, seq } => {
                out.push(ty::TRACEROUTE_REQUEST);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
            }
            ScmpMessage::TracerouteReply {
                id,
                seq,
                ia,
                interface,
            } => {
                out.push(ty::TRACEROUTE_REPLY);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&ia.to_u64().to_be_bytes());
                out.extend_from_slice(&interface.to_be_bytes());
            }
        }
        out
    }

    /// Parses a message from the wire.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        crate::need("scmp header", buf, 4)?;
        let (t, code) = (buf[0], buf[1]);
        let body = &buf[4..];
        match t {
            ty::ECHO_REQUEST | ty::ECHO_REPLY => {
                crate::need("scmp echo", body, 4)?;
                let id = u16::from_be_bytes([body[0], body[1]]);
                let seq = u16::from_be_bytes([body[2], body[3]]);
                let data = body[4..].to_vec();
                Ok(if t == ty::ECHO_REQUEST {
                    ScmpMessage::EchoRequest { id, seq, data }
                } else {
                    ScmpMessage::EchoReply { id, seq, data }
                })
            }
            ty::DEST_UNREACHABLE => Ok(ScmpMessage::DestinationUnreachable { code }),
            ty::EXTERNAL_INTERFACE_DOWN => {
                crate::need("scmp ext-if-down", body, 16)?;
                Ok(ScmpMessage::ExternalInterfaceDown {
                    ia: IsdAsn::from_u64(u64::from_be_bytes(body[..8].try_into().unwrap())),
                    interface: u64::from_be_bytes(body[8..16].try_into().unwrap()),
                })
            }
            ty::INTERNAL_CONNECTIVITY_DOWN => {
                crate::need("scmp int-conn-down", body, 24)?;
                Ok(ScmpMessage::InternalConnectivityDown {
                    ia: IsdAsn::from_u64(u64::from_be_bytes(body[..8].try_into().unwrap())),
                    ingress: u64::from_be_bytes(body[8..16].try_into().unwrap()),
                    egress: u64::from_be_bytes(body[16..24].try_into().unwrap()),
                })
            }
            ty::TRACEROUTE_REQUEST => {
                crate::need("scmp traceroute", body, 4)?;
                Ok(ScmpMessage::TracerouteRequest {
                    id: u16::from_be_bytes([body[0], body[1]]),
                    seq: u16::from_be_bytes([body[2], body[3]]),
                })
            }
            ty::TRACEROUTE_REPLY => {
                crate::need("scmp traceroute reply", body, 20)?;
                Ok(ScmpMessage::TracerouteReply {
                    id: u16::from_be_bytes([body[0], body[1]]),
                    seq: u16::from_be_bytes([body[2], body[3]]),
                    ia: IsdAsn::from_u64(u64::from_be_bytes(body[4..12].try_into().unwrap())),
                    interface: u64::from_be_bytes(body[12..20].try_into().unwrap()),
                })
            }
            ty::PACKET_TOO_BIG | ty::PARAMETER_PROBLEM => Err(ProtoError::InvalidField {
                field: "scmp type",
                detail: format!("type {t} recognised but not modelled"),
            }),
            other => Err(ProtoError::InvalidField {
                field: "scmp type",
                detail: format!("unknown type {other}"),
            }),
        }
    }

    /// Builds the matching echo reply for an echo request, or `None`.
    pub fn echo_reply_for(&self) -> Option<ScmpMessage> {
        match self {
            ScmpMessage::EchoRequest { id, seq, data } => Some(ScmpMessage::EchoReply {
                id: *id,
                seq: *seq,
                data: data.clone(),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ia;

    fn roundtrip(m: ScmpMessage) {
        let wire = m.encode();
        assert_eq!(ScmpMessage::decode(&wire).unwrap(), m);
    }

    #[test]
    fn echo_roundtrips() {
        roundtrip(ScmpMessage::EchoRequest {
            id: 7,
            seq: 42,
            data: b"ts=123".to_vec(),
        });
        roundtrip(ScmpMessage::EchoReply {
            id: 7,
            seq: 42,
            data: vec![],
        });
    }

    #[test]
    fn error_roundtrips() {
        roundtrip(ScmpMessage::DestinationUnreachable { code: 4 });
        roundtrip(ScmpMessage::ExternalInterfaceDown {
            ia: ia("71-2:0:3b"),
            interface: 9,
        });
        roundtrip(ScmpMessage::InternalConnectivityDown {
            ia: ia("71-20965"),
            ingress: 1,
            egress: 5,
        });
    }

    #[test]
    fn traceroute_roundtrips() {
        roundtrip(ScmpMessage::TracerouteRequest { id: 1, seq: 2 });
        roundtrip(ScmpMessage::TracerouteReply {
            id: 1,
            seq: 2,
            ia: ia("71-225"),
            interface: 17,
        });
    }

    #[test]
    fn echo_reply_for_request() {
        let req = ScmpMessage::EchoRequest {
            id: 3,
            seq: 9,
            data: b"x".to_vec(),
        };
        let rep = req.echo_reply_for().unwrap();
        assert_eq!(
            rep,
            ScmpMessage::EchoReply {
                id: 3,
                seq: 9,
                data: b"x".to_vec()
            }
        );
        assert!(rep.echo_reply_for().is_none());
    }

    #[test]
    fn informational_classification() {
        assert!(ScmpMessage::EchoRequest {
            id: 0,
            seq: 0,
            data: vec![]
        }
        .is_informational());
        assert!(!ScmpMessage::DestinationUnreachable { code: 0 }.is_informational());
        assert!(!ScmpMessage::ExternalInterfaceDown {
            ia: ia("71-225"),
            interface: 1
        }
        .is_informational());
    }

    #[test]
    fn decode_rejects_unknown_and_truncated() {
        assert!(ScmpMessage::decode(&[]).is_err());
        assert!(ScmpMessage::decode(&[250, 0, 0, 0]).is_err());
        assert!(ScmpMessage::decode(&[ty::ECHO_REQUEST, 0, 0, 0, 1]).is_err());
        assert!(ScmpMessage::decode(&[ty::EXTERNAL_INTERFACE_DOWN, 0, 0, 0, 1, 2]).is_err());
    }
}
