//! UDP/SCION — the datagram transport carried inside SCION packets.
//!
//! The header matches classic UDP (8 bytes: source port, destination port,
//! length, checksum); the checksum is computed over a SCION pseudo-header
//! in production. In the simulator we carry a simple XOR-fold checksum so
//! corruption injected by the fault layer is detectable, which is all the
//! evaluation needs.

use serde::{Deserialize, Serialize};

use crate::ProtoError;

/// Size of the UDP header in bytes.
pub const UDP_HDR_LEN: usize = 8;

/// A UDP/SCION datagram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Vec<u8>,
}

fn checksum(src_port: u16, dst_port: u16, payload: &[u8]) -> u16 {
    let mut acc: u16 = 0xffff ^ src_port ^ dst_port ^ (payload.len() as u16);
    for chunk in payload.chunks(2) {
        let w = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        acc ^= w;
    }
    acc
}

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Serialises header + payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(UDP_HDR_LEN + self.payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&((UDP_HDR_LEN + self.payload.len()) as u16).to_be_bytes());
        out.extend_from_slice(&checksum(self.src_port, self.dst_port, &self.payload).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses and validates a datagram.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        crate::need("udp header", buf, UDP_HDR_LEN)?;
        let src_port = u16::from_be_bytes([buf[0], buf[1]]);
        let dst_port = u16::from_be_bytes([buf[2], buf[3]]);
        let len = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        let cksum = u16::from_be_bytes([buf[6], buf[7]]);
        if len < UDP_HDR_LEN || len > buf.len() {
            return Err(ProtoError::InvalidField {
                field: "udp length",
                detail: format!("length {len} vs buffer {}", buf.len()),
            });
        }
        let payload = buf[UDP_HDR_LEN..len].to_vec();
        if checksum(src_port, dst_port, &payload) != cksum {
            return Err(ProtoError::InvalidField {
                field: "udp checksum",
                detail: "checksum mismatch".into(),
            });
        }
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = UdpDatagram::new(31000, 443, b"GET /topology".to_vec());
        assert_eq!(UdpDatagram::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn roundtrip_empty_and_odd_payload() {
        for payload in [vec![], vec![1], vec![1, 2, 3]] {
            let d = UdpDatagram::new(1, 2, payload);
            assert_eq!(UdpDatagram::decode(&d.encode()).unwrap(), d);
        }
    }

    #[test]
    fn corruption_detected() {
        let d = UdpDatagram::new(31000, 443, b"payload".to_vec());
        let mut wire = d.encode();
        wire[10] ^= 0x01;
        assert!(UdpDatagram::decode(&wire).is_err());
    }

    #[test]
    fn header_corruption_detected() {
        let d = UdpDatagram::new(31000, 443, b"payload".to_vec());
        let mut wire = d.encode();
        wire[0] ^= 0x40; // flip a source-port bit
        assert!(UdpDatagram::decode(&wire).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let d = UdpDatagram::new(1, 2, b"abcdef".to_vec());
        let wire = d.encode();
        assert!(UdpDatagram::decode(&wire[..7]).is_err());
        assert!(UdpDatagram::decode(&wire[..wire.len() - 1]).is_err());
    }

    #[test]
    fn bad_length_field_rejected() {
        let d = UdpDatagram::new(1, 2, b"abc".to_vec());
        let mut wire = d.encode();
        wire[4] = 0;
        wire[5] = 4; // < header size
        assert!(UdpDatagram::decode(&wire).is_err());
    }
}
