//! Property-based tests for the wire codecs: arbitrary well-formed values
//! must survive an encode/decode roundtrip, and arbitrary byte soup must
//! never panic the parsers.

use proptest::prelude::*;

use scion_proto::addr::{Asn, HostAddr, IsdAsn, ScionAddr, ServiceAddr};
use scion_proto::encap::{UnderlayAddr, UnderlayFrame};
use scion_proto::packet::{DataPlanePath, L4Protocol, ScionPacket};
use scion_proto::path::{HopField, InfoField, ScionPath};
use scion_proto::scmp::ScmpMessage;
use scion_proto::udp::UdpDatagram;

prop_compose! {
    fn arb_asn()(v in 0u64..(1 << 48)) -> Asn {
        Asn::new(v).unwrap()
    }
}

prop_compose! {
    fn arb_ia()(isd in 0u16..=u16::MAX, asn in arb_asn()) -> IsdAsn {
        IsdAsn::new(isd, asn)
    }
}

fn arb_host() -> impl Strategy<Value = HostAddr> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(HostAddr::V4),
        any::<[u8; 16]>().prop_map(HostAddr::V6),
        Just(HostAddr::Svc(ServiceAddr::ControlService)),
        Just(HostAddr::Svc(ServiceAddr::Discovery)),
    ]
}

prop_compose! {
    fn arb_hop()(ingress_alert: bool, egress_alert: bool, exp_time: u8,
                 cons_ingress: u16, cons_egress: u16, mac: [u8; 6]) -> HopField {
        HopField { ingress_alert, egress_alert, exp_time, cons_ingress, cons_egress, mac }
    }
}

prop_compose! {
    fn arb_info()(peering: bool, cons_dir: bool, seg_id: u16, timestamp: u32) -> InfoField {
        InfoField { peering, cons_dir, seg_id, timestamp }
    }
}

fn arb_path() -> impl Strategy<Value = ScionPath> {
    prop::collection::vec((arb_info(), prop::collection::vec(arb_hop(), 1..8)), 1..=3)
        .prop_map(|segs| ScionPath::from_segments(segs).unwrap())
}

proptest! {
    #[test]
    fn asn_display_parse_roundtrip(asn in arb_asn()) {
        let shown = asn.to_string();
        let parsed: Asn = shown.parse().unwrap();
        prop_assert_eq!(parsed, asn);
    }

    #[test]
    fn ia_u64_roundtrip(ia in arb_ia()) {
        prop_assert_eq!(IsdAsn::from_u64(ia.to_u64()), ia);
    }

    #[test]
    fn ia_display_parse_roundtrip(ia in arb_ia()) {
        let parsed: IsdAsn = ia.to_string().parse().unwrap();
        prop_assert_eq!(parsed, ia);
    }

    #[test]
    fn path_roundtrip(path in arb_path()) {
        let mut buf = Vec::new();
        path.write(&mut buf);
        prop_assert_eq!(ScionPath::parse(&buf).unwrap(), path);
    }

    #[test]
    fn path_reverse_involutive(path in arb_path()) {
        prop_assert_eq!(path.reversed().reversed(), path);
    }

    #[test]
    fn path_reverse_preserves_hop_multiset(path in arb_path()) {
        let mut orig: Vec<_> = path.hops.iter().map(|h| h.to_bytes()).collect();
        let mut rev: Vec<_> = path.reversed().hops.iter().map(|h| h.to_bytes()).collect();
        orig.sort();
        rev.sort();
        prop_assert_eq!(orig, rev);
    }

    #[test]
    fn packet_roundtrip(
        src_ia in arb_ia(), dst_ia in arb_ia(),
        src_host in arb_host(), dst_host in arb_host(),
        path in arb_path(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
        qos: u8, flow in 0u32..(1 << 20),
    ) {
        let mut pkt = ScionPacket::new(
            ScionAddr::new(src_ia, src_host),
            ScionAddr::new(dst_ia, dst_host),
            L4Protocol::Udp,
            DataPlanePath::Scion(path),
            payload,
        );
        pkt.qos = qos;
        pkt.flow_id = flow;
        let wire = pkt.encode().unwrap();
        prop_assert_eq!(ScionPacket::decode(&wire).unwrap(), pkt);
    }

    #[test]
    fn packet_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = ScionPacket::decode(&bytes);
    }

    #[test]
    fn path_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = ScionPath::parse(&bytes);
    }

    #[test]
    fn scmp_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = ScmpMessage::decode(&bytes);
    }

    #[test]
    fn udp_roundtrip(src: u16, dst: u16, payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let d = UdpDatagram::new(src, dst, payload);
        prop_assert_eq!(UdpDatagram::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn udp_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = UdpDatagram::decode(&bytes);
    }

    #[test]
    fn underlay_roundtrip(
        sip: [u8; 4], dip: [u8; 4], sport: u16, dport: u16,
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let f = UnderlayFrame::encapsulate(
            UnderlayAddr::new(sip, sport),
            UnderlayAddr::new(dip, dport),
            payload,
        );
        prop_assert_eq!(UnderlayFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn scmp_echo_roundtrip(id: u16, seq: u16, data in prop::collection::vec(any::<u8>(), 0..64)) {
        let m = ScmpMessage::EchoRequest { id, seq, data };
        prop_assert_eq!(ScmpMessage::decode(&m.encode()).unwrap(), m);
    }
}
