//! Hercules-style multipath bulk transfer (§4.7.1).
//!
//! Hercules is the high-speed file-transfer engine of the SCION
//! Science-DMZ: it stripes a large file across several SCION paths
//! simultaneously, aggregating the bandwidth of disjoint links — the
//! "simultaneous use of all available link options" §5.5 contrasts with
//! backup-only redundancy.
//!
//! The engine here is a faithful transport-level model:
//!
//! * the file is cut into fixed-size chunks tracked by a bitmap;
//! * each path runs an independent AIMD congestion window with per-path
//!   RTT and loss;
//! * a scheduler hands chunks to whichever path has window room (pull
//!   scheduling — fast paths naturally carry more);
//! * lost chunks return to the work queue (selective retransmission).
//!
//! [`simulate_transfer`] advances this state machine over virtual time and
//! reports throughput, per-path contribution and retransmissions; the
//! Science-DMZ example and the multipath-quality benches build on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Transport characteristics of one path, as PAN exposes them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathProfile {
    /// Round-trip time, milliseconds.
    pub rtt_ms: f64,
    /// Bottleneck bandwidth, megabits per second.
    pub bandwidth_mbps: f64,
    /// Random loss probability per chunk.
    pub loss: f64,
}

/// Chunk payload size in bytes (1200 B fits the SCION MTU budget).
pub const CHUNK_SIZE: usize = 1200;

/// Result of a simulated transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferReport {
    /// Total transfer time, seconds.
    pub duration_s: f64,
    /// Goodput, megabits per second.
    pub goodput_mbps: f64,
    /// Chunks delivered per path (index-aligned with the input profiles).
    pub chunks_per_path: Vec<u64>,
    /// Total retransmissions.
    pub retransmissions: u64,
}

#[derive(Debug, Clone)]
struct PathState {
    profile: PathProfile,
    cwnd: f64,
    /// Slow-start threshold; slow start doubles the window up to here.
    ssthresh: f64,
    in_flight: u64,
    /// Virtual clock of this path's next send opportunity, seconds.
    next_free: f64,
    delivered: u64,
}

/// Simulates transferring `file_size` bytes over `paths`, returning the
/// transfer report. Deterministic for a given `seed`.
pub fn simulate_transfer(paths: &[PathProfile], file_size: u64, seed: u64) -> TransferReport {
    assert!(!paths.is_empty(), "at least one path required");
    let total_chunks = file_size.div_ceil(CHUNK_SIZE as u64).max(1);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut states: Vec<PathState> = paths
        .iter()
        .map(|p| PathState {
            profile: *p,
            cwnd: 4.0,
            ssthresh: f64::MAX,
            in_flight: 0,
            next_free: 0.0,
            delivered: 0,
        })
        .collect();

    // Event-driven over (completion_time, path): each dispatched chunk
    // completes one RTT after send (plus serialisation), then frees window.
    // The heap orders by completion time (nanosecond integer key keeps Ord
    // total).
    let mut pending: BinaryHeap<Reverse<(u64, usize, bool)>> = BinaryHeap::new();
    let mut remaining = total_chunks;
    let mut retransmissions = 0u64;
    let mut clock = 0.0f64;

    loop {
        // Dispatch as much as windows allow.
        for (i, st) in states.iter_mut().enumerate() {
            // The usable window is capped at 2x the path's
            // bandwidth-delay product — past that, extra in-flight data
            // only builds queue (a receive-window stand-in).
            let bdp_chunks = (st.profile.bandwidth_mbps * 1e6 / 8.0) * (st.profile.rtt_ms / 1000.0)
                / CHUNK_SIZE as f64;
            let window = st.cwnd.min((bdp_chunks * 2.0).max(4.0));
            while remaining > 0 && (st.in_flight as f64) < window {
                remaining -= 1;
                st.in_flight += 1;
                let ser = (CHUNK_SIZE as f64 * 8.0) / (st.profile.bandwidth_mbps * 1e6);
                let send_at = st.next_free.max(clock);
                st.next_free = send_at + ser;
                let lost = st.profile.loss > 0.0 && rng.gen::<f64>() < st.profile.loss;
                let done_at = st.next_free + st.profile.rtt_ms / 1000.0;
                pending.push(Reverse(((done_at * 1e9) as u64, i, lost)));
            }
        }
        // Advance to the earliest completion.
        let Some(Reverse((done_ns, path_idx, lost))) = pending.pop() else {
            break;
        };
        clock = clock.max(done_ns as f64 / 1e9);
        let st = &mut states[path_idx];
        st.in_flight -= 1;
        if lost {
            // Multiplicative decrease ends slow start; the chunk returns
            // to the queue for selective retransmission.
            st.cwnd = (st.cwnd / 2.0).max(1.0);
            st.ssthresh = st.cwnd;
            remaining += 1;
            retransmissions += 1;
        } else {
            st.delivered += 1;
            if st.cwnd < st.ssthresh {
                st.cwnd += 1.0; // slow start: exponential per RTT
            } else {
                st.cwnd += 1.0 / st.cwnd; // congestion avoidance
            }
        }
    }

    let duration_s = clock.max(1e-9);
    TransferReport {
        duration_s,
        goodput_mbps: file_size as f64 * 8.0 / duration_s / 1e6,
        chunks_per_path: states.iter().map(|s| s.delivered).collect(),
        retransmissions,
    }
}

/// Convenience: the aggregate bandwidth of a path set (the theoretical
/// ceiling multipath transfer approaches on disjoint paths).
pub fn aggregate_bandwidth_mbps(paths: &[PathProfile]) -> f64 {
    paths.iter().map(|p| p.bandwidth_mbps).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(rtt_ms: f64, mbps: f64, loss: f64) -> PathProfile {
        PathProfile {
            rtt_ms,
            bandwidth_mbps: mbps,
            loss,
        }
    }

    const MB: u64 = 1_000_000;

    #[test]
    fn single_path_approaches_link_rate() {
        let r = simulate_transfer(&[path(10.0, 100.0, 0.0)], 50 * MB, 1);
        assert!(
            r.goodput_mbps > 60.0,
            "goodput {} should approach 100 Mbps",
            r.goodput_mbps
        );
        assert!(r.goodput_mbps <= 100.0 + 1e-6);
        assert_eq!(r.retransmissions, 0);
        assert_eq!(r.chunks_per_path.len(), 1);
    }

    #[test]
    fn two_disjoint_paths_aggregate_bandwidth() {
        let single = simulate_transfer(&[path(10.0, 100.0, 0.0)], 50 * MB, 1);
        let dual = simulate_transfer(
            &[path(10.0, 100.0, 0.0), path(12.0, 100.0, 0.0)],
            50 * MB,
            1,
        );
        assert!(
            dual.goodput_mbps > single.goodput_mbps * 1.5,
            "multipath {} vs single {}",
            dual.goodput_mbps,
            single.goodput_mbps
        );
        // Both paths actually carried chunks.
        assert!(dual.chunks_per_path.iter().all(|&c| c > 0));
    }

    #[test]
    fn faster_path_carries_more() {
        let r = simulate_transfer(&[path(10.0, 150.0, 0.0), path(10.0, 50.0, 0.0)], 50 * MB, 1);
        assert!(
            r.chunks_per_path[0] > r.chunks_per_path[1],
            "pull scheduling should favour the fast path: {:?}",
            r.chunks_per_path
        );
    }

    #[test]
    fn loss_causes_retransmissions_but_completes() {
        let r = simulate_transfer(&[path(20.0, 100.0, 0.05)], 5 * MB, 7);
        assert!(r.retransmissions > 0);
        let delivered: u64 = r.chunks_per_path.iter().sum();
        assert_eq!(delivered, (5 * MB).div_ceil(CHUNK_SIZE as u64));
    }

    #[test]
    fn lossy_path_degrades_throughput() {
        let clean = simulate_transfer(&[path(20.0, 100.0, 0.0)], 20 * MB, 3);
        let lossy = simulate_transfer(&[path(20.0, 100.0, 0.03)], 20 * MB, 3);
        assert!(lossy.goodput_mbps < clean.goodput_mbps);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_transfer(&[path(10.0, 100.0, 0.02)], 5 * MB, 42);
        let b = simulate_transfer(&[path(10.0, 100.0, 0.02)], 5 * MB, 42);
        assert_eq!(a, b);
        let c = simulate_transfer(&[path(10.0, 100.0, 0.02)], 5 * MB, 43);
        assert_ne!(a.retransmissions, c.retransmissions);
    }

    #[test]
    fn tiny_file_single_chunk() {
        let r = simulate_transfer(&[path(10.0, 100.0, 0.0)], 100, 1);
        assert_eq!(r.chunks_per_path.iter().sum::<u64>(), 1);
        assert!(r.duration_s >= 0.010, "at least one RTT: {}", r.duration_s);
    }

    #[test]
    fn aggregate_helper() {
        assert_eq!(
            aggregate_bandwidth_mbps(&[path(1.0, 100.0, 0.0), path(1.0, 50.0, 0.0)]),
            150.0
        );
    }

    #[test]
    fn high_rtt_path_still_contributes_on_long_transfer() {
        // A trans-pacific path (180 ms) plus a regional path (20 ms).
        let r = simulate_transfer(
            &[path(20.0, 100.0, 0.0), path(180.0, 100.0, 0.0)],
            100 * MB,
            5,
        );
        let total: u64 = r.chunks_per_path.iter().sum();
        let slow_share = r.chunks_per_path[1] as f64 / total as f64;
        assert!(slow_share > 0.2, "slow path share {slow_share}");
    }
}
