//! The SCION end-host daemon.
//!
//! "The daemon acts as the core of this stack, handling all end host
//! interactions with the SCION control plane. It consolidates critical
//! tasks, such as path lookup and selection, caching path information,
//! providing information about the AS-local SCION services, and
//! maintaining local databases for SCION's public-key infrastructure"
//! (§2). This crate implements exactly that:
//!
//! * [`daemon`] — path lookup against a [`daemon::PathProvider`] with a
//!   TTL- and expiry-aware cache shared by all applications on the host
//!   (the benefit the bootstrapper-dependent/standalone library modes of
//!   §4.2.1 give up).
//! * [`trust`] — the local PKI databases: the TRC store with update
//!   chaining and topology/segment verification helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod trust;

pub use daemon::{Daemon, DaemonConfig, PathProvider};
pub use trust::TrustStore;
