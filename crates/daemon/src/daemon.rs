//! Path lookup and caching.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use sciera_telemetry::{Counter, Event, Severity, Telemetry};
use scion_control::fullpath::FullPath;
use scion_proto::addr::IsdAsn;
use scion_proto::encap::UnderlayAddr;

/// Where the daemon gets raw paths from — in production, the AS control
/// service reached over the intra-AS network; in this reproduction, a
/// handle onto the control plane (`sciera-core` wires it to the segment
/// store + combinator).
pub trait PathProvider {
    /// Fetches (already combined) paths from `src` to `dst` at Unix `now`.
    fn fetch_paths(&self, src: IsdAsn, dst: IsdAsn, now: u64) -> Vec<FullPath>;
}

impl<F> PathProvider for F
where
    F: Fn(IsdAsn, IsdAsn, u64) -> Vec<FullPath>,
{
    fn fetch_paths(&self, src: IsdAsn, dst: IsdAsn, now: u64) -> Vec<FullPath> {
        self(src, dst, now)
    }
}

/// A shared memoized path database is a path provider: daemons plugged
/// into the same `Arc` all hit one combination cache, and a store mutation
/// (generation bump) transparently refreshes what they fetch.
impl PathProvider for std::sync::Arc<Mutex<scion_control::pathdb::PathDb>> {
    fn fetch_paths(&self, src: IsdAsn, dst: IsdAsn, _now: u64) -> Vec<FullPath> {
        scion_control::lock_pathdb(self).paths(src, dst, scion_control::combine::DEFAULT_MAX_PATHS)
    }
}

/// The epoch-snapshot path database is a path provider too: the handle is
/// itself the shared state, lookups run against the published snapshot and
/// never contend with a concurrent writer publishing a new generation.
impl PathProvider for scion_control::epoch::EpochPathDb {
    fn fetch_paths(&self, src: IsdAsn, dst: IsdAsn, _now: u64) -> Vec<FullPath> {
        self.paths(src, dst, scion_control::combine::DEFAULT_MAX_PATHS)
    }
}

/// Daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct DaemonConfig {
    /// Maximum cache age before a refetch, seconds. Production defaults to
    /// minutes; path expiry is enforced independently.
    pub cache_ttl: u64,
    /// Maximum number of destination entries kept.
    pub cache_capacity: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            cache_ttl: 300,
            cache_capacity: 1024,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    paths: Vec<FullPath>,
    fetched_at: u64,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that required a control-plane fetch.
    pub misses: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
}

/// The end-host daemon.
pub struct Daemon<P: PathProvider> {
    /// The AS this host lives in.
    pub local_ia: IsdAsn,
    /// Control-service underlay address (served to applications).
    pub control_service: UnderlayAddr,
    provider: P,
    config: DaemonConfig,
    cache: Mutex<HashMap<IsdAsn, CacheEntry>>,
    stats: Mutex<CacheStats>,
    telemetry: Telemetry,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidated: Counter,
    /// Latest `now` seen by `paths()`, used to timestamp cache events.
    last_now: AtomicU64,
}

impl<P: PathProvider> Daemon<P> {
    /// Creates a daemon.
    pub fn new(
        local_ia: IsdAsn,
        control_service: UnderlayAddr,
        provider: P,
        config: DaemonConfig,
    ) -> Self {
        let telemetry = Telemetry::quiet();
        Daemon {
            local_ia,
            control_service,
            provider,
            config,
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
            hits: telemetry.counter("daemon.cache_hits"),
            misses: telemetry.counter("daemon.cache_misses"),
            evictions: telemetry.counter("daemon.cache_evictions"),
            invalidated: telemetry.counter("daemon.paths_invalidated"),
            telemetry,
            last_now: AtomicU64::new(0),
        }
    }

    /// Re-registers the daemon's cache counters on a shared telemetry handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.hits = telemetry.counter("daemon.cache_hits");
        self.misses = telemetry.counter("daemon.cache_misses");
        self.evictions = telemetry.counter("daemon.cache_evictions");
        self.invalidated = telemetry.counter("daemon.paths_invalidated");
        self.telemetry = telemetry;
    }

    /// Returns usable (unexpired) paths to `dst`, consulting the cache
    /// first. An empty result is also cached (negative caching) until the
    /// TTL elapses, protecting the control plane from lookup storms for
    /// unreachable destinations.
    pub fn paths(&self, dst: IsdAsn, now: u64) -> Vec<FullPath> {
        if dst == self.local_ia {
            return Vec::new(); // AS-local traffic uses the empty path
        }
        self.last_now.fetch_max(now, Ordering::Relaxed);
        {
            let cache = self.cache.lock();
            if let Some(entry) = cache.get(&dst) {
                let fresh = now.saturating_sub(entry.fetched_at) < self.config.cache_ttl;
                if fresh {
                    let live: Vec<FullPath> = entry
                        .paths
                        .iter()
                        .filter(|p| p.expiry() > now)
                        .cloned()
                        .collect();
                    // Serve from cache unless everything expired early.
                    if !live.is_empty() || entry.paths.is_empty() {
                        self.stats.lock().hits += 1;
                        self.hits.inc();
                        return live;
                    }
                }
            }
        }
        self.stats.lock().misses += 1;
        self.misses.inc();
        let paths = self.provider.fetch_paths(self.local_ia, dst, now);
        let live: Vec<FullPath> = paths.iter().filter(|p| p.expiry() > now).cloned().collect();
        let mut cache = self.cache.lock();
        if cache.len() >= self.config.cache_capacity && !cache.contains_key(&dst) {
            // Evict the stalest entry.
            if let Some(victim) = cache
                .iter()
                .min_by_key(|(_, e)| e.fetched_at)
                .map(|(k, _)| *k)
            {
                cache.remove(&victim);
                self.stats.lock().evictions += 1;
                self.evictions.inc();
            }
        }
        cache.insert(
            dst,
            CacheEntry {
                paths: paths.clone(),
                fetched_at: now,
            },
        );
        live
    }

    /// Like [`Daemon::paths`], but returns the paths ranked by a
    /// caller-supplied score: `(bucket, cost)` ascending, ties broken by
    /// hop count then fingerprint, so the order is total and
    /// deterministic. This is the hook measurement-driven selection
    /// plugs into — `scion_pan`'s adaptive policies score each path from
    /// their rolling view of the path-dynamics dataset and the daemon
    /// serves them pre-ranked, cache semantics unchanged.
    pub fn paths_ranked<F>(&self, dst: IsdAsn, now: u64, score: F) -> Vec<FullPath>
    where
        F: Fn(&FullPath) -> (u8, f64),
    {
        let mut scored: Vec<((u8, f64, usize, String), FullPath)> = self
            .paths(dst, now)
            .into_iter()
            .map(|p| {
                let (bucket, cost) = score(&p);
                ((bucket, cost, p.len(), p.fingerprint()), p)
            })
            .collect();
        scored.sort_by(|(a, _), (b, _)| {
            a.0.cmp(&b.0)
                .then(a.1.partial_cmp(&b.1).unwrap_or(core::cmp::Ordering::Equal))
                .then(a.2.cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });
        scored.into_iter().map(|(_, p)| p).collect()
    }

    /// Drops all cached paths (on network migration, §4.2.1).
    pub fn flush_cache(&self) {
        self.cache.lock().clear();
    }

    /// Invalidate every cached path that traverses the given interface —
    /// the daemon-side reaction to an SCMP `ExternalInterfaceDown`.
    pub fn invalidate_interface(&self, ia: IsdAsn, ifid: u16) -> usize {
        let mut removed = 0;
        let mut cache = self.cache.lock();
        for entry in cache.values_mut() {
            let before = entry.paths.len();
            entry
                .paths
                .retain(|p| !p.interfaces().contains(&(ia, ifid)));
            removed += before - entry.paths.len();
        }
        drop(cache);
        self.invalidated.add(removed as u64);
        if removed > 0 && self.telemetry.enabled(Severity::Warn) {
            let at = self
                .last_now
                .load(Ordering::Relaxed)
                .saturating_mul(1_000_000_000);
            self.telemetry.emit(
                Event::new(
                    at,
                    self.local_ia.to_string(),
                    "daemon",
                    Severity::Warn,
                    "paths invalidated",
                )
                .field("ia", ia)
                .field("ifid", ifid)
                .field("removed", removed),
            );
        }
        removed
    }

    /// Reacts to an incoming SCMP error message: connectivity-down
    /// notifications invalidate every cached path over the dead interface,
    /// everything else (echo, traceroute) is not the daemon's business.
    /// Returns how many cached paths were dropped.
    pub fn handle_scmp(&self, msg: &scion_proto::scmp::ScmpMessage) -> usize {
        use scion_proto::scmp::ScmpMessage;
        match msg {
            ScmpMessage::ExternalInterfaceDown { ia, interface } => u16::try_from(*interface)
                .map(|ifid| self.invalidate_interface(*ia, ifid))
                .unwrap_or(0),
            ScmpMessage::InternalConnectivityDown {
                ia,
                ingress,
                egress,
            } => {
                let mut removed = 0;
                for ifid in [ingress, egress] {
                    if let Ok(ifid) = u16::try_from(*ifid) {
                        removed += self.invalidate_interface(*ia, ifid);
                    }
                }
                removed
            }
            _ => 0,
        }
    }

    /// Cache statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_control::fullpath::{PathHop, PathKind};
    use scion_proto::addr::ia;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn fake_path(src: &str, mid: &str, dst: &str) -> FullPath {
        FullPath {
            src: ia(src),
            dst: ia(dst),
            kind: PathKind::SameCore,
            uses: Vec::new(),
            hops: vec![
                PathHop {
                    ia: ia(src),
                    ingress: 0,
                    egress: 1,
                },
                PathHop {
                    ia: ia(mid),
                    ingress: 2,
                    egress: 3,
                },
                PathHop {
                    ia: ia(dst),
                    ingress: 4,
                    egress: 0,
                },
            ],
        }
    }

    struct CountingProvider {
        calls: AtomicU64,
    }

    impl PathProvider for &CountingProvider {
        fn fetch_paths(&self, src: IsdAsn, dst: IsdAsn, _now: u64) -> Vec<FullPath> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            if dst == ia("71-404") {
                return Vec::new();
            }
            vec![fake_path(&src.to_string(), "71-1", &dst.to_string())]
        }
    }

    fn daemon(provider: &CountingProvider) -> Daemon<&CountingProvider> {
        Daemon::new(
            ia("71-100"),
            UnderlayAddr::new([10, 0, 0, 2], 30252),
            provider,
            DaemonConfig {
                cache_ttl: 60,
                cache_capacity: 2,
            },
        )
    }

    #[test]
    fn cache_hit_avoids_refetch() {
        let p = CountingProvider {
            calls: AtomicU64::new(0),
        };
        let d = daemon(&p);
        // fake paths have no segments => expiry 0; use now=0? expiry()>now
        // fails for 0>0. Use uses=[] => expiry()==0, so pick now far below.
        // Instead verify the call-counting behaviour with an unreachable
        // dst (negative caching).
        assert!(d.paths(ia("71-404"), 100).is_empty());
        assert!(d.paths(ia("71-404"), 110).is_empty());
        assert_eq!(p.calls.load(Ordering::SeqCst), 1, "negative entry cached");
        assert_eq!(d.stats().hits, 1);
        assert_eq!(d.stats().misses, 1);
    }

    #[test]
    fn ttl_expiry_triggers_refetch() {
        let p = CountingProvider {
            calls: AtomicU64::new(0),
        };
        let d = daemon(&p);
        d.paths(ia("71-404"), 100);
        d.paths(ia("71-404"), 161); // ttl 60 exceeded
        assert_eq!(p.calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn local_as_needs_no_paths() {
        let p = CountingProvider {
            calls: AtomicU64::new(0),
        };
        let d = daemon(&p);
        assert!(d.paths(ia("71-100"), 0).is_empty());
        assert_eq!(p.calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn capacity_eviction() {
        let p = CountingProvider {
            calls: AtomicU64::new(0),
        };
        let d = daemon(&p); // capacity 2
        d.paths(ia("71-404"), 100);
        d.paths(ia("71-405"), 101);
        d.paths(ia("71-406"), 102); // evicts 71-404 (stalest)
        assert_eq!(d.stats().evictions, 1);
        d.paths(ia("71-404"), 103); // must refetch
        assert_eq!(p.calls.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn flush_cache_forces_refetch() {
        let p = CountingProvider {
            calls: AtomicU64::new(0),
        };
        let d = daemon(&p);
        d.paths(ia("71-404"), 100);
        d.flush_cache();
        d.paths(ia("71-404"), 101);
        assert_eq!(p.calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn interface_invalidation_removes_affected_paths() {
        // Provider returning paths with real hop interfaces; use a dst that
        // yields a path through 71-1 interface 2.
        let p = CountingProvider {
            calls: AtomicU64::new(0),
        };
        let d = Daemon::new(
            ia("71-100"),
            UnderlayAddr::new([10, 0, 0, 2], 30252),
            &p,
            DaemonConfig::default(),
        );
        // Prime the cache (paths expire at 0 but remain stored).
        d.paths(ia("71-200"), 0);
        let removed = d.invalidate_interface(ia("71-1"), 2);
        assert_eq!(removed, 1);
        let removed_again = d.invalidate_interface(ia("71-1"), 2);
        assert_eq!(removed_again, 0);
    }

    #[test]
    fn shared_pathdb_serves_as_provider() {
        use scion_control::beacon::{BeaconConfig, BeaconEngine};
        use scion_control::graph::{ControlGraph, LinkType};
        use scion_control::pathdb::PathDb;
        use std::sync::Arc;

        let mut g = ControlGraph::new();
        g.add_as(ia("71-1"), true);
        g.add_as(ia("71-10"), false);
        g.add_as(ia("71-11"), false);
        g.connect(ia("71-1"), ia("71-10"), LinkType::Child).unwrap();
        g.connect(ia("71-1"), ia("71-11"), LinkType::Child).unwrap();
        let store = BeaconEngine::new(&g, 1_700_000_000, BeaconConfig::default())
            .run()
            .unwrap();
        let db = Arc::new(Mutex::new(PathDb::new(store)));

        let d = Daemon::new(
            ia("71-10"),
            UnderlayAddr::new([10, 0, 0, 2], 30252),
            Arc::clone(&db),
            DaemonConfig::default(),
        );
        let paths = d.paths(ia("71-11"), 1_700_000_100);
        assert!(!paths.is_empty(), "pathdb-backed provider yields paths");
        // A second daemon on the same Arc warms against the same cache.
        let d2 = Daemon::new(
            ia("71-10"),
            UnderlayAddr::new([10, 0, 0, 3], 30252),
            Arc::clone(&db),
            DaemonConfig::default(),
        );
        assert_eq!(d2.paths(ia("71-11"), 1_700_000_100), paths);
        assert!(db.lock().cached_entries() >= 1);
    }

    #[test]
    fn epoch_pathdb_serves_as_provider() {
        use scion_control::beacon::{BeaconConfig, BeaconEngine};
        use scion_control::epoch::EpochPathDb;
        use scion_control::graph::{ControlGraph, LinkType};

        let mut g = ControlGraph::new();
        g.add_as(ia("71-1"), true);
        g.add_as(ia("71-10"), false);
        g.add_as(ia("71-11"), false);
        g.connect(ia("71-1"), ia("71-10"), LinkType::Child).unwrap();
        g.connect(ia("71-1"), ia("71-11"), LinkType::Child).unwrap();
        let store = BeaconEngine::new(&g, 1_700_000_000, BeaconConfig::default())
            .run()
            .unwrap();
        let db = EpochPathDb::new(store);

        let d = Daemon::new(
            ia("71-10"),
            UnderlayAddr::new([10, 0, 0, 2], 30252),
            db.clone(),
            DaemonConfig::default(),
        );
        let paths = d.paths(ia("71-11"), 1_700_000_100);
        assert!(!paths.is_empty(), "epoch provider yields paths");
        // A second daemon on a clone of the handle shares the same
        // snapshot cache — the clone IS the shared state.
        let d2 = Daemon::new(
            ia("71-10"),
            UnderlayAddr::new([10, 0, 0, 3], 30252),
            db.clone(),
            DaemonConfig::default(),
        );
        assert_eq!(d2.paths(ia("71-11"), 1_700_000_100), paths);
        assert!(db.cached_entries() >= 1);
    }

    #[test]
    fn paths_ranked_orders_by_score_then_hops_then_fingerprint() {
        use scion_control::beacon::{BeaconConfig, BeaconEngine};
        use scion_control::graph::{ControlGraph, LinkType};
        use scion_control::pathdb::PathDb;
        use std::sync::Arc;

        // Diamond: two cores, both parenting both leaves, so 71-10 → 71-11
        // has one path through each core.
        let mut g = ControlGraph::new();
        g.add_as(ia("71-1"), true);
        g.add_as(ia("71-2"), true);
        g.add_as(ia("71-10"), false);
        g.add_as(ia("71-11"), false);
        g.connect(ia("71-1"), ia("71-2"), LinkType::Core).unwrap();
        for leaf in ["71-10", "71-11"] {
            g.connect(ia("71-1"), ia(leaf), LinkType::Child).unwrap();
            g.connect(ia("71-2"), ia(leaf), LinkType::Child).unwrap();
        }
        let store = BeaconEngine::new(&g, 1_700_000_000, BeaconConfig::default())
            .run()
            .unwrap();
        let db = Arc::new(Mutex::new(PathDb::new(store)));
        let d = Daemon::new(
            ia("71-10"),
            UnderlayAddr::new([10, 0, 0, 2], 30252),
            db,
            DaemonConfig::default(),
        );
        let now = 1_700_000_100;
        let plain = d.paths(ia("71-11"), now);
        assert!(plain.len() >= 2, "diamond yields both paths");

        // A measurement-driven score: paths through 71-2 are "measured
        // fast", everything else lands in a worse bucket — regardless of
        // hop count.
        let through = |p: &FullPath, core: &str| p.ases().contains(&ia(core));
        let ranked = d.paths_ranked(ia("71-11"), now, |p| {
            if through(p, "71-2") {
                (0, 5.0)
            } else {
                (1, 1.0)
            }
        });
        assert_eq!(ranked.len(), plain.len(), "ranking only reorders");
        assert!(through(&ranked[0], "71-2"), "best bucket first");
        let split = ranked.iter().position(|p| !through(p, "71-2")).unwrap();
        assert!(
            ranked[split..].iter().all(|p| !through(p, "71-2")),
            "buckets stay contiguous"
        );
        // Constant score degrades to hops-then-fingerprint: deterministic.
        let tie = d.paths_ranked(ia("71-11"), now, |_| (0, 0.0));
        let again = d.paths_ranked(ia("71-11"), now, |_| (0, 0.0));
        assert_eq!(
            tie.iter().map(|p| p.fingerprint()).collect::<Vec<_>>(),
            again.iter().map(|p| p.fingerprint()).collect::<Vec<_>>()
        );
        for w in tie.windows(2) {
            assert!(w[0].len() <= w[1].len(), "ties fall back to hop count");
        }
    }

    #[test]
    fn handle_scmp_invalidates_on_connectivity_down() {
        use scion_proto::scmp::ScmpMessage;
        let p = CountingProvider {
            calls: AtomicU64::new(0),
        };
        let d = Daemon::new(
            ia("71-100"),
            UnderlayAddr::new([10, 0, 0, 2], 30252),
            &p,
            DaemonConfig::default(),
        );
        d.paths(ia("71-200"), 0);
        // Echoes are not the daemon's business.
        assert_eq!(
            d.handle_scmp(&ScmpMessage::EchoReply {
                id: 1,
                seq: 1,
                data: vec![]
            }),
            0
        );
        // The mid hop (71-1 ingress 2) dies: the cached path goes with it.
        assert_eq!(
            d.handle_scmp(&ScmpMessage::ExternalInterfaceDown {
                ia: ia("71-1"),
                interface: 2
            }),
            1
        );
        // Re-prime, then kill via internal-connectivity-down on the egress.
        d.flush_cache();
        d.paths(ia("71-200"), 1);
        assert_eq!(
            d.handle_scmp(&ScmpMessage::InternalConnectivityDown {
                ia: ia("71-1"),
                ingress: 9,
                egress: 3
            }),
            1
        );
        // An interface id beyond u16 can never match a simulated hop.
        assert_eq!(
            d.handle_scmp(&ScmpMessage::ExternalInterfaceDown {
                ia: ia("71-1"),
                interface: u64::from(u16::MAX) + 10
            }),
            0
        );
    }
}
