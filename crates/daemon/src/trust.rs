//! The daemon's trust databases.
//!
//! Wraps the CP-PKI building blocks into the daemon-facing operations: hold
//! TRCs (base + chained updates), verify certificate chains, verify signed
//! topology documents from the bootstrapper, and verify path segments'
//! AS signatures.

use std::collections::HashMap;

use parking_lot::RwLock;

use scion_cppki::cert::CertificateChain;
use scion_cppki::trc::{Trc, TrcStore};
use scion_cppki::PkiError;
use scion_crypto::sign::{Signature, VerifyingKey};
use scion_proto::addr::{IsdAsn, IsdNumber};

/// The trust store: TRCs plus a directory of verified AS keys.
pub struct TrustStore {
    trcs: RwLock<TrcStore>,
    /// AS → verified signing key, populated from verified chains.
    verified_keys: RwLock<HashMap<IsdAsn, VerifyingKey>>,
}

impl Default for TrustStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TrustStore {
    /// Creates an empty trust store.
    pub fn new() -> Self {
        TrustStore {
            trcs: RwLock::new(TrcStore::new()),
            verified_keys: RwLock::new(HashMap::new()),
        }
    }

    /// Installs a base TRC obtained out-of-band (§4.1.2).
    pub fn trust_base_trc(&self, trc: Trc) {
        self.trcs.write().trust_base(trc);
    }

    /// Applies a TRC update received in-band; must chain from the stored
    /// TRC.
    pub fn apply_trc_update(&self, trc: Trc) -> Result<(), PkiError> {
        self.trcs.write().apply_update(trc)
    }

    /// The latest TRC serial for an ISD, if trusted.
    pub fn trc_serial(&self, isd: IsdNumber) -> Option<u32> {
        self.trcs.read().latest(isd).map(|t| t.serial)
    }

    /// Verifies a certificate chain against the stored TRC and, on
    /// success, records the AS key in the directory.
    pub fn verify_chain(&self, chain: &CertificateChain, now: u64) -> Result<(), PkiError> {
        let trcs = self.trcs.read();
        let trc = trcs.latest(chain.as_cert.subject.isd).ok_or_else(|| {
            PkiError::NotFound(format!("TRC for ISD {}", chain.as_cert.subject.isd))
        })?;
        chain.verify(trc, now)?;
        self.verified_keys
            .write()
            .insert(chain.as_cert.subject, chain.as_cert.public_key.clone());
        Ok(())
    }

    /// Verifies an arbitrary signed blob against a previously verified AS
    /// key (the primitive behind topology and segment verification).
    pub fn verify_as_signature(
        &self,
        ia: IsdAsn,
        message: &[u8],
        signature: &Signature,
    ) -> Result<(), PkiError> {
        let keys = self.verified_keys.read();
        let key = keys
            .get(&ia)
            .ok_or_else(|| PkiError::NotFound(format!("no verified key for {ia}")))?;
        key.verify(message, signature)
            .map_err(|_| PkiError::BadSignature(format!("signature by {ia}")))
    }

    /// The verified key of an AS, if known.
    pub fn key_of(&self, ia: IsdAsn) -> Option<VerifyingKey> {
        self.verified_keys.read().get(&ia).cloned()
    }

    /// Number of ASes with verified keys.
    pub fn verified_as_count(&self) -> usize {
        self.verified_keys.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scion_cppki::cert::{CertType, Certificate};
    use scion_cppki::trc::TrcKeyEntry;
    use scion_crypto::sign::SigningKey;
    use scion_proto::addr::ia;

    struct Setup {
        store: TrustStore,
        as_key: SigningKey,
        chain: CertificateChain,
        root_key: SigningKey,
        base_trc: Trc,
    }

    fn setup() -> Setup {
        let root_key = SigningKey::from_seed(b"root");
        let ca_key = SigningKey::from_seed(b"ca");
        let as_key = SigningKey::from_seed(b"as");
        let core = ia("71-20965");
        let trc = Trc {
            isd: IsdNumber(71),
            base: 1,
            serial: 1,
            valid_from: 0,
            valid_until: 1 << 40,
            core_ases: vec![core],
            authoritative_ases: vec![core],
            voting_keys: vec![TrcKeyEntry {
                holder: core,
                key: root_key.verifying_key(),
            }],
            root_keys: vec![TrcKeyEntry {
                holder: core,
                key: root_key.verifying_key(),
            }],
            quorum: 1,
            votes: vec![],
        };
        let ca_cert = Certificate::issue(
            CertType::Ca,
            core,
            ca_key.verifying_key(),
            0,
            1 << 39,
            core,
            1,
            &root_key,
        );
        let as_cert = Certificate::issue(
            CertType::As,
            ia("71-88"),
            as_key.verifying_key(),
            0,
            259_200,
            core,
            2,
            &ca_key,
        );
        let store = TrustStore::new();
        store.trust_base_trc(trc.clone());
        Setup {
            store,
            as_key,
            chain: CertificateChain { as_cert, ca_cert },
            root_key,
            base_trc: trc,
        }
    }

    #[test]
    fn chain_verification_populates_directory() {
        let s = setup();
        assert_eq!(s.store.verified_as_count(), 0);
        s.store.verify_chain(&s.chain, 100).unwrap();
        assert_eq!(s.store.verified_as_count(), 1);
        assert!(s.store.key_of(ia("71-88")).is_some());
    }

    #[test]
    fn signature_verification_uses_directory() {
        let s = setup();
        s.store.verify_chain(&s.chain, 100).unwrap();
        let sig = s.as_key.sign(b"topology bytes");
        s.store
            .verify_as_signature(ia("71-88"), b"topology bytes", &sig)
            .unwrap();
        assert!(s
            .store
            .verify_as_signature(ia("71-88"), b"tampered", &sig)
            .is_err());
        assert!(matches!(
            s.store
                .verify_as_signature(ia("71-99"), b"topology bytes", &sig),
            Err(PkiError::NotFound(_))
        ));
    }

    #[test]
    fn unknown_isd_rejected() {
        let s = setup();
        let mut chain = s.chain.clone();
        chain.as_cert.subject = ia("99-88");
        assert!(matches!(
            s.store.verify_chain(&chain, 100),
            Err(PkiError::NotFound(_))
        ));
    }

    #[test]
    fn trc_update_chain_applies() {
        let s = setup();
        let mut next = s.base_trc.clone();
        next.serial = 2;
        next.votes.clear();
        next.add_vote(ia("71-20965"), &s.root_key);
        s.store.apply_trc_update(next).unwrap();
        assert_eq!(s.store.trc_serial(IsdNumber(71)), Some(2));
    }

    #[test]
    fn unchained_trc_update_rejected() {
        let s = setup();
        let mut next = s.base_trc.clone();
        next.serial = 3; // skips 2
        next.votes.clear();
        next.add_vote(ia("71-20965"), &s.root_key);
        assert!(s.store.apply_trc_update(next).is_err());
        assert_eq!(s.store.trc_serial(IsdNumber(71)), Some(1));
    }
}
