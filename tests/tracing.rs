//! End-to-end causal tracing and path-health observability.
//!
//! The tentpole acceptance tests: a packet crossing several ASes leaves a
//! reconstructable span chain in the flight recorder with strictly monotone
//! per-hop sim times; SCMP probe RTTs agree with the topology's analytic
//! ground truth to within one histogram bucket; and killing a link produces
//! an ext-if-down-correlated health drop with exactly one churn event.

#![cfg(feature = "trace")]

use sciera::prelude::*;
use sciera::telemetry::{hop_latencies, reconstruct_trace, validate_chain, Severity};

/// One octave in the log-bucketed telemetry histogram spans 16 sub-buckets:
/// two values land in the same or adjacent bucket iff they differ by less
/// than `2^(1/16) - 1` relatively.
const ONE_BUCKET_REL: f64 = 0.044_3;

#[test]
fn span_chain_reconstructs_across_the_world() {
    let net = SciEraNetwork::build(NetworkConfig::default());
    net.telemetry().set_min_severity(Severity::Trace);

    let src = ia("71-225"); // Uva Wellassa, Sri Lanka
    let dst = ia("71-2:0:3b"); // several ASes away
    let path = net.paths(src, dst).into_iter().next().expect("live path");
    assert!(path.len() >= 3, "need a >=3-AS path, got {}", path.len());

    let tx_host = net.attach_host(ScionAddr::new(src, HostAddr::v4(10, 0, 0, 1)));
    let rx_host = net.attach_host(ScionAddr::new(dst, HostAddr::v4(10, 0, 0, 2)));
    let mut tx = PanSocket::bind(tx_host.addr, 40100, tx_host.transport());
    let mut rx = PanSocket::bind(rx_host.addr, 40101, rx_host.transport());
    tx.connect(rx_host.addr, 40101).unwrap();
    tx.send(b"traced").unwrap();
    assert!(rx.poll_recv().is_some(), "packet delivered");

    // The host's pkt.send event names the trace; reconstruct from there.
    let events = net.telemetry().flight_recorder().events();
    let send = events
        .iter()
        .find(|e| e.message == "pkt.send")
        .expect("host emitted the root span");
    let trace_id: u64 = send
        .fields
        .iter()
        .find(|(k, _)| k == "trace_id")
        .and_then(|(_, v)| v.parse().ok())
        .expect("trace_id field");

    let chain = reconstruct_trace(&events, trace_id);
    // Host root span + one span per AS on the path.
    let route: Vec<IsdAsn> = path.ases();
    assert_eq!(
        chain.len(),
        route.len() + 1,
        "root + one hop per AS: {chain:#?}"
    );
    validate_chain(&chain).expect("causally sound chain");
    assert_eq!(chain[0].message, "pkt.send");
    assert_eq!(chain.last().unwrap().message, "pkt.deliver");
    // The chain names the exact AS-level route, in order.
    let chain_route: Vec<String> = chain[1..].iter().map(|h| h.node.clone()).collect();
    let expect_route: Vec<String> = route.iter().map(|ia| ia.to_string()).collect();
    assert_eq!(chain_route, expect_route);
    // Strictly monotone per-hop times, and every hop costs at least the
    // per-AS processing overhead (0.75 ms).
    for (node, delta_ns) in hop_latencies(&chain) {
        assert!(
            delta_ns >= 750_000,
            "hop into {node} took {delta_ns} ns < per-AS overhead"
        );
    }
}

#[test]
fn probe_rtt_matches_analytic_ground_truth_within_one_bucket() {
    let net = SciEraNetwork::build(NetworkConfig::default());
    let src = ia("71-225");
    let dst = ia("71-2:0:3b");
    let n = net.register_probe_pair(src, dst);
    assert!(n >= 1);
    for _ in 0..3 {
        net.probe_round();
        net.advance_time(10);
    }

    // Ground truth from an identically-built topology (deterministic).
    let topo = build_control_graph();
    let up = |_: usize| false;
    for path in net.paths(src, dst) {
        let analytic = topo
            .path_rtt_ms(&path, &up)
            .expect("live path has an analytic RTT");
        let rows = net.health_rows();
        let row = rows
            .iter()
            .find(|r| r.src == src && r.dst == dst && r.fingerprint == path.fingerprint())
            .expect("probed path has a health row");
        assert!(row.alive);
        assert!(
            (row.p50_ms - analytic).abs() / analytic < ONE_BUCKET_REL,
            "probe p50 {} vs analytic {} differs by more than one bucket",
            row.p50_ms,
            analytic
        );
    }
}

#[test]
fn link_kill_correlates_ext_if_down_and_churns_once() {
    let net = SciEraNetwork::build(NetworkConfig::default());
    let src = ia("71-225");
    let dst = ia("71-88"); // Princeton: single uplink via BRIDGES
    assert!(net.register_probe_pair(src, dst) >= 1);

    // Round 1: healthy baseline.
    net.probe_round();
    let healthy = net.pair_score(src, dst).expect("scored");
    assert!(healthy > 99.0, "baseline score {healthy}");
    assert_eq!(net.churn_events().len(), 0, "baseline is not churn");

    // The uplink dies; the next campaign must see SCMP ext-if-down.
    assert_eq!(net.set_links("BRIDGES-Princeton", false), 1);
    net.advance_time(10);
    let results = net.probe_round();
    let on_pair: Vec<_> = results
        .iter()
        .filter(|r| r.src == src && r.dst == dst)
        .collect();
    assert!(!on_pair.is_empty());
    assert!(
        on_pair.iter().all(|r| matches!(
            r.outcome,
            sciera::orchestrator::prober::EchoOutcome::ExtIfDown { .. }
        )),
        "every probe over the dead link reports ext-if-down: {on_pair:?}"
    );

    // Health collapsed, correlated with the SCMP notification, exactly one
    // churn event for the pair.
    let dead = net.pair_score(src, dst).unwrap();
    assert!(dead < healthy, "score must drop: {healthy} -> {dead}");
    assert_eq!(dead, 0.0, "every path of the pair is dead");
    let churn: Vec<_> = net
        .churn_events()
        .into_iter()
        .filter(|c| c.src == src && c.dst == dst)
        .collect();
    assert_eq!(churn.len(), 1, "exactly one churn event: {churn:?}");
    assert!(churn[0].added.is_empty());
    assert!(!churn[0].removed.is_empty());

    let snap = net.telemetry().snapshot();
    assert!(snap.counter("health.extif_correlated").unwrap_or(0) >= 1);
    assert!(snap.counter("prober.ext_if_down").unwrap_or(0) >= 1);

    // A third round with nothing changed must not churn again.
    net.advance_time(10);
    net.probe_round();
    assert_eq!(
        net.churn_events()
            .into_iter()
            .filter(|c| c.src == src && c.dst == dst)
            .count(),
        1,
        "steady dead state does not re-churn"
    );
}
