//! Differential property test for the memoized path database: under any
//! interleaving of segment registrations, link-kill invalidations, and
//! path queries on a random topology, [`PathDb`] must return byte-for-byte
//! what the reference combinator computes fresh from the same store. This
//! pins the generation-invalidation scheme: a stale cache hit would show up
//! as a divergence immediately after a mutation.

use proptest::prelude::*;

use sciera::control::beacon::{BeaconConfig, BeaconEngine};
use sciera::control::combine::combine_paths;
use sciera::control::epoch::EpochPathDb;
use sciera::control::graph::{ControlGraph, LinkType};
use sciera::control::pathdb::PathDb;
use sciera::control::segment::{PathSegment, SegmentType};
use sciera::control::store::SegmentStore;
use sciera::prelude::*;

/// A random two-tier topology: cores in a ring plus random extra core
/// links, leaves each multi-homed to 1–2 cores, optional peerings.
#[derive(Debug, Clone)]
struct RandomTopo {
    n_core: usize,
    n_leaf: usize,
    core_edges: Vec<(usize, usize)>,
    leaf_parents: Vec<Vec<usize>>,
    peerings: Vec<(usize, usize)>,
}

/// One step of the interleaved mutation/query schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Register the i-th segment of the rich pool into the store.
    Register(u8),
    /// Kill one interface (AS pick, interface pick) — removes every
    /// segment crossing it and bumps the generation.
    Kill(u8, u8),
    /// Query one ordered pair and compare against the reference.
    Query(u8, u8),
}

fn arb_topo() -> impl Strategy<Value = RandomTopo> {
    (2usize..5, 2usize..6).prop_flat_map(|(n_core, n_leaf)| {
        let core_edges = prop::collection::vec((0..n_core, 0..n_core), 0..n_core * 2);
        let leaf_parents =
            prop::collection::vec(prop::collection::vec(0..n_core, 1..3), n_leaf..=n_leaf);
        let peerings = prop::collection::vec((0..n_leaf, 0..n_leaf), 0..3);
        (Just((n_core, n_leaf)), core_edges, leaf_parents, peerings).prop_map(
            |((n_core, n_leaf), core_edges, leaf_parents, peerings)| RandomTopo {
                n_core,
                n_leaf,
                core_edges,
                leaf_parents,
                peerings,
            },
        )
    })
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(Op::Register),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Kill(a, b)),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Query(a, b)),
        ],
        1..32,
    )
}

fn core_ia(i: usize) -> IsdAsn {
    ia(&format!("71-{}", 100 + i))
}
fn leaf_ia(i: usize) -> IsdAsn {
    ia(&format!("71-{}", 300 + i))
}

fn build(t: &RandomTopo) -> Option<ControlGraph> {
    let mut g = ControlGraph::new();
    for i in 0..t.n_core {
        g.add_as(core_ia(i), true);
    }
    for i in 0..t.n_leaf {
        g.add_as(leaf_ia(i), false);
    }
    for i in 0..t.n_core.saturating_sub(1) {
        g.connect(core_ia(i), core_ia(i + 1), LinkType::Core).ok()?;
    }
    for &(a, b) in &t.core_edges {
        if a != b {
            g.connect(core_ia(a), core_ia(b), LinkType::Core).ok()?;
        }
    }
    for (l, parents) in t.leaf_parents.iter().enumerate() {
        for &p in parents {
            g.connect(core_ia(p), leaf_ia(l), LinkType::Child).ok()?;
        }
    }
    for &(a, b) in &t.peerings {
        if a != b {
            g.connect(leaf_ia(a), leaf_ia(b), LinkType::Peer).ok()?;
        }
    }
    g.validate().ok()?;
    Some(g)
}

/// Registers one pooled segment into a store.
fn register_into(store: &mut SegmentStore, seg: &PathSegment) {
    match seg.seg_type {
        SegmentType::Core => {
            store.register_core(seg.clone());
        }
        SegmentType::UpDown => {
            store.register_up_down(seg.clone());
        }
    }
}

/// Registers one pooled segment into the database's store.
fn register(db: &mut PathDb, seg: &PathSegment) {
    register_into(db.store_mut(), seg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The core differential property: memoized == fresh, always.
    #[test]
    fn pathdb_matches_reference_under_mutation(
        topo in arb_topo(),
        ops in arb_ops(),
        final_picks in prop::collection::vec((any::<u8>(), any::<u8>()), 4),
    ) {
        let Some(graph) = build(&topo) else {
            return Ok(()); // degenerate spec: nothing to check
        };
        // Sparse starting store; a richer beacon run provides the pool of
        // segments the Register ops add incrementally.
        let sparse = BeaconEngine::new(&graph, 1_700_000_000, BeaconConfig {
            candidates_per_origin: 2,
            ..Default::default()
        })
        .run()
        .expect("sparse beaconing converges");
        let rich = BeaconEngine::new(&graph, 1_700_000_000, BeaconConfig {
            candidates_per_origin: 8,
            ..Default::default()
        })
        .run()
        .expect("rich beaconing converges");
        let pool: Vec<PathSegment> = rich.all_segments().cloned().collect();
        prop_assume!(!pool.is_empty());

        let mut db = PathDb::new(sparse);
        let all: Vec<IsdAsn> = graph.ases().map(|a| a.ia).collect();

        for op in &ops {
            match *op {
                Op::Register(i) => {
                    register(&mut db, &pool[i as usize % pool.len()]);
                }
                Op::Kill(a, b) => {
                    let node = graph.as_node(all[a as usize % all.len()]).unwrap();
                    if !node.interfaces.is_empty() {
                        let ifid = node.interfaces[b as usize % node.interfaces.len()].id;
                        db.store_mut().invalidate_interface(node.ia, ifid);
                    }
                }
                Op::Query(s, d) => {
                    let (s, d) = (all[s as usize % all.len()], all[d as usize % all.len()]);
                    if s == d {
                        continue;
                    }
                    let memoized = db.paths(s, d, 64);
                    let fresh = combine_paths(db.store(), s, d, 64);
                    prop_assert_eq!(memoized, fresh, "divergence for {}->{}", s, d);
                }
            }
        }
        // Final sweep: repeated queries (cache hits) still match.
        for &(s, d) in &final_picks {
            let (s, d) = (all[s as usize % all.len()], all[d as usize % all.len()]);
            if s == d {
                continue;
            }
            let memoized = db.paths(s, d, 64);
            let again = db.paths(s, d, 64);
            prop_assert_eq!(&memoized, &again, "warm hit unstable for {}->{}", s, d);
            let fresh = combine_paths(db.store(), s, d, 64);
            prop_assert_eq!(memoized, fresh, "final divergence for {}->{}", s, d);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The epoch-snapshot database must track the mutex reference exactly:
    /// under the same interleaving of registrations, kills and queries on
    /// stores that start identical, every [`EpochPathDb`] query equals both
    /// the fresh combinator against its own published snapshot AND the
    /// mutex [`PathDb`]'s answer byte-for-byte. Built with the `parallel`
    /// feature the epoch side fans prefetch combination over the worker
    /// pool, so running this test in both configs pins the parallel path
    /// against the single-threaded reference.
    #[test]
    fn epoch_pathdb_matches_mutex_reference_under_mutation(
        topo in arb_topo(),
        ops in arb_ops(),
        final_picks in prop::collection::vec((any::<u8>(), any::<u8>()), 4),
    ) {
        let Some(graph) = build(&topo) else {
            return Ok(()); // degenerate spec: nothing to check
        };
        let sparse = BeaconEngine::new(&graph, 1_700_000_000, BeaconConfig {
            candidates_per_origin: 2,
            ..Default::default()
        })
        .run()
        .expect("sparse beaconing converges");
        let rich = BeaconEngine::new(&graph, 1_700_000_000, BeaconConfig {
            candidates_per_origin: 8,
            ..Default::default()
        })
        .run()
        .expect("rich beaconing converges");
        let pool: Vec<PathSegment> = rich.all_segments().cloned().collect();
        prop_assume!(!pool.is_empty());

        let edb = EpochPathDb::new(sparse.clone());
        let mut mdb = PathDb::new(sparse);
        let all: Vec<IsdAsn> = graph.ases().map(|a| a.ia).collect();

        for op in &ops {
            match *op {
                Op::Register(i) => {
                    let seg = &pool[i as usize % pool.len()];
                    edb.mutate_store(|s| register_into(s, seg));
                    register(&mut mdb, seg);
                }
                Op::Kill(a, b) => {
                    let node = graph.as_node(all[a as usize % all.len()]).unwrap();
                    if !node.interfaces.is_empty() {
                        let ifid = node.interfaces[b as usize % node.interfaces.len()].id;
                        edb.mutate_store(|s| s.invalidate_interface(node.ia, ifid));
                        mdb.store_mut().invalidate_interface(node.ia, ifid);
                    }
                }
                Op::Query(s, d) => {
                    let (s, d) = (all[s as usize % all.len()], all[d as usize % all.len()]);
                    if s == d {
                        continue;
                    }
                    let memoized = edb.paths(s, d, 64);
                    let snap = edb.snapshot();
                    let fresh = combine_paths(snap.store(), s, d, 64);
                    prop_assert_eq!(&memoized, &fresh, "epoch != fresh for {}->{}", s, d);
                    let mutex_ref = mdb.paths(s, d, 64);
                    prop_assert_eq!(memoized, mutex_ref, "epoch != mutex for {}->{}", s, d);
                }
            }
        }
        // Final prefetch sweep: warm the remaining pairs in one batch (the
        // worker-pool path under `parallel`), then compare each byte-for-byte
        // against the sequential mutex reference.
        let pairs: Vec<(IsdAsn, IsdAsn)> = final_picks
            .iter()
            .map(|&(s, d)| (all[s as usize % all.len()], all[d as usize % all.len()]))
            .filter(|(s, d)| s != d)
            .collect();
        edb.prefetch(&pairs, 64);
        for &(s, d) in &pairs {
            let memoized = edb.paths(s, d, 64);
            prop_assert_eq!(
                &memoized,
                &mdb.paths(s, d, 64),
                "prefetched epoch != mutex for {}->{}", s, d
            );
            let snap = edb.snapshot();
            prop_assert_eq!(
                memoized,
                combine_paths(snap.store(), s, d, 64),
                "prefetched epoch != fresh for {}->{}", s, d
            );
        }
    }
}

/// A store mutation must flush affected cached entries: after killing an
/// interface every path of a cached pair crosses, the next query reflects
/// the removal (and still matches the reference).
#[test]
fn store_mutation_flushes_affected_entries() {
    let mut g = ControlGraph::new();
    g.add_as(ia("71-100"), true);
    g.add_as(ia("71-101"), true);
    g.add_as(ia("71-300"), false);
    g.add_as(ia("71-301"), false);
    g.connect(ia("71-100"), ia("71-101"), LinkType::Core)
        .unwrap();
    // 71-300 is dual-homed; 71-301 hangs off 71-101 only.
    let (up_if, _) = g
        .connect(ia("71-100"), ia("71-300"), LinkType::Child)
        .unwrap();
    g.connect(ia("71-101"), ia("71-300"), LinkType::Child)
        .unwrap();
    g.connect(ia("71-101"), ia("71-301"), LinkType::Child)
        .unwrap();
    g.validate().unwrap();

    let store = BeaconEngine::new(&g, 1_700_000_000, BeaconConfig::default())
        .run()
        .unwrap();
    let mut db = PathDb::new(store);

    let before = db.paths(ia("71-300"), ia("71-301"), 64);
    assert!(!before.is_empty(), "pair starts connected");
    let via_100: Vec<_> = before
        .iter()
        .filter(|p| p.interfaces().contains(&(ia("71-100"), up_if)))
        .collect();
    assert!(!via_100.is_empty(), "some path uses the 71-100 homing");

    // Kill 71-100's child interface toward 71-300: up segments through it
    // vanish from the store; the cached entry is generation-stale.
    let removed = db.store_mut().invalidate_interface(ia("71-100"), up_if);
    assert!(
        removed > 0,
        "segments crossing the killed interface removed"
    );

    let after = db.paths(ia("71-300"), ia("71-301"), 64);
    assert_eq!(
        after,
        combine_paths(db.store(), ia("71-300"), ia("71-301"), 64),
        "post-mutation query must match the reference"
    );
    assert!(
        after
            .iter()
            .all(|p| !p.interfaces().contains(&(ia("71-100"), up_if))),
        "no surviving path crosses the killed interface"
    );
    assert!(
        !after.is_empty(),
        "the 71-101 homing keeps the pair connected"
    );
    assert_ne!(before, after, "the flushed entry was recombined");
}
