//! Property tests for the path-policy language: the sequence matcher is
//! checked against a brute-force reference (enumerating every possible
//! wildcard split), and the ACL/transit policies against their defining
//! predicates.

use proptest::prelude::*;

use sciera::control::fullpath::{FullPath, PathHop, PathKind};
use sciera::control::policy::{Acl, HopPredicate, Sequence, TransitPolicy};
use sciera::prelude::*;

fn path_from(ases: &[u16]) -> FullPath {
    let hops: Vec<PathHop> = ases
        .iter()
        .enumerate()
        .map(|(i, &n)| PathHop {
            ia: ia(&format!("71-{}", n)),
            ingress: if i == 0 { 0 } else { 1 },
            egress: if i + 1 == ases.len() { 0 } else { 2 },
        })
        .collect();
    FullPath {
        src: hops.first().unwrap().ia,
        dst: hops.last().unwrap().ia,
        kind: PathKind::CoreTransit,
        uses: Vec::new(),
        hops,
    }
}

/// Brute-force reference for sequence matching over a small alphabet:
/// predicates are either a specific AS or the wildcard; recursively try
/// every way the wildcard can absorb a (possibly empty) run.
fn reference_matches(preds: &[Option<u16>], hops: &[u16]) -> bool {
    match preds.split_first() {
        None => hops.is_empty(),
        Some((Some(want), rest)) => hops
            .split_first()
            .map(|(h, tail)| h == want && reference_matches(rest, tail))
            .unwrap_or(false),
        Some((None, rest)) => {
            // Wildcard: consume 0..=len hops.
            (0..=hops.len()).any(|k| reference_matches(rest, &hops[k..]))
        }
    }
}

fn sequence_from(preds: &[Option<u16>]) -> Sequence {
    let text: Vec<String> = preds
        .iter()
        .map(|p| match p {
            Some(n) => format!("71-{n}"),
            None => "0-0".to_string(),
        })
        .collect();
    Sequence::parse(&text.join(" ")).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn sequence_matcher_equals_bruteforce(
        preds in prop::collection::vec(prop::option::weighted(0.6, 1u16..4), 0..5),
        hops in prop::collection::vec(1u16..4, 1..7),
    ) {
        let seq = sequence_from(&preds);
        let path = path_from(&hops);
        let expected = if preds.is_empty() {
            true // empty sequence = no constraint, by definition
        } else {
            reference_matches(&preds, &hops)
        };
        prop_assert_eq!(
            seq.matches(&path),
            expected,
            "preds {:?} vs hops {:?}",
            preds,
            hops
        );
    }

    #[test]
    fn acl_first_match_semantics(
        denied in prop::collection::vec(1u16..6, 0..3),
        hops in prop::collection::vec(1u16..6, 1..6),
    ) {
        let mut acl = Acl::default();
        for d in &denied {
            acl = acl.deny(format!("71-{d}").parse::<HopPredicate>().unwrap());
        }
        let path = path_from(&hops);
        let expected = hops.iter().all(|h| !denied.contains(h));
        prop_assert_eq!(acl.permits(&path), expected);
    }

    #[test]
    fn transit_policy_definition(
        commercial in prop::collection::vec(1u16..6, 0..3),
        hops in prop::collection::vec(1u16..6, 2..6),
    ) {
        let policy = TransitPolicy::new(
            commercial.iter().map(|n| ia(&format!("71-{n}"))).collect(),
        );
        let path = path_from(&hops);
        let is_commercial = |n: &u16| commercial.contains(n);
        let src_c = is_commercial(hops.first().unwrap());
        let dst_c = is_commercial(hops.last().unwrap());
        let all_c = hops.iter().all(is_commercial);
        let expected = !(src_c && dst_c) || all_c;
        prop_assert_eq!(policy.permits(&path), expected);
    }

    #[test]
    fn policy_never_panics_on_arbitrary_sequences(
        text in "[0-9a-z#,: -]{0,40}",
    ) {
        // The parser must reject or accept, never panic.
        let _ = Sequence::parse(&text);
        let _ = text.parse::<HopPredicate>();
    }
}
