//! Property tests over *random* SCION topologies: for any valid AS graph,
//! beaconing must converge, every combined path must satisfy the structural
//! invariants, and every combined path must forward through MAC-verifying
//! routers along exactly its declared AS sequence. This is the control
//! plane's strongest correctness net — it is not tied to the SCIERA
//! deployment shape.

use proptest::prelude::*;

use sciera::control::beacon::{BeaconConfig, BeaconEngine};
use sciera::control::combine::combine_paths;
use sciera::control::graph::{ControlGraph, LinkType};
use sciera::control::segment::AsSecrets;
use sciera::dataplane::router::{BorderRouter, Decision};
use sciera::prelude::*;
use sciera::proto::packet::{DataPlanePath, L4Protocol, ScionPacket};

/// A random multi-level topology: `n_core` core ASes in a partial mesh,
/// `n_mid` mid-tier ASes each attached to 1–2 cores, `n_leaf` leaves each
/// attached to 1–2 mids/cores, plus optional peering links between
/// non-core ASes.
#[derive(Debug, Clone)]
struct RandomTopo {
    n_core: usize,
    n_mid: usize,
    n_leaf: usize,
    core_edges: Vec<(usize, usize)>,
    mid_parents: Vec<Vec<usize>>,  // indices into cores
    leaf_parents: Vec<Vec<usize>>, // indices into mids (or cores if empty mids)
    peerings: Vec<(usize, usize)>, // indices into non-core space
}

fn arb_topo() -> impl Strategy<Value = RandomTopo> {
    (2usize..5, 1usize..4, 1usize..5).prop_flat_map(|(n_core, n_mid, n_leaf)| {
        let core_edges = prop::collection::vec((0..n_core, 0..n_core), n_core - 1..n_core * 2);
        let mid_parents =
            prop::collection::vec(prop::collection::vec(0..n_core, 1..3), n_mid..=n_mid);
        let leaf_parents =
            prop::collection::vec(prop::collection::vec(0..n_mid, 1..3), n_leaf..=n_leaf);
        let peerings = prop::collection::vec((0..n_mid + n_leaf, 0..n_mid + n_leaf), 0..3);
        (
            Just((n_core, n_mid, n_leaf)),
            core_edges,
            mid_parents,
            leaf_parents,
            peerings,
        )
            .prop_map(
                |((n_core, n_mid, n_leaf), core_edges, mid_parents, leaf_parents, peerings)| {
                    RandomTopo {
                        n_core,
                        n_mid,
                        n_leaf,
                        core_edges,
                        mid_parents,
                        leaf_parents,
                        peerings,
                    }
                },
            )
    })
}

fn core_ia(i: usize) -> IsdAsn {
    ia(&format!("71-{}", 100 + i))
}
fn mid_ia(i: usize) -> IsdAsn {
    ia(&format!("71-{}", 200 + i))
}
fn leaf_ia(i: usize) -> IsdAsn {
    ia(&format!("71-{}", 300 + i))
}

/// Builds the graph; returns None when the random spec is degenerate
/// (e.g. no core spanning structure).
fn build(t: &RandomTopo) -> Option<ControlGraph> {
    let mut g = ControlGraph::new();
    for i in 0..t.n_core {
        g.add_as(core_ia(i), true);
    }
    for i in 0..t.n_mid {
        g.add_as(mid_ia(i), false);
    }
    for i in 0..t.n_leaf {
        g.add_as(leaf_ia(i), false);
    }
    // Core ring to guarantee connectivity, plus the random extra edges.
    for i in 0..t.n_core.saturating_sub(1) {
        g.connect(core_ia(i), core_ia(i + 1), LinkType::Core).ok()?;
    }
    for &(a, b) in &t.core_edges {
        if a != b {
            g.connect(core_ia(a), core_ia(b), LinkType::Core).ok()?;
        }
    }
    for (m, parents) in t.mid_parents.iter().enumerate() {
        for &p in parents {
            g.connect(core_ia(p), mid_ia(m), LinkType::Child).ok()?;
        }
    }
    for (l, parents) in t.leaf_parents.iter().enumerate() {
        for &p in parents {
            g.connect(mid_ia(p % t.n_mid.max(1)), leaf_ia(l), LinkType::Child)
                .ok()?;
        }
    }
    let noncore = |i: usize| {
        if i < t.n_mid {
            mid_ia(i)
        } else {
            leaf_ia(i - t.n_mid)
        }
    };
    for &(a, b) in &t.peerings {
        let (x, y) = (
            noncore(a % (t.n_mid + t.n_leaf)),
            noncore(b % (t.n_mid + t.n_leaf)),
        );
        if x != y {
            g.connect(x, y, LinkType::Peer).ok()?;
        }
    }
    g.validate().ok()?;
    Some(g)
}

/// Walks a packet along its path through per-AS routers built from the
/// beacon engine's secrets; returns the AS route taken.
fn walk(
    graph: &ControlGraph,
    secrets: &std::collections::BTreeMap<IsdAsn, std::sync::Arc<AsSecrets>>,
    mut pkt: ScionPacket,
) -> Result<Vec<IsdAsn>, String> {
    let mut current = pkt.src.ia;
    let mut ingress = 0u16;
    let mut route = vec![current];
    for _ in 0..64 {
        let sec = secrets
            .get(&current)
            .ok_or_else(|| format!("no secrets for {current}"))?;
        let mut router = BorderRouter::new(current, sec.hop_key.clone());
        match router
            .process(pkt, ingress, 1_700_000_100)
            .map_err(|e| format!("{current}: {e:?}"))?
        {
            Decision::Deliver(_) => return Ok(route),
            Decision::Forward { ifid, packet } => {
                let (next, next_if) = graph
                    .neighbor_of(current, ifid)
                    .ok_or_else(|| format!("{current} has no interface {ifid}"))?;
                route.push(next);
                current = next;
                ingress = next_if;
                pkt = packet;
            }
        }
    }
    Err("hop budget exceeded".into())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn beacon_combine_forward_on_random_graphs(topo in arb_topo(), src_pick: u8, dst_pick: u8) {
        let Some(graph) = build(&topo) else {
            return Ok(()); // degenerate spec: nothing to check
        };
        let mut engine = BeaconEngine::new(&graph, 1_700_000_000, BeaconConfig::default());
        let store = engine.run().expect("beaconing converges on any valid graph");
        let secrets = engine.secrets().clone();

        // Every registered segment verifies.
        let keys = |ia: IsdAsn| secrets.get(&ia).map(|s| s.signing.verifying_key());
        let hops = |ia: IsdAsn| secrets.get(&ia).map(|s| s.hop_key.clone());
        for seg in store.all_segments() {
            seg.verify(&keys, &hops).expect("registered segment verifies");
        }

        // Pick a random ordered pair of ASes and check all combined paths.
        let all: Vec<IsdAsn> = graph.ases().map(|a| a.ia).collect();
        let s = all[src_pick as usize % all.len()];
        let d = all[dst_pick as usize % all.len()];
        prop_assume!(s != d);
        let paths = combine_paths(&store, s, d, 64);
        for p in &paths {
            // Structural invariants.
            prop_assert_eq!(p.hops.first().unwrap().ia, s);
            prop_assert_eq!(p.hops.last().unwrap().ia, d);
            let mut ases = p.ases();
            let n = ases.len();
            ases.sort();
            ases.dedup();
            prop_assert_eq!(ases.len(), n, "loop in combined path");

            // Data-plane check: the packet follows the declared route.
            let pkt = ScionPacket::new(
                ScionAddr::new(s, HostAddr::v4(10, 0, 0, 1)),
                ScionAddr::new(d, HostAddr::v4(10, 0, 0, 2)),
                L4Protocol::Udp,
                DataPlanePath::Scion(p.to_dataplane().expect("assembles")),
                b"prop".to_vec(),
            );
            let route = walk(&graph, &secrets, pkt)
                .map_err(|e| TestCaseError::fail(format!("walk failed: {e}")))?;
            prop_assert_eq!(route, p.ases());
        }
    }

    #[test]
    fn connected_noncore_pairs_get_paths(topo in arb_topo()) {
        let Some(graph) = build(&topo) else { return Ok(()) };
        let store = BeaconEngine::new(&graph, 1_700_000_000, BeaconConfig::default())
            .run()
            .unwrap();
        // Every leaf can reach every core (the graph is connected by
        // construction: core ring + every non-core has a parent chain).
        for l in 0..topo.n_leaf {
            for c in 0..topo.n_core {
                let paths = combine_paths(&store, leaf_ia(l), core_ia(c), 32);
                prop_assert!(
                    !paths.is_empty(),
                    "leaf {} cannot reach core {}",
                    leaf_ia(l),
                    core_ia(c)
                );
            }
        }
    }
}
