//! Property-based integration tests over the assembled deployment: every
//! path the combiner emits must (a) assemble into a wire-format header,
//! (b) forward through the real border routers along exactly its declared
//! AS sequence, and (c) stay consistent under link failures — if the
//! analytic layer says a path is alive, the data plane delivers over it.

use proptest::prelude::*;

use sciera::prelude::*;
use sciera::proto::packet::{DataPlanePath, L4Protocol, ScionPacket};
use sciera::proto::udp::UdpDatagram;
use sciera::topology::ases::all_ases;

use std::sync::OnceLock;

fn net() -> &'static SciEraNetwork {
    static NET: OnceLock<SciEraNetwork> = OnceLock::new();
    NET.get_or_init(|| SciEraNetwork::build(NetworkConfig::default()))
}

fn isd71() -> Vec<IsdAsn> {
    all_ases()
        .into_iter()
        .filter(|a| a.ia.isd.0 == 71)
        .map(|a| a.ia)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_combined_path_forwards(
        si in 0usize..26,
        di in 0usize..26,
        pick in 0usize..200,
        payload in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let ases = isd71();
        let s = ases[si % ases.len()];
        let d = ases[di % ases.len()];
        prop_assume!(s != d);
        let paths = net().paths(s, d);
        prop_assume!(!paths.is_empty());
        let p = &paths[pick % paths.len()];
        let pkt = ScionPacket::new(
            ScionAddr::new(s, HostAddr::v4(10, 0, 0, 1)),
            ScionAddr::new(d, HostAddr::v4(10, 0, 0, 2)),
            L4Protocol::Udp,
            DataPlanePath::Scion(p.to_dataplane().unwrap()),
            UdpDatagram::new(7, 9, payload.clone()).encode(),
        );
        let delivery = net().walk_packet(pkt).expect("combined path must forward");
        prop_assert_eq!(&delivery.route, &p.ases());
        let dg = UdpDatagram::decode(&delivery.packet.payload).unwrap();
        prop_assert_eq!(dg.payload, payload);
    }

    #[test]
    fn reply_paths_always_forward(
        si in 0usize..26,
        di in 0usize..26,
        pick in 0usize..40,
    ) {
        let ases = isd71();
        let s = ases[si % ases.len()];
        let d = ases[di % ases.len()];
        prop_assume!(s != d);
        let paths = net().paths(s, d);
        prop_assume!(!paths.is_empty());
        let p = &paths[pick % paths.len()];
        let pkt = ScionPacket::new(
            ScionAddr::new(s, HostAddr::v4(10, 0, 0, 1)),
            ScionAddr::new(d, HostAddr::v4(10, 0, 0, 2)),
            L4Protocol::Udp,
            DataPlanePath::Scion(p.to_dataplane().unwrap()),
            UdpDatagram::new(7, 9, b"ping".to_vec()).encode(),
        );
        let delivery = net().walk_packet(pkt).expect("forward leg");
        let (rsrc, rdst, rpath) = delivery.packet.reply_template().expect("reversible");
        let reply = ScionPacket::new(
            rsrc,
            rdst,
            L4Protocol::Udp,
            rpath,
            UdpDatagram::new(9, 7, b"pong".to_vec()).encode(),
        );
        let back = net().walk_packet(reply).expect("reply leg verifies at every hop");
        let mut expected: Vec<IsdAsn> = p.ases();
        expected.reverse();
        prop_assert_eq!(&back.route, &expected);
    }

    #[test]
    fn corrupting_any_hop_field_byte_drops_the_packet(
        hop_byte in 0usize..6,
        hop_pick in 0usize..8,
    ) {
        let s = ia("71-225");
        let d = ia("71-2:0:3b");
        let paths = net().paths(s, d);
        let p = &paths[0];
        let mut dp = p.to_dataplane().unwrap();
        let h = hop_pick % dp.hops.len();
        dp.hops[h].mac[hop_byte] ^= 0x55;
        let pkt = ScionPacket::new(
            ScionAddr::new(s, HostAddr::v4(1, 1, 1, 1)),
            ScionAddr::new(d, HostAddr::v4(2, 2, 2, 2)),
            L4Protocol::Udp,
            DataPlanePath::Scion(dp),
            UdpDatagram::new(1, 2, vec![]).encode(),
        );
        prop_assert!(net().walk_packet(pkt).is_err());
    }
}
