//! SCMP `ExternalInterfaceDown` end to end: the border router emits it,
//! the end-host daemon invalidates every cached path over the dead
//! interface, and the prober independently confirms the outage.

use sciera::daemon::daemon::{Daemon, DaemonConfig};
use sciera::orchestrator::prober::EchoOutcome;
use sciera::pan::socket::PanTransport;
use sciera::prelude::*;
use sciera::proto::encap::UnderlayAddr;
use sciera::proto::packet::{DataPlanePath, L4Protocol, ScionPacket};
use sciera::proto::scmp::ScmpMessage;

#[test]
fn ext_if_down_invalidates_daemon_cache_and_prober_confirms() {
    let net = SciEraNetwork::build(NetworkConfig::default());
    let src = ia("71-225");
    let dst = ia("71-88"); // Princeton: single uplink via BRIDGES

    // An end-host daemon in the source AS, fetching from the live control
    // plane (path lookups honour link state, like a real control service).
    let daemon = Daemon::new(
        src,
        UnderlayAddr::new([10, 0, 0, 2], 30252),
        |s: IsdAsn, d: IsdAsn, _now: u64| net.paths(s, d),
        DaemonConfig::default(),
    );
    let cached = daemon.paths(dst, net.now_unix());
    assert!(!cached.is_empty(), "daemon cached live paths");

    // The prober watches the same pair.
    assert!(net.register_probe_pair(src, dst) >= 1);
    net.probe_round(); // healthy baseline

    // Kill the uplink, then walk a packet into it: the router must emit
    // SCMP ExternalInterfaceDown back to the source host.
    assert_eq!(net.set_links("BRIDGES-Princeton", false), 1);
    let host = net.attach_host(ScionAddr::new(src, HostAddr::v4(10, 0, 0, 77)));
    let pkt = ScionPacket::new(
        host.addr,
        ScionAddr::new(dst, HostAddr::v4(10, 0, 0, 78)),
        L4Protocol::Udp,
        DataPlanePath::Scion(cached[0].to_dataplane().unwrap()),
        sciera::proto::udp::UdpDatagram::new(1, 2, b"x".to_vec()).encode(),
    );
    let err = net.walk_packet(pkt).unwrap_err();
    assert!(matches!(err, sciera::core::NetError::LinkDown { .. }));

    // 1. Router emitted it: the SCMP arrives in the source host's inbox.
    let mut transport = host.transport();
    let scmp_pkt = transport.recv_packet().expect("SCMP notification queued");
    let msg = ScmpMessage::decode(&scmp_pkt.payload).expect("decodes as SCMP");
    let ScmpMessage::ExternalInterfaceDown {
        ia: origin,
        interface,
    } = msg
    else {
        panic!("expected ExternalInterfaceDown, got {msg:?}");
    };
    assert!(interface > 0);

    // 2. Daemon reacts: every cached path over the dead interface dies.
    let removed = daemon.handle_scmp(&msg);
    assert!(removed >= 1, "cached paths invalidated");
    let ifid = u16::try_from(interface).unwrap();
    for p in daemon.paths(dst, net.now_unix()) {
        assert!(
            !p.interfaces().contains(&(origin, ifid)),
            "no surviving cached path crosses the dead interface"
        );
    }

    // 3. Prober confirms: the next campaign sees ext-if-down on the pair,
    // correlated to the same originating AS.
    net.advance_time(10);
    let results = net.probe_round();
    let confirmed = results.iter().any(|r| {
        r.src == src
            && r.dst == dst
            && matches!(
                r.outcome,
                EchoOutcome::ExtIfDown { ia, .. } if ia == origin
            )
    });
    assert!(confirmed, "prober confirms the outage: {results:?}");
    assert_eq!(net.pair_score(src, dst), Some(0.0));
}
