//! Concurrency stress test for the epoch-snapshot path database.
//!
//! N reader threads hammer lookups while one writer interleaves segment
//! registrations (store mutations that publish new generations) with
//! SCMP-style `invalidate_paths_crossing` sweeps (cache-only, generation
//! unchanged). The writer retains every snapshot it publishes in a
//! generation-indexed log; each reader validates every result it is
//! served — byte-for-byte against a fresh `combine_paths` over the store
//! *at the generation the result was served from*. A reader racing a
//! publish may briefly observe a generation the writer has not logged
//! yet; it spins until the log catches up (bounded: the single writer
//! logs each generation before publishing the next).
//!
//! Run with and without `--features parallel`: the assertions are
//! identical, only the prefetch/verify internals change.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sciera::control::beacon::{BeaconConfig, BeaconEngine};
use sciera::control::combine::combine_paths;
use sciera::control::epoch::{EpochPathDb, PathSnapshot};
use sciera::control::graph::{ControlGraph, LinkType};
use sciera::control::segment::{PathSegment, SegmentType};
use sciera::prelude::*;

/// Three cores in a triangle, three leaves per core (each dual-homed to
/// the next core around the ring), one peering — small enough that the
/// per-lookup reference combine stays cheap, rich enough that kills and
/// registrations actually change results.
fn stress_graph() -> ControlGraph {
    let mut g = ControlGraph::new();
    let core = |c: usize| ia(&format!("71-{c}"));
    let leaf = |c: usize, k: usize| ia(&format!("71-{}", 100 * c + k));
    for c in 1..=3 {
        g.add_as(core(c), true);
    }
    for c in 1..=3 {
        for d in c + 1..=3 {
            g.connect(core(c), core(d), LinkType::Core).unwrap();
        }
    }
    for c in 1..=3 {
        for k in 1..=3 {
            g.add_as(leaf(c, k), false);
            g.connect(core(c), leaf(c, k), LinkType::Child).unwrap();
            g.connect(core(c % 3 + 1), leaf(c, k), LinkType::Child)
                .unwrap();
        }
    }
    g.connect(leaf(1, 1), leaf(2, 1), LinkType::Peer).unwrap();
    g.validate().unwrap();
    g
}

/// Tiny deterministic PRNG (xorshift64*) so each thread's schedule is
/// reproducible; only the cross-thread interleaving varies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

type SnapshotLog = Mutex<HashMap<u64, Arc<PathSnapshot>>>;

/// Waits until the writer has logged `generation`, then returns its
/// snapshot. Terminates because generations only exist once published by
/// the single writer, which logs each one right after publishing.
fn snapshot_at(log: &SnapshotLog, generation: u64) -> Arc<PathSnapshot> {
    loop {
        if let Some(s) = log.lock().unwrap().get(&generation) {
            return s.clone();
        }
        std::thread::yield_now();
    }
}

#[test]
fn concurrent_readers_always_see_generation_consistent_paths() {
    let graph = stress_graph();
    let sparse = BeaconEngine::new(
        &graph,
        1_700_000_000,
        BeaconConfig {
            candidates_per_origin: 2,
            ..Default::default()
        },
    )
    .run()
    .unwrap();
    let rich = BeaconEngine::new(
        &graph,
        1_700_000_000,
        BeaconConfig {
            candidates_per_origin: 8,
            ..Default::default()
        },
    )
    .run()
    .unwrap();
    let pool: Vec<PathSegment> = rich.all_segments().cloned().collect();
    assert!(!pool.is_empty());

    let db = EpochPathDb::new(sparse);
    let ases: Vec<IsdAsn> = graph.ases().map(|a| a.ia).collect();
    // Interfaces the crossing sweeps target: every (AS, ifid) in the graph.
    let interfaces: Vec<(IsdAsn, u16)> = graph
        .ases()
        .flat_map(|a| a.interfaces.iter().map(move |i| (a.ia, i.id)))
        .collect();

    let log: SnapshotLog = Mutex::new(HashMap::new());
    {
        let snap = db.snapshot();
        log.lock().unwrap().insert(snap.generation(), snap);
    }
    const READERS: usize = 8;
    const LOOKUPS: usize = 250;
    const WRITER_OPS: usize = 400;

    std::thread::scope(|scope| {
        let writer = {
            let db = db.clone();
            let (log, pool, interfaces) = (&log, &pool, &interfaces);
            scope.spawn(move || {
                let mut rng = Rng::new(0xD0_5eed);
                for i in 0..WRITER_OPS {
                    match i % 4 {
                        // Registration: mutate + publish, then log the
                        // fresh snapshot under its generation.
                        0 | 1 => {
                            let seg = &pool[rng.below(pool.len())];
                            db.mutate_store(|s| match seg.seg_type {
                                SegmentType::Core => {
                                    s.register_core(seg.clone());
                                }
                                SegmentType::UpDown => {
                                    s.register_up_down(seg.clone());
                                }
                            });
                            let snap = db.snapshot();
                            log.lock().unwrap().insert(snap.generation(), snap);
                        }
                        // Interface kill: also a store mutation + publish.
                        2 => {
                            let (ia, ifid) = interfaces[rng.below(interfaces.len())];
                            db.mutate_store(|s| s.invalidate_interface(ia, ifid));
                            let snap = db.snapshot();
                            log.lock().unwrap().insert(snap.generation(), snap);
                        }
                        // SCMP crossing sweep: cache-only, generation and
                        // published snapshot unchanged — nothing to log.
                        _ => {
                            let (ia, ifid) = interfaces[rng.below(interfaces.len())];
                            db.invalidate_paths_crossing(ia, ifid);
                        }
                    }
                    std::thread::yield_now();
                }
            })
        };

        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let db = db.clone();
                let (log, ases) = (&log, &ases);
                scope.spawn(move || {
                    let mut rng = Rng::new((r as u64 + 1).rotate_left(19) ^ 0xC0FFEE);
                    let mut validated = 0usize;
                    for _ in 0..LOOKUPS {
                        let s = ases[rng.below(ases.len())];
                        let d = ases[rng.below(ases.len())];
                        if s == d {
                            continue;
                        }
                        let (paths, generation) = db.paths_with_generation(s, d, 64);
                        let snap = snapshot_at(log, generation);
                        assert_eq!(snap.generation(), generation);
                        assert_eq!(
                            *paths,
                            combine_paths(snap.store(), s, d, 64),
                            "reader {r}: {s}->{d} diverged from the store at \
                             generation {generation}"
                        );
                        validated += 1;
                    }
                    validated
                })
            })
            .collect();

        let mut total = 0usize;
        for r in readers {
            total += r.join().expect("reader panicked");
        }
        writer.join().expect("writer panicked");
        assert!(
            total >= READERS * LOOKUPS / 2,
            "too few validated lookups: {total}"
        );
    });

    // Post-quiescence: the final published state still matches fresh
    // combination for a sweep of pairs.
    let snap = db.snapshot();
    for (i, &s) in ases.iter().enumerate() {
        let d = ases[(i + 5) % ases.len()];
        if s == d {
            continue;
        }
        assert_eq!(db.paths(s, d, 64), combine_paths(snap.store(), s, d, 64));
    }
}
