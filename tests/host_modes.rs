//! Host-stack integration: the §4.2.1 operating modes, the §4.8
//! dispatcher-era vs dispatcherless demultiplexing over real PAN packets,
//! and §4.2.2's Happy Eyeballs fed with RTTs from the deployed topology.

use std::time::Duration;

use sciera::dataplane::dispatcher::{AppId, Dispatcher};
use sciera::dataplane::hostnet::PortTable;
use sciera::pan::happy::{preference_order, race, Attempt, Family, DEFAULT_ATTEMPT_DELAY};
use sciera::pan::modes::{HostEnvironment, HostStack, OperatingMode};
use sciera::prelude::*;
use sciera::topology::ip::IpBaseline;

#[test]
fn dispatcher_era_demux_delivers_real_pan_packets() {
    // Legacy mode: all traffic arrives on the shared dispatcher, which
    // demultiplexes by UDP destination port — run actual packets produced
    // by PAN sockets through it.
    let net = SciEraNetwork::build(NetworkConfig::default());
    let a = net.attach_host(ScionAddr::new(ia("71-88"), HostAddr::v4(10, 0, 0, 1)));
    let b = net.attach_host(ScionAddr::new(ia("71-1140"), HostAddr::v4(10, 0, 0, 2)));
    let mut tx = PanSocket::bind(a.addr, 45000, a.transport());
    tx.connect(b.addr, 7777).unwrap();
    tx.send(b"to the dispatcher").unwrap();

    // Pull the raw delivered packet off the host inbox and hand it to the
    // legacy dispatcher.
    let mut raw_transport = b.transport();
    let packet = {
        use sciera::pan::socket::PanTransport;
        raw_transport
            .recv_packet()
            .expect("packet crossed the network")
    };
    let dispatcher = Dispatcher::new();
    dispatcher.register(7777, AppId(42)).unwrap();
    dispatcher.register(8888, AppId(43)).unwrap();
    assert_eq!(dispatcher.dispatch(&packet), Some(AppId(42)));
    assert_eq!(*dispatcher.delivered.lock(), 1);
}

#[test]
fn dispatcherless_mode_owns_per_socket_ports() {
    // §4.8's end state: the port *is* the application; no shared component.
    let table = PortTable::new();
    let p1 = table.bind_ephemeral().unwrap();
    let p2 = table.bind_ephemeral().unwrap();
    assert_ne!(p1, p2);
    assert!(table.bind(p1).is_err(), "ports are exclusive");
    // A PAN socket's own filtering plays the kernel-demux role: a packet
    // for another port never surfaces.
    let net = SciEraNetwork::build(NetworkConfig::default());
    let a = net.attach_host(ScionAddr::new(ia("71-225"), HostAddr::v4(10, 0, 0, 1)));
    let b = net.attach_host(ScionAddr::new(ia("71-2:0:48"), HostAddr::v4(10, 0, 0, 2)));
    let mut tx = PanSocket::bind(a.addr, p1, a.transport());
    let mut other = PanSocket::bind(b.addr, p2, b.transport());
    tx.connect(b.addr, 9999).unwrap(); // nobody listens on 9999
    tx.send(b"misdirected").unwrap();
    assert!(
        other.poll_recv().is_none(),
        "socket on {p2} must not see port-9999 traffic"
    );
}

#[test]
fn mode_fallback_ladder_matches_component_availability() {
    // Daemon present -> daemon mode; config only -> bootstrapper mode;
    // nothing -> standalone, which is the only mode with zero
    // pre-installed components (§4.2.1's "it will just work").
    let cases = [
        (true, true, OperatingMode::DaemonDependent),
        (true, false, OperatingMode::DaemonDependent),
        (false, true, OperatingMode::BootstrapperDependent),
        (false, false, OperatingMode::Standalone),
    ];
    for (daemon, config, want) in cases {
        let stack = HostStack::resolve(HostEnvironment {
            daemon_available: daemon,
            bootstrap_config_available: config,
        });
        assert_eq!(stack.mode, want);
        assert_eq!(
            stack.mode.needs_preinstalled_component(),
            want != OperatingMode::Standalone
        );
    }
}

#[test]
fn happy_eyeballs_with_topology_rtts() {
    // Feed the race with connection times derived from the deployed
    // network: SCION handshake ≈ its best path RTT, IP handshake ≈ the BGP
    // baseline RTT.
    let net = SciEraNetwork::build(NetworkConfig::default());
    let ip = IpBaseline::new();
    let topo = sciera::topology::links::build_control_graph();
    let up = |_: usize| false;
    let rtt_pair = |s: &str, d: &str| {
        let scion = net
            .paths(ia(s), ia(d))
            .iter()
            .filter_map(|p| topo.path_rtt_ms(p, &up))
            .fold(f64::MAX, f64::min);
        let legacy = ip.rtt_ms(ia(s), ia(d)).unwrap();
        (scion, legacy)
    };

    // Korea -> Amsterdam: the commercial route hairpins via the US while
    // SCIERA has the ring — SCION must win the race.
    let (scion_ms, ip_ms) = rtt_pair("71-2:0:4d", "71-2:0:3e");
    assert!(scion_ms < ip_ms, "SCION {scion_ms} vs IP {ip_ms}");
    let outcome = race(
        &[
            Attempt {
                family: Family::Scion,
                duration: Duration::from_secs_f64(scion_ms / 1000.0),
                succeeds: true,
            },
            Attempt {
                family: Family::Ipv6,
                duration: Duration::from_secs_f64(ip_ms / 1000.0),
                succeeds: true,
            },
        ],
        DEFAULT_ATTEMPT_DELAY,
    )
    .unwrap();
    assert_eq!(outcome.winner, Family::Scion);

    // And when SCION connectivity is absent, the race degrades gracefully
    // to the legacy families — no regression for non-SCION destinations.
    assert_eq!(
        preference_order(false, true, true),
        vec![Family::Ipv6, Family::Ipv4]
    );
    let fallback = race(
        &[
            Attempt {
                family: Family::Ipv6,
                duration: Duration::from_millis(40),
                succeeds: false,
            },
            Attempt {
                family: Family::Ipv4,
                duration: Duration::from_millis(35),
                succeeds: true,
            },
        ],
        DEFAULT_ATTEMPT_DELAY,
    )
    .unwrap();
    assert_eq!(fallback.winner, Family::Ipv4);
}

#[test]
fn standalone_mode_bootstrap_to_traffic() {
    // The full §4.1.3 story: nothing pre-installed, the library bootstraps
    // itself, then opens a socket and talks.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sciera::bootstrap::client::{BootstrapClient, ModelEnv, OsProfile};
    use sciera::bootstrap::hints::NetworkProfile;
    use sciera::bootstrap::server::SignedTopology;
    use sciera::bootstrap::BootstrapError;
    use sciera::proto::encap::UnderlayAddr;

    let net = SciEraNetwork::build(NetworkConfig::default());
    let stack = HostStack::resolve(HostEnvironment::default());
    assert_eq!(stack.mode, OperatingMode::Standalone);

    // Standalone bootstrap against OVGU's signed topology.
    let ovgu = ia("71-2:0:42");
    let signed = net.bootstrap_servers[&ovgu].signed_topology().clone();
    let body = serde_json::to_vec(&signed).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let mut env = ModelEnv {
        os: OsProfile::all()[1],
        profile: NetworkProfile::LocalDnsSearchDomain,
        server: UnderlayAddr::new([10, 42, 0, 3], 8041),
        topology_body: body,
        config_processing_ms: 3.0,
        rng: &mut rng,
    };
    let trust = &net.trust;
    let verify = move |s: &SignedTopology| -> Result<(), BootstrapError> {
        trust
            .verify_as_signature(s.document.ia, &s.document.signed_bytes(), &s.signature)
            .map_err(|e| BootstrapError::BadTopology(e.to_string()))
    };
    let client = BootstrapClient::for_profile(NetworkProfile::LocalDnsSearchDomain);
    let outcome = client.run(&mut env, &verify).expect("standalone bootstrap");
    assert_eq!(outcome.topology.document.ia, ovgu);
    assert!(outcome.timing.total() < Duration::from_millis(150));

    // ... and immediately talk.
    let host = net.attach_host(ScionAddr::new(ovgu, HostAddr::v4(10, 42, 0, 77)));
    let peer = net.attach_host(ScionAddr::new(ia("71-2:0:61"), HostAddr::v4(10, 6, 0, 1)));
    let mut tx = PanSocket::bind(host.addr, 46000, host.transport());
    let mut rx = PanSocket::bind(peer.addr, 46001, peer.transport());
    tx.connect(peer.addr, 46001).unwrap();
    tx.send(b"standalone mode works").unwrap();
    assert_eq!(rx.poll_recv().unwrap().0, b"standalone mode works");
}
