//! Full-stack telemetry integration: one shared registry observes the
//! control plane, data plane, daemon, bootstrap and monitoring layers of a
//! complete deployment, and the flight recorder yields an ordered JSONL
//! post-mortem stream.

use sciera::bootstrap::client::{BootstrapClient, ModelEnv, OsProfile};
use sciera::bootstrap::hints::NetworkProfile;
use sciera::bootstrap::server::{SignedTopology, TopologyDocument};
use sciera::daemon::daemon::{Daemon, DaemonConfig};
use sciera::orchestrator::monitor::ConnectivityMonitor;
use sciera::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn network() -> SciEraNetwork {
    SciEraNetwork::build(NetworkConfig::default())
}

#[test]
fn whole_stack_reports_into_one_registry() {
    let net = network();
    let telemetry = net.telemetry();

    // --- Control plane: build() already beaconed with the shared handle.
    let snap = telemetry.snapshot();
    assert!(
        snap.counter("beacon.originated").unwrap_or(0) > 0,
        "{snap:?}"
    );
    assert!(snap.counter("beacon.propagated").unwrap_or(0) > 0);
    assert!(snap.counter("beacon.segments_registered").unwrap_or(0) > 0);

    // --- Data plane: push real traffic through PAN sockets.
    let a = net.attach_host(ScionAddr::new(ia("71-2:0:42"), HostAddr::v4(10, 0, 0, 1)));
    let b = net.attach_host(ScionAddr::new(ia("71-225"), HostAddr::v4(10, 0, 0, 2)));
    let mut tx = PanSocket::bind(a.addr, 4000, a.transport());
    let mut rx = PanSocket::bind(b.addr, 4001, b.transport());
    tx.connect(b.addr, 4001).unwrap();
    tx.send(b"observable").unwrap();
    assert!(rx.poll_recv().is_some());

    let snap = telemetry.snapshot();
    assert!(
        snap.counter("router.forwarded").unwrap_or(0) > 0,
        "{snap:?}"
    );
    assert!(snap.counter("router.delivered").unwrap_or(0) > 0);
    // Path combination ran (lookup_paths) and timed itself.
    let combine = snap
        .histogram("control.combine_ns")
        .expect("combine histogram");
    assert!(combine.count > 0);

    // --- Daemon: cache misses then hits, same registry.
    let store = net.store.clone();
    let provider = move |src: IsdAsn, dst: IsdAsn, _now: u64| {
        sciera::control::combine::combine_paths(&store, src, dst, 64)
    };
    let mut d = Daemon::new(
        ia("71-88"),
        sciera::proto::encap::UnderlayAddr::new([10, 8, 0, 2], 30252),
        provider,
        DaemonConfig::default(),
    );
    d.set_telemetry(telemetry.clone());
    let now = net.now_unix();
    assert!(!d.paths(ia("71-2:0:3b"), now).is_empty());
    assert!(!d.paths(ia("71-2:0:3b"), now + 1).is_empty());
    let snap = telemetry.snapshot();
    assert!(
        snap.counter("daemon.cache_misses").unwrap_or(0) > 0,
        "{snap:?}"
    );
    assert!(snap.counter("daemon.cache_hits").unwrap_or(0) > 0);

    // --- Bootstrap: the Fig. 4 phase timings land in histograms.
    let as_key = sciera::crypto::sign::SigningKey::from_seed(b"telemetry-test-as");
    let document = TopologyDocument {
        ia: ia("71-2:0:42"),
        border_routers: vec![sciera::proto::encap::UnderlayAddr::new(
            [10, 0, 0, 1],
            30001,
        )],
        control_service: sciera::proto::encap::UnderlayAddr::new([10, 0, 0, 2], 30252),
        timestamp: now,
        mtu: 1472,
    };
    let signature = as_key.sign(&document.signed_bytes());
    let signed = SignedTopology {
        document,
        signature,
    };
    let mut rng = StdRng::seed_from_u64(71);
    let mut env = ModelEnv {
        os: OsProfile::all()[1],
        profile: NetworkProfile::DynDhcpLeases,
        server: sciera::proto::encap::UnderlayAddr::new([10, 0, 0, 9], 8041),
        topology_body: serde_json::to_vec(&signed).unwrap(),
        config_processing_ms: 3.0,
        rng: &mut rng,
    };
    let mut client = BootstrapClient::for_profile(NetworkProfile::DynDhcpLeases);
    client.set_telemetry(telemetry.clone());
    client
        .run(&mut env, &|_| Ok(()))
        .expect("bootstrap succeeds");
    let snap = telemetry.snapshot();
    let hint = snap
        .histogram("bootstrap.phase.hint")
        .expect("hint phase timing");
    let config = snap
        .histogram("bootstrap.phase.config")
        .expect("config phase timing");
    assert!(hint.count >= 1 && hint.max > 0.0);
    assert!(config.count >= 1 && config.max > 0.0);
    assert_eq!(snap.counter("bootstrap.runs"), Some(1));

    // --- Monitoring: a sustained outage mirrors its alert as an event.
    let mut mon = ConnectivityMonitor::new(2);
    mon.set_telemetry(telemetry.clone());
    mon.register(ia("71-225"), "noc@virginia.edu");
    let mut sink = |_: IsdAsn, _: &str| {};
    mon.probe_result(ia("71-225"), false, now + 10, &mut sink);
    mon.probe_result(ia("71-225"), false, now + 20, &mut sink);
    mon.probe_result(ia("71-225"), true, now + 90, &mut sink);
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("monitor.outage_alerts"), Some(1));
    assert_eq!(snap.counter("monitor.recovery_notices"), Some(1));

    // --- Flight recorder: valid JSONL, ordered by sim_time, non-trivial.
    assert!(snap.events_recorded >= 3, "{snap:?}");
    let dump = telemetry.dump_flight_recorder();
    let mut last = 0u64;
    let mut lines = 0usize;
    for line in dump.lines() {
        let e: sciera::telemetry::Event = serde_json::from_str(line).expect("valid JSON line");
        assert!(
            e.sim_time >= last,
            "events ordered by sim_time: {} after {last}",
            e.sim_time
        );
        last = e.sim_time;
        assert!(!e.message.is_empty());
        assert!(!e.component.is_empty());
        lines += 1;
    }
    assert!(
        lines >= 3,
        "flight recorder holds the run's events:\n{dump}"
    );

    // --- And the operator-facing summary table renders every family.
    let table = snap.render_table();
    for needle in [
        "beacon.originated",
        "router.forwarded",
        "daemon.cache_hits",
        "bootstrap.phase.hint",
    ] {
        assert!(
            table.contains(needle),
            "summary table missing {needle}:\n{table}"
        );
    }
}

#[test]
fn quiet_components_pay_no_tracing_cost() {
    // Components constructed without wiring still count, never trace —
    // the bench configuration (criterion runs BorderRouter::new directly).
    let net = network();
    let telemetry = net.telemetry();
    telemetry.disable_tracing();
    let recorded_before = telemetry.snapshot().events_recorded;

    let a = net.attach_host(ScionAddr::new(ia("71-2:0:42"), HostAddr::v4(10, 0, 0, 7)));
    let b = net.attach_host(ScionAddr::new(ia("71-2:0:5c"), HostAddr::v4(10, 0, 0, 8)));
    let mut tx = PanSocket::bind(a.addr, 4100, a.transport());
    let mut rx = PanSocket::bind(b.addr, 4101, b.transport());
    tx.connect(b.addr, 4101).unwrap();
    tx.send(b"untraced").unwrap();
    assert!(rx.poll_recv().is_some());

    let snap = telemetry.snapshot();
    assert_eq!(
        snap.events_recorded, recorded_before,
        "tracing disabled records nothing"
    );
    assert!(
        snap.counter("router.forwarded").unwrap_or(0) > 0,
        "metrics still flow"
    );
}
