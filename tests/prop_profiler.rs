//! Property tests for the scoped self-time profiler (the scale
//! observatory's attribution engine).
//!
//! With the `profile` feature on, random scope programs — arbitrary
//! nesting, leaf records, early drops and panicking sub-trees — must
//! yield a sound report: for leaf-free programs every node's direct
//! children sum to at most its inclusive time and self time is exactly
//! the remainder (the disjoint-sub-interval argument of DESIGN.md §14);
//! with externally measured leaf durations in play, self time is bounded
//! by `inclusive - children <= self <= inclusive` since leaves may
//! overshoot their parent's wall window and saturate per call.
//!
//! With profiling compiled out (`--no-default-features`) the same entry
//! points must be true no-ops: zero-sized guards, empty reports.

use proptest::prelude::*;

use sciera::telemetry::{ProfScope, ProfileEntry, Telemetry};

/// One step of a random scope program.
#[derive(Debug, Clone)]
enum Step {
    /// Open a nested scope (names cycle through a fixed set).
    Open(u8),
    /// Close the innermost open scope (no-op at the root).
    Close,
    /// Record an externally measured leaf duration.
    Leaf(u8, u32),
    /// Spin for a handful of microseconds so self time accrues.
    Work,
}

const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..5).prop_map(Step::Open),
        Just(Step::Close),
        ((0u8..5), (1u32..2000)).prop_map(|(n, ns)| Step::Leaf(n, ns)),
        Just(Step::Work),
    ]
}

fn spin() {
    let t = std::time::Instant::now();
    while t.elapsed().as_nanos() < 2_000 {
        std::hint::black_box(0u64);
    }
}

/// Executes a step program against a fresh telemetry handle, keeping an
/// explicit stack of live guards so Close pops in LIFO order.
fn execute(telemetry: &Telemetry, steps: &[Step]) {
    let mut stack: Vec<ProfScope> = Vec::new();
    for step in steps {
        match step {
            Step::Open(n) => {
                if stack.len() < 12 {
                    stack.push(telemetry.prof_scope(NAMES[*n as usize % NAMES.len()]));
                }
            }
            Step::Close => {
                stack.pop();
            }
            Step::Leaf(n, ns) => {
                telemetry.prof_leaf_ns(NAMES[*n as usize % NAMES.len()], *ns as u64);
            }
            Step::Work => spin(),
        }
    }
    // Guards drop here in reverse order.
}

/// Checks the attribution invariant on a pre-order entry list (a node's
/// children are the following run of depth+1 entries).
///
/// When `strict` (no external leaf records in the program), children are
/// genuine sub-intervals of the parent on one monotonic clock, so their
/// inclusive times sum to at most the parent's and self time is exactly
/// the remainder. Leaf durations from `prof_leaf_ns` are externally
/// measured and may exceed the parent's wall window; self time then
/// saturates per call, so only the bounds
/// `inclusive - children <= self <= inclusive` hold.
fn check_attribution(entries: &[ProfileEntry], strict: bool) {
    for (i, e) in entries.iter().enumerate() {
        let mut child_sum = 0u64;
        for c in entries.iter().skip(i + 1) {
            if c.depth <= e.depth {
                break;
            }
            if c.depth == e.depth + 1 {
                child_sum += c.inclusive_ns;
            }
        }
        if strict {
            assert!(
                child_sum <= e.inclusive_ns,
                "children of {} sum to {child_sum}ns > parent inclusive {}ns",
                e.name,
                e.inclusive_ns
            );
            assert_eq!(
                e.self_ns,
                e.inclusive_ns.saturating_sub(child_sum),
                "self time of {} is not the remainder",
                e.name
            );
        } else {
            assert!(
                e.self_ns <= e.inclusive_ns,
                "self time of {} exceeds its inclusive time",
                e.name
            );
            assert!(
                e.self_ns >= e.inclusive_ns.saturating_sub(child_sum),
                "self time of {} under-counts the non-child remainder",
                e.name
            );
        }
        assert!(e.calls >= 1, "reported node {} never called", e.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_scope_programs_attribute_soundly(steps in prop::collection::vec(arb_step(), 1..60)) {
        let telemetry = Telemetry::quiet();
        execute(&telemetry, &steps);
        let report = telemetry.profile_report();
        if cfg!(feature = "profile") {
            let leaf_free = !steps.iter().any(|s| matches!(s, Step::Leaf(..)));
            check_attribution(&report.entries, leaf_free);
            // Ranked self time must total exactly the per-entry self times.
            let total: u64 = report.entries.iter().map(|e| e.self_ns).sum();
            let ranked: u64 = report.ranked_self_time().iter().map(|(_, ns)| *ns).sum();
            prop_assert_eq!(total, ranked);
        } else {
            prop_assert!(report.is_empty(), "compiled-out profiler must report nothing");
        }
    }

    #[test]
    fn panicking_subtrees_unwind_cleanly(depth in 1usize..6, survivor in 0u8..5) {
        let telemetry = Telemetry::quiet();
        let t2 = telemetry.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guards: Vec<ProfScope> = (0..depth)
                .map(|i| t2.prof_scope(NAMES[i % NAMES.len()]))
                .collect();
            spin();
            panic!("scope discipline under unwind");
        }));
        prop_assert!(result.is_err());
        // The panic closed every guard; new scopes must nest at the root,
        // and the report must still satisfy the soundness invariant.
        {
            let _root = telemetry.prof_scope(NAMES[survivor as usize % NAMES.len()]);
            spin();
        }
        let report = telemetry.profile_report();
        if cfg!(feature = "profile") {
            check_attribution(&report.entries, true);
            prop_assert!(
                report.entries.iter().any(|e| e.depth == 0),
                "post-panic scope must appear at the root"
            );
        } else {
            prop_assert!(report.is_empty());
        }
    }
}

#[test]
fn disabled_guard_is_zero_sized() {
    if !cfg!(feature = "profile") {
        assert_eq!(std::mem::size_of::<ProfScope>(), 0);
    }
}

#[test]
fn early_returns_close_scopes_in_order() {
    fn inner(telemetry: &Telemetry, bail: bool) -> u32 {
        let _s = telemetry.prof_scope("alpha");
        if bail {
            return 1; // _s drops here, mid-function
        }
        let _t = telemetry.prof_scope("beta");
        spin();
        2
    }
    let telemetry = Telemetry::quiet();
    inner(&telemetry, true);
    inner(&telemetry, false);
    let report = telemetry.profile_report();
    if cfg!(feature = "profile") {
        check_attribution(&report.entries, true);
        let alpha = report
            .entries
            .iter()
            .find(|e| e.name == "alpha")
            .expect("alpha recorded");
        assert_eq!(alpha.calls, 2, "both invocations hit the same node");
        assert!(
            report
                .entries
                .iter()
                .any(|e| e.name == "beta" && e.depth == 1),
            "beta nests under alpha"
        );
    } else {
        assert!(report.is_empty());
    }
}
