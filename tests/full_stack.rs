//! End-to-end integration: the whole stack from bootstrap to data plane.

use sciera::control::policy::{PathPolicy, TransitPolicy};
use sciera::prelude::*;
use sciera::proto::packet::{DataPlanePath, L4Protocol, ScionPacket};
use sciera::proto::udp::UdpDatagram;
use sciera::topology::ases::{all_ases, commercial_ases, fig8_vantages};

fn network() -> SciEraNetwork {
    SciEraNetwork::build(NetworkConfig::default())
}

#[test]
fn every_vantage_pair_forwards_packets_end_to_end() {
    // The strongest cross-module check we have: for every ordered vantage
    // pair, assemble the shortest combined path into a wire-format packet
    // and push it through every border router on the way — each router
    // recomputes the AES-CMAC of its hop field with its own key.
    let net = network();
    let vantages = fig8_vantages();
    let mut forwarded = 0;
    for &s in &vantages {
        for &d in &vantages {
            if s == d {
                continue;
            }
            let paths = net.paths(s, d);
            assert!(!paths.is_empty(), "{s}->{d} has no path");
            for p in paths.iter().take(3) {
                let pkt = ScionPacket::new(
                    ScionAddr::new(s, HostAddr::v4(10, 0, 0, 1)),
                    ScionAddr::new(d, HostAddr::v4(10, 0, 0, 2)),
                    L4Protocol::Udp,
                    DataPlanePath::Scion(p.to_dataplane().expect("assembles")),
                    UdpDatagram::new(1, 2, b"integration".to_vec()).encode(),
                );
                let delivery = net
                    .walk_packet(pkt)
                    .unwrap_or_else(|e| panic!("{s}->{d} via {}: {e}", p.fingerprint()));
                assert_eq!(delivery.route, p.ases(), "{s}->{d} took the declared route");
                assert!(delivery.latency_ms > 0.0);
                forwarded += 1;
            }
        }
    }
    assert!(forwarded >= 200, "forwarded {forwarded} packets");
}

#[test]
fn analytic_and_packet_level_rtt_agree_everywhere() {
    // The measurement campaign's fast path must agree with the real data
    // plane on every vantage pair's shortest path.
    let net = network();
    let topo = sciera::topology::links::build_control_graph();
    let up = |_: usize| false;
    for &s in &fig8_vantages() {
        for &d in &fig8_vantages() {
            if s == d {
                continue;
            }
            let paths = net.paths(s, d);
            let p = &paths[0];
            let analytic = topo.path_rtt_ms(p, &up).expect("alive");
            let pkt = ScionPacket::new(
                ScionAddr::new(s, HostAddr::v4(1, 1, 1, 1)),
                ScionAddr::new(d, HostAddr::v4(2, 2, 2, 2)),
                L4Protocol::Udp,
                DataPlanePath::Scion(p.to_dataplane().unwrap()),
                UdpDatagram::new(1, 2, vec![]).encode(),
            );
            let delivery = net.walk_packet(pkt).expect("delivered");
            let packet_level = 2.0
                * (delivery.latency_ms
                    + p.len() as f64 * sciera::topology::links::PER_AS_OVERHEAD_MS);
            assert!(
                (analytic - packet_level).abs() < 1e-6,
                "{s}->{d}: analytic {analytic} vs packet {packet_level}"
            );
        }
    }
}

#[test]
fn corrupted_packets_die_at_the_first_router() {
    let net = network();
    let s = ia("71-225");
    let d = ia("71-2:0:5c");
    let p = &net.paths(s, d)[0];
    let mut dp = p.to_dataplane().unwrap();
    // An attacker rewrites the egress interface of an on-path hop to
    // redirect traffic — the hop MAC no longer verifies.
    dp.hops[1].cons_egress ^= 0x7;
    let pkt = ScionPacket::new(
        ScionAddr::new(s, HostAddr::v4(1, 1, 1, 1)),
        ScionAddr::new(d, HostAddr::v4(2, 2, 2, 2)),
        L4Protocol::Udp,
        DataPlanePath::Scion(dp),
        UdpDatagram::new(1, 2, vec![]).encode(),
    );
    let err = net.walk_packet(pkt).unwrap_err();
    assert!(format!("{err}").contains("BadMac"), "got: {err}");
}

#[test]
fn transit_policy_blocks_commercial_through_sciera() {
    // §4.9: build real paths from the commercial ISD 64 through SCIERA and
    // check the policy verdicts on actual combined paths.
    let net = network();
    let policy = PathPolicy {
        transit: TransitPolicy::new(commercial_ases()),
        ..Default::default()
    };
    // Commercial AS -> academic AS: terminating traffic, allowed.
    let eth = ia("64-2:0:9");
    let ovgu = ia("71-2:0:42");
    let terminating = net.paths(eth, ovgu);
    assert!(!terminating.is_empty());
    assert!(
        terminating.iter().all(|p| policy.permits(p)),
        "terminating traffic must pass"
    );
    // Commercial -> commercial via SCIERA: transit, must be filtered.
    let switch64 = ia("64-559");
    let transit = net.paths(eth, switch64);
    // Pure ISD-64 paths (ETH -> SWITCH directly) are fine; any path that
    // detours through ISD 71 must be rejected.
    for p in &transit {
        let crosses_71 = p.ases().iter().any(|a| a.isd.0 == 71);
        assert_eq!(
            policy.permits(p),
            !crosses_71,
            "path {:?} verdict mismatch",
            p.ases()
        );
    }
}

#[test]
fn multihop_bidirectional_flows_across_all_regions() {
    // One host per region; full-duplex exchanges between every pair.
    let net = network();
    let hosts = ["71-2:0:42", "71-225", "71-2:0:4d", "71-2:0:5c", "71-37288"];
    for (i, a) in hosts.iter().enumerate() {
        for b in hosts.iter().skip(i + 1) {
            let ha = net.attach_host(ScionAddr::new(ia(a), HostAddr::v4(10, 0, 0, 1)));
            let hb = net.attach_host(ScionAddr::new(ia(b), HostAddr::v4(10, 0, 0, 2)));
            let mut sa = PanSocket::bind(ha.addr, 50000, ha.transport());
            let mut sb = PanSocket::bind(hb.addr, 50001, hb.transport());
            sa.connect(hb.addr, 50001)
                .unwrap_or_else(|e| panic!("{a}->{b}: {e}"));
            sa.send(format!("ping {a}->{b}").as_bytes()).unwrap();
            let (got, from, sport) = sb.poll_recv().expect("delivered");
            assert_eq!(got, format!("ping {a}->{b}").as_bytes());
            sb.send_to(b"pong", from, sport).unwrap();
            let (reply, _, _) = sa.poll_recv().expect("pong delivered");
            assert_eq!(reply, b"pong");
        }
    }
}

#[test]
fn all_ases_have_verified_chains_and_bootstrap_servers() {
    let net = network();
    for a in all_ases() {
        assert!(
            net.trust.key_of(a.ia).is_some(),
            "{} not in trust directory",
            a.name
        );
        assert!(
            net.bootstrap_servers.contains_key(&a.ia),
            "{} has no bootstrap server",
            a.name
        );
        assert!(net.renewal[&a.ia].certificate_valid(net.now_unix()));
    }
}

#[test]
fn daemon_integration_with_live_control_plane() {
    use sciera::daemon::daemon::{Daemon, DaemonConfig};
    let net = network();
    let store = net.store.clone();
    let provider = move |src: IsdAsn, dst: IsdAsn, _now: u64| {
        sciera::control::combine::combine_paths(&store, src, dst, 64)
    };
    let d = Daemon::new(
        ia("71-88"),
        sciera::proto::encap::UnderlayAddr::new([10, 8, 0, 2], 30252),
        provider,
        DaemonConfig::default(),
    );
    let now = net.now_unix();
    let first = d.paths(ia("71-2:0:3b"), now);
    assert!(!first.is_empty());
    let second = d.paths(ia("71-2:0:3b"), now + 1);
    assert_eq!(first.len(), second.len());
    let stats = d.stats();
    assert_eq!(stats.misses, 1, "second lookup served from cache");
    assert_eq!(stats.hits, 1);
}
