//! End-to-end path-dynamics observatory run over the real deployment:
//! the full SCIERA network (PKI, beaconing, border routers) driven
//! through a short seeded campaign with injected faults, exported to
//! JSONL, validated, summarized, and replayed through the adaptive
//! selection policies.

use sciera::measure::dynamics::{replay_policies, run_campaign, DynamicsConfig, DynamicsDataset};
use sciera::pan::adaptive::AdaptivePolicy;
use sciera::prelude::*;

fn campaign_config() -> DynamicsConfig {
    DynamicsConfig {
        epochs: 8,
        kill_every: 3,
        kill_duration: 1,
        kill_pool: 2,
        latency_every: 4,
        latency_duration: 2,
        ..DynamicsConfig::default()
    }
}

fn run_once() -> (DynamicsDataset, String, String) {
    let mut net = SciEraNetwork::build(NetworkConfig::default());
    let telemetry = net.telemetry();
    let pairs = [
        (ia("71-225"), ia("71-2:0:3b")),
        (ia("71-2:0:42"), ia("71-225")),
    ];
    for (src, dst) in &pairs {
        assert!(
            net.paths(*src, *dst).len() >= 2,
            "{src}->{dst} needs at least two paths for failover"
        );
    }
    let dataset = run_campaign(&mut net, &pairs, &campaign_config(), &telemetry);
    let (paths_jsonl, events_jsonl) = dataset.export_jsonl(&telemetry);
    (dataset, paths_jsonl, events_jsonl)
}

#[test]
fn campaign_over_real_network_exports_and_replays() {
    let (dataset, paths_jsonl, events_jsonl) = run_once();
    dataset.validate().expect("dataset is schema-valid");
    assert!(!dataset.paths.is_empty(), "campaign produced no records");

    let summary = dataset.summary();
    assert_eq!(summary.epochs, 8);
    assert_eq!(summary.pairs, 2);
    assert!(summary.paths >= 4, "two multi-path pairs tracked");
    assert_eq!(
        summary.records as usize,
        dataset.paths.len(),
        "summary counts every record"
    );

    // The exported JSONL parses back into an identical dataset.
    let parsed = DynamicsDataset::from_jsonl(dataset.seed, &paths_jsonl, &events_jsonl)
        .expect("exported JSONL parses");
    assert_eq!(parsed.paths, dataset.paths);
    assert_eq!(parsed.events, dataset.events);

    // Closed loop: all three policies replay over the dataset, covering
    // every (pair, epoch) cell.
    let outcomes = replay_policies(
        &dataset,
        campaign_config().epoch_secs,
        &[
            AdaptivePolicy::Static,
            AdaptivePolicy::latency_loss(),
            AdaptivePolicy::churn_aware(),
        ],
    );
    assert_eq!(outcomes.len(), 3);
    for o in &outcomes {
        assert_eq!(o.epochs, 16, "8 epochs x 2 pairs each");
        assert!(o.p50_ms > 0.0, "{} achieved no RTT", o.policy);
        assert!(o.p99_ms >= o.p50_ms);
    }
}

#[test]
fn campaign_over_real_network_is_deterministic() {
    let (_, paths_a, events_a) = run_once();
    let (_, paths_b, events_b) = run_once();
    assert_eq!(paths_a, paths_b, "paths.jsonl must replay byte-for-byte");
    assert_eq!(events_a, events_b, "events.jsonl must replay byte-for-byte");
}
