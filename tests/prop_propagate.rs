//! Differential property test for parallel beacon propagation: on any
//! random multi-tier topology and any beacon configuration, the
//! compute-parallel / commit-sequential pipeline must be byte-for-byte
//! invisible — registered segments, retained slot contents and order,
//! convergence round count, and every shared beacon counter must match
//! the single-threaded walk exactly. The sequential engine is the
//! reference; the parallel one is only allowed to be faster.
//!
//! The schedule deliberately churns the dirty sets: delta propagation
//! on/off, tight round budgets that stop mid-churn, and small retain
//! windows (`candidates_per_origin`) that force slot evictions, so the
//! snapshot-at-round-start semantics is exercised under contention for
//! slots, not just on quiescent graphs.
//!
//! With the `parallel` feature disabled the flag is inert and both runs
//! take the sequential path — the test then pins run-to-run determinism,
//! which is what makes the differential meaningful in the first place.

use proptest::prelude::*;

use sciera::control::beacon::{BeaconConfig, BeaconEngine};
use sciera::control::graph::{ControlGraph, LinkType};
use sciera::prelude::*;
use sciera::telemetry::Telemetry;

/// A random three-tier topology: cores in a ring plus random extra core
/// links, mids homed to 1–2 cores, leaves homed to 1–2 mids, optional
/// peerings between non-core ASes.
#[derive(Debug, Clone)]
struct RandomTopo {
    n_core: usize,
    n_mid: usize,
    n_leaf: usize,
    core_edges: Vec<(usize, usize)>,
    mid_parents: Vec<Vec<usize>>,
    leaf_parents: Vec<Vec<usize>>,
    peerings: Vec<(usize, usize)>,
}

fn arb_topo() -> impl Strategy<Value = RandomTopo> {
    (2usize..5, 1usize..4, 1usize..5).prop_flat_map(|(n_core, n_mid, n_leaf)| {
        let core_edges = prop::collection::vec((0..n_core, 0..n_core), 0..n_core * 2);
        let mid_parents =
            prop::collection::vec(prop::collection::vec(0..n_core, 1..3), n_mid..=n_mid);
        let leaf_parents =
            prop::collection::vec(prop::collection::vec(0..n_mid, 1..3), n_leaf..=n_leaf);
        let peerings = prop::collection::vec((0..n_mid + n_leaf, 0..n_mid + n_leaf), 0..3);
        (
            Just((n_core, n_mid, n_leaf)),
            core_edges,
            mid_parents,
            leaf_parents,
            peerings,
        )
            .prop_map(
                |((n_core, n_mid, n_leaf), core_edges, mid_parents, leaf_parents, peerings)| {
                    RandomTopo {
                        n_core,
                        n_mid,
                        n_leaf,
                        core_edges,
                        mid_parents,
                        leaf_parents,
                        peerings,
                    }
                },
            )
    })
}

/// Beacon configurations that stress the pipeline from different angles:
/// tiny retain windows force evictions, short round budgets stop with a
/// non-empty dirty set, and delta propagation toggles between the
/// dirty-slot walk and the exhaustive reference.
fn arb_config() -> impl Strategy<Value = BeaconConfig> {
    (1usize..6, 3usize..12, 2usize..12, any::<bool>()).prop_map(
        |(candidates, max_len, rounds, delta)| BeaconConfig {
            candidates_per_origin: candidates,
            max_len,
            rounds,
            delta_propagation: delta,
            parallel_propagation: false, // set per run below
        },
    )
}

fn core_ia(i: usize) -> IsdAsn {
    ia(&format!("71-{}", 100 + i))
}
fn mid_ia(i: usize) -> IsdAsn {
    ia(&format!("71-{}", 200 + i))
}
fn leaf_ia(i: usize) -> IsdAsn {
    ia(&format!("71-{}", 300 + i))
}

/// Builds the graph; None when the random spec is degenerate.
fn build(t: &RandomTopo) -> Option<ControlGraph> {
    let mut g = ControlGraph::new();
    for i in 0..t.n_core {
        g.add_as(core_ia(i), true);
    }
    for i in 0..t.n_mid {
        g.add_as(mid_ia(i), false);
    }
    for i in 0..t.n_leaf {
        g.add_as(leaf_ia(i), false);
    }
    for i in 0..t.n_core.saturating_sub(1) {
        g.connect(core_ia(i), core_ia(i + 1), LinkType::Core).ok()?;
    }
    for &(a, b) in &t.core_edges {
        if a != b {
            g.connect(core_ia(a), core_ia(b), LinkType::Core).ok()?;
        }
    }
    for (m, parents) in t.mid_parents.iter().enumerate() {
        for &p in parents {
            g.connect(core_ia(p), mid_ia(m), LinkType::Child).ok()?;
        }
    }
    for (l, parents) in t.leaf_parents.iter().enumerate() {
        for &p in parents {
            g.connect(mid_ia(p % t.n_mid.max(1)), leaf_ia(l), LinkType::Child)
                .ok()?;
        }
    }
    let noncore = |i: usize| {
        if i < t.n_mid {
            mid_ia(i)
        } else {
            leaf_ia(i - t.n_mid)
        }
    };
    for &(a, b) in &t.peerings {
        let (x, y) = (
            noncore(a % (t.n_mid + t.n_leaf)),
            noncore(b % (t.n_mid + t.n_leaf)),
        );
        if x != y {
            g.connect(x, y, LinkType::Peer).ok()?;
        }
    }
    g.validate().ok()?;
    Some(g)
}

/// The observable outcome of one full beaconing run: registered segment
/// ids (sorted — registration order is not part of the contract), the
/// retained-slot digest (order *is* part of the contract), rounds to the
/// fixed point, and the shared beacon counters.
struct RunOutcome {
    segment_ids: Vec<[u8; 32]>,
    slots: Vec<(bool, IsdAsn, IsdAsn, Vec<[u8; 32]>)>,
    rounds: usize,
    counters: Vec<(String, u64)>,
}

/// Beacon counters both modes must agree on. `beacon.propagate.par.*`
/// reports parallel work distribution and only ever moves in the parallel
/// build — it is instrumentation about *how* the work ran, not *what* it
/// produced, so it is excluded (same carve-out as `router.maccache.*` in
/// the batch-pipeline differential).
fn shared_beacon_counters(tele: &Telemetry) -> Vec<(String, u64)> {
    let mut counters: Vec<(String, u64)> = tele
        .snapshot()
        .counters
        .into_iter()
        .filter(|(n, _)| n.starts_with("beacon.") && !n.starts_with("beacon.propagate.par."))
        .collect();
    counters.sort();
    counters
}

fn run_mode(graph: &ControlGraph, cfg: &BeaconConfig, parallel: bool) -> RunOutcome {
    let tele = Telemetry::quiet();
    let mut engine = BeaconEngine::new(
        graph,
        1_700_000_000,
        BeaconConfig {
            parallel_propagation: parallel,
            ..cfg.clone()
        },
    );
    engine.set_telemetry(tele.clone());
    let store = engine
        .run()
        .expect("beaconing converges on any valid graph");
    let mut segment_ids: Vec<[u8; 32]> = store.all_segments().map(|s| s.id()).collect();
    segment_ids.sort();
    RunOutcome {
        segment_ids,
        slots: engine.slot_digest(),
        rounds: engine.last_rounds(),
        counters: shared_beacon_counters(&tele),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_propagation_is_byte_for_byte_invisible(
        topo in arb_topo(),
        cfg in arb_config(),
    ) {
        let Some(graph) = build(&topo) else {
            return Ok(()); // degenerate spec: nothing to check
        };
        let seq = run_mode(&graph, &cfg, false);
        let par = run_mode(&graph, &cfg, true);

        prop_assert_eq!(
            seq.segment_ids,
            par.segment_ids,
            "registered segments diverged"
        );
        prop_assert_eq!(seq.slots, par.slots, "retained slots diverged");
        prop_assert_eq!(seq.rounds, par.rounds, "convergence rounds diverged");
        prop_assert_eq!(seq.counters, par.counters, "beacon counter parity");
    }
}
