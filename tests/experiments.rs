//! Experiment-level integration: every figure/table pipeline runs and its
//! headline shape matches the paper's direction. (Unit tests inside
//! `sciera-measure` check tighter per-figure properties; these tests check
//! the cross-experiment consistency on one shared campaign.)

use sciera::measure::analysis::{fig5, fig6, fig7};
use sciera::measure::bootstrapx::fig4;
use sciera::measure::campaign::{Campaign, CampaignConfig};
use sciera::measure::paths::{fig10a, fig10b, fig8, fig9};
use sciera::measure::resilience::fig10c;
use sciera::measure::survey;
use sciera::orchestrator::effort::EffortModel;
use sciera::prelude::*;
use sciera::topology::timeline::deployment_timeline;

fn campaign() -> sciera::measure::campaign::MeasurementStore {
    let config = CampaignConfig {
        days: 4.0,
        round_secs: 180,
        probe_every_rounds: 5,
        candidates_per_origin: 16,
        max_paths: 150,
        with_incidents: true,
        seed: 71,
    };
    Campaign::new(config).run()
}

#[test]
fn connectivity_experiments_are_mutually_consistent() {
    let store = campaign();

    // Fig. 5: SCION wins the median and wins more at the tail.
    let f5 = fig5(&store);
    assert!(
        f5.median_reduction_pct() > 0.0,
        "median reduction {:.2}%",
        f5.median_reduction_pct()
    );
    assert!(f5.p90_reduction_pct() > f5.median_reduction_pct());

    // Fig. 6 must agree with Fig. 5 in aggregate: if the median pair ratio
    // is below ~1, the global medians should also favour SCION.
    let f6 = fig6(&store);
    let median_ratio = f6.ratios[f6.ratios.len() / 2].ratio;
    assert!(median_ratio < 1.2, "median pair ratio {median_ratio}");
    assert!(f6.frac_below_one > 0.15 && f6.frac_below_one < 0.95);

    // Fig. 7's daily ratios must bracket Fig. 6's median.
    let f7 = fig7(&store);
    let avg: f64 = f7.daily_ratio.iter().sum::<f64>() / f7.daily_ratio.len() as f64;
    assert!(
        (avg - median_ratio).abs() < 0.6,
        "daily avg {avg} vs median ratio {median_ratio}"
    );

    // Figs. 8/9: max counts bound the deviations.
    let m8 = fig8(&store);
    let m9 = fig9(&store);
    for i in 0..9 {
        for j in 0..9 {
            if i == j {
                continue;
            }
            assert!(
                m9.values[i][j] <= m8.values[i][j],
                "deviation exceeds max at ({i},{j})"
            );
            assert!(m8.values[i][j] >= 2);
        }
    }

    // Fig. 10a comes from the same campaign and is well-formed.
    let f10a = fig10a(&store);
    assert!(f10a.inflations.iter().all(|&x| (1.0..100.0).contains(&x)));
    assert!(f10a.frac_below_1_2 >= f10a.frac_near_one);
}

#[test]
fn structural_experiments_shapes() {
    // Fig. 10b.
    let f10b = fig10b(8, 40);
    assert!(f10b.frac_fully_disjoint > 0.05);
    assert!(f10b.frac_above_0_7 > 0.5);

    // Fig. 10c: the multipath/single-path gap of the paper's headline.
    let f10c = fig10c(15, 5, false);
    let p20 = f10c.at(0.2);
    assert!(p20.multipath_connectivity - p20.singlepath_connectivity > 0.1);

    // Fig. 4: worst median below the perception threshold.
    let f4 = fig4(30, 7);
    assert!(f4.worst_total_median_ms() < 150.0);

    // Fig. 3: total effort declines over the journey per comparable type.
    let tl = deployment_timeline();
    let efforts = EffortModel::default().evaluate(&tl);
    assert!(efforts[0] > *efforts.last().unwrap());

    // §5.6 aggregates equal the paper's marginals exactly.
    let stats = survey::aggregate(&survey::respondents());
    assert_eq!(stats.hardware_under_20k, 0.75);
    assert_eq!(stats.workload_below_10pct, 0.875);
}

#[test]
fn outliers_trace_back_to_injected_incidents() {
    let store = campaign();
    let f6 = fig6(&store);
    // The UFMS->Equinix detour (BRIDGES-RNP circuits down) must rank the
    // pair above the median ratio.
    let med = f6.ratios[f6.ratios.len() / 2].ratio;
    let ufms_eq = f6
        .ratios
        .iter()
        .find(|r| r.src == ia("71-2:0:5c") && r.dst == ia("71-2:0:48"))
        .expect("pair measured");
    assert!(ufms_eq.ratio > med);
    // And the incident labels document what was injected.
    assert!(store.incident_labels.contains(&"KR-SG submarine cable cut"));
    assert!(store
        .incident_labels
        .contains(&"UFMS-Equinix routed through GEANT"));
}
