//! PKI lifecycle integration: TRC updates and certificate renewal over a
//! simulated quarter of operation across the whole deployment.

use sciera::cppki::ca::CaService;
use sciera::cppki::trc::Trc;
use sciera::crypto::sign::SigningKey;
use sciera::orchestrator::renewal::RenewalAction;
use sciera::prelude::*;
use sciera::proto::addr::IsdNumber;
use sciera::topology::ases::all_ases;

#[test]
fn ninety_days_of_certificate_renewal_across_all_ases() {
    let net = SciEraNetwork::build(NetworkConfig::default());
    let mut ca = {
        let mut cas = net.cas;
        cas.remove(&71).expect("ISD 71 CA")
    };
    let mut drivers = net.renewal;
    let start = 1_700_000_000u64;
    let mut renewals = 0u64;
    for day in 0..90u64 {
        for hour in 0..24u64 {
            let now = start + (day * 24 + hour) * 3600;
            for (ia_key, driver) in drivers.iter_mut() {
                if ia_key.isd.0 != 71 {
                    continue; // ISD 64 has its own CA, consumed by build()
                }
                assert!(
                    driver.certificate_valid(now),
                    "{ia_key} certificate lapsed on day {day}"
                );
                // The CA is unreachable for 6 hours every Sunday
                // (maintenance) — renewal must ride through it.
                let ca_reachable = !(day % 7 == 6 && hour < 6);
                if let RenewalAction::Renewed { .. } = driver.tick(&mut ca, now, ca_reachable) {
                    renewals += 1;
                }
            }
        }
    }
    let n71 = all_ases().iter().filter(|a| a.ia.isd.0 == 71).count() as u64;
    // Every AS renews roughly every 2 days over 90 days.
    assert!(
        renewals > n71 * 30,
        "only {renewals} renewals across {n71} ASes"
    );
}

#[test]
fn trc_update_rolls_across_the_isd() {
    // Build a successor TRC signed by a quorum of core ASes and push it
    // through a host's trust store; a forged competitor must fail.
    let net = SciEraNetwork::build(NetworkConfig::default());
    let trust = net.trust;
    let cores: Vec<_> = all_ases()
        .into_iter()
        .filter(|a| a.ia.isd.0 == 71 && a.core)
        .collect();
    assert_eq!(trust.trc_serial(IsdNumber(71)), Some(1));

    // Reconstruct the base TRC the network installed (same deterministic
    // keys), then vote the successor.
    let root_key = |ia: IsdAsn| SigningKey::from_seed(format!("root-{ia}").as_bytes());
    let core_ias: Vec<IsdAsn> = cores.iter().map(|c| c.ia).collect();
    let base = Trc {
        isd: IsdNumber(71),
        base: 1,
        serial: 1,
        valid_from: net_valid_from(),
        valid_until: net_valid_until(),
        core_ases: core_ias.clone(),
        authoritative_ases: core_ias.clone(),
        voting_keys: core_ias
            .iter()
            .map(|&ia| sciera::cppki::trc::TrcKeyEntry {
                holder: ia,
                key: root_key(ia).verifying_key(),
            })
            .collect(),
        root_keys: core_ias
            .iter()
            .map(|&ia| sciera::cppki::trc::TrcKeyEntry {
                holder: ia,
                key: root_key(ia).verifying_key(),
            })
            .collect(),
        quorum: core_ias.len() / 2 + 1,
        votes: vec![],
    };
    let mut next = base.clone();
    next.serial = 2;
    // Quorum of core ASes vote.
    for ia in core_ias.iter().take(base.quorum) {
        next.add_vote(*ia, &root_key(*ia));
    }
    trust
        .apply_trc_update(next)
        .expect("quorum update accepted");
    assert_eq!(trust.trc_serial(IsdNumber(71)), Some(2));

    // A forged update (non-core signer) is rejected.
    let mut forged = base.clone();
    forged.serial = 3;
    let attacker = SigningKey::from_seed(b"attacker");
    for ia in core_ias.iter().take(base.quorum) {
        forged.add_vote(*ia, &attacker);
    }
    assert!(trust.apply_trc_update(forged).is_err());
    assert_eq!(trust.trc_serial(IsdNumber(71)), Some(2));
}

fn net_valid_from() -> u64 {
    1_700_000_000 - 86_400
}

fn net_valid_until() -> u64 {
    1_700_000_000 + 5 * 365 * 86_400
}

#[test]
fn ca_interoperates_with_both_stacks() {
    // §4.5's headline: one CA serving Anapaya CORE and open-source CSRs.
    use sciera::cppki::ca::{ClientProfile, CsrRequest};
    let net = SciEraNetwork::build(NetworkConfig::default());
    let mut ca = {
        let mut cas = net.cas;
        cas.remove(&71).expect("ISD 71 CA")
    };
    let now = 1_700_000_000u64;
    for (seed, profile) in [
        ("interop-os", ClientProfile::OpenSource),
        ("interop-anapaya", ClientProfile::AnapayaCore),
    ] {
        let enrol = SigningKey::from_seed(seed.as_bytes());
        let as_key = SigningKey::from_seed(format!("{seed}-as").as_bytes());
        let subject = ia("71-2:0:42");
        ca.enrol(subject, enrol.verifying_key());
        let csr = CsrRequest::build(subject, as_key.verifying_key(), profile, &enrol);
        let chain = ca.process_csr(&csr, now).expect("CSR accepted");
        net.trust
            .verify_chain(&chain, now)
            .expect("chain verifies against ISD 71 TRC");
    }
    assert!(!CaService::needs_renewal(
        &net.renewal[&ia("71-88")].chain.as_cert,
        now
    ));
}
