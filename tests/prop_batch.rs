//! Differential property tests for the batched router pipeline:
//! [`BorderRouter::process_batch`] against the sequential per-frame fast
//! path over the same six-AS core-transit walk `prop_fastpath.rs` uses,
//! with proptest-composed batches mixing valid frames, single-byte
//! corruptions, SCMP payloads, one-hop paths, trailing-byte frames,
//! traced frames, raw garbage and duplicates. The two engines must agree
//! on every verdict, every output byte, the `processed`/`dropped` tallies
//! and every shared `router.*` counter — only the observability-only
//! `router.maccache.*` / `router.batch.*` families may differ.

use proptest::prelude::*;

use sciera::control::fullpath::{Direction, FullPath, PathKind, SegmentUse};
use sciera::control::segment::{AsSecrets, PathSegment, SegmentBuilder, SegmentType};
use sciera::dataplane::router::BorderRouter;
use sciera::proto::addr::{ia, HostAddr, ScionAddr, ServiceAddr};
use sciera::proto::packet::{DataPlanePath, L4Protocol, ScionPacket};
use sciera::proto::path::{HopField, InfoField};
use sciera::proto::scmp::ScmpMessage;
use sciera::proto::trace::TraceContext;
use sciera::telemetry::Telemetry;

const TS: u32 = 1_700_000_000;

fn secrets(s: &str) -> AsSecrets {
    AsSecrets::derive(ia(s))
}

fn router(s: &str, telemetry: &Telemetry) -> BorderRouter {
    let sec = secrets(s);
    let mut r = BorderRouter::new(sec.ia, sec.hop_key);
    r.set_telemetry(telemetry.clone());
    r
}

fn up_segment() -> PathSegment {
    let mut b = SegmentBuilder::originate(SegmentType::UpDown, TS, 0x1001);
    b.extend(&secrets("71-1"), 0, 11, &[]);
    b.extend(&secrets("71-10"), 21, 22, &[]);
    b.extend(&secrets("71-100"), 31, 0, &[]);
    b.finish()
}

fn down_segment() -> PathSegment {
    let mut b = SegmentBuilder::originate(SegmentType::UpDown, TS, 0x2002);
    b.extend(&secrets("71-2"), 0, 12, &[]);
    b.extend(&secrets("71-20"), 23, 24, &[]);
    b.extend(&secrets("71-200"), 33, 0, &[]);
    b.finish()
}

fn core_segment() -> PathSegment {
    let mut b = SegmentBuilder::originate(SegmentType::Core, TS, 0x3003);
    b.extend(&secrets("71-2"), 0, 41, &[]);
    b.extend(&secrets("71-1"), 42, 0, &[]);
    b.finish()
}

/// The walk: 71-100 (host ingress) → 71-10 (in 22) → 71-1 (in 11)
/// → 71-2 (in 41, segment crossing) → 71-20 (in 23) → 71-200 (in 33).
const STATIONS: [(&str, u16); 6] = [
    ("71-100", 0),
    ("71-10", 22),
    ("71-1", 11),
    ("71-2", 41),
    ("71-20", 23),
    ("71-200", 33),
];

fn transit_packet(l4: L4Protocol, payload: Vec<u8>, traced: bool) -> ScionPacket {
    let path = FullPath::assemble(
        ia("71-100"),
        ia("71-200"),
        PathKind::CoreTransit,
        vec![
            SegmentUse::whole(up_segment(), Direction::AgainstCons),
            SegmentUse::whole(core_segment(), Direction::AgainstCons),
            SegmentUse::whole(down_segment(), Direction::Cons),
        ],
    )
    .unwrap();
    let mut pkt = ScionPacket::new(
        ScionAddr::new(ia("71-100"), HostAddr::v4(10, 0, 0, 1)),
        ScionAddr::new(ia("71-200"), HostAddr::v4(10, 0, 0, 2)),
        l4,
        DataPlanePath::Scion(path.to_dataplane().unwrap()),
        payload,
    );
    if traced {
        pkt.trace = Some(TraceContext::root(0x5c1e_7a02));
    }
    pkt
}

fn one_hop_frame(seed: u16) -> Vec<u8> {
    ScionPacket::new(
        ScionAddr::new(ia("71-100"), HostAddr::v4(10, 0, 0, 1)),
        ScionAddr::new(ia("71-10"), HostAddr::v4(10, 0, 0, 2)),
        L4Protocol::Udp,
        DataPlanePath::OneHop {
            info: InfoField {
                peering: false,
                cons_dir: true,
                seg_id: seed,
                timestamp: TS,
            },
            first_hop: HopField {
                ingress_alert: false,
                egress_alert: false,
                exp_time: 63,
                cons_ingress: 0,
                cons_egress: 7,
                mac: [1, 2, 3, 4, 5, 6],
            },
            second_hop: HopField {
                ingress_alert: false,
                egress_alert: false,
                exp_time: 0,
                cons_ingress: 0,
                cons_egress: 0,
                mac: [0; 6],
            },
        },
        vec![],
    )
    .encode()
    .unwrap()
}

/// One batch element: `(kind, seed, mask)` from the proptest strategy.
fn build_frame(kind: usize, seed: u16, mask: u8) -> Vec<u8> {
    match kind % 8 {
        // Valid UDP frame, payload length and content varied by seed.
        0 => transit_packet(L4Protocol::Udp, vec![mask; seed as usize % 200], false)
            .encode()
            .unwrap(),
        // Valid frame addressed to a service anycast destination.
        1 => {
            let mut pkt = transit_packet(L4Protocol::Udp, b"svc".to_vec(), false);
            pkt.dst.host = HostAddr::Svc(ServiceAddr::ControlService);
            pkt.encode().unwrap()
        }
        // Single-byte corruption anywhere in an otherwise valid frame.
        2 => {
            let mut f = transit_packet(L4Protocol::Udp, b"corrupt me".to_vec(), false)
                .encode()
                .unwrap();
            let pos = seed as usize % f.len();
            f[pos] ^= mask;
            f
        }
        // SCMP echo request riding the same transit path.
        3 => transit_packet(
            L4Protocol::Scmp,
            ScmpMessage::EchoRequest {
                id: seed,
                seq: seed.wrapping_add(1),
                data: vec![0x5c; 8],
            }
            .encode(),
            false,
        )
        .encode()
        .unwrap(),
        // One-hop path: dropped as UnsupportedPath via the peeled fallback.
        4 => one_hop_frame(seed),
        // Trailing byte: not exact-length, peels to the fallback.
        5 => {
            let mut f = transit_packet(L4Protocol::Udp, b"tail".to_vec(), false)
                .encode()
                .unwrap();
            f.push(mask);
            f
        }
        // Traced frame: carries an extension header, peels to the fallback.
        6 => transit_packet(L4Protocol::Udp, b"traced".to_vec(), true)
            .encode()
            .unwrap(),
        // Raw garbage: almost always undecodable.
        _ => vec![mask; seed as usize % 64],
    }
}

/// The `router.*` counters both engines must agree on.
fn shared_router_counters(telemetry: &Telemetry) -> Vec<(String, u64)> {
    telemetry
        .snapshot()
        .counters
        .into_iter()
        .filter(|(n, _)| {
            n.starts_with("router.")
                && !n.starts_with("router.maccache.")
                && !n.starts_with("router.batch.")
        })
        .collect()
}

/// Walks a whole batch through every station on both engines, asserting
/// verdict + output-byte parity per station, retaining only forwarded
/// frames between stations, then counter parity at the end.
fn differential_batch_walk(frames: Vec<Vec<u8>>, now: u64) -> Result<(), TestCaseError> {
    let tele_seq = Telemetry::quiet();
    let tele_batch = Telemetry::quiet();
    let mut frames_seq = frames.clone();
    let mut frames_batch = frames;

    for (station, (as_str, ingress)) in STATIONS.iter().enumerate() {
        if frames_seq.is_empty() {
            break;
        }
        let mut r_seq = router(as_str, &tele_seq);
        let mut r_batch = router(as_str, &tele_batch);

        let want: Vec<_> = frames_seq
            .iter_mut()
            .map(|f| r_seq.process_frame(f, *ingress, now))
            .collect();
        let got = r_batch.process_batch(&mut frames_batch, *ingress, now);

        prop_assert_eq!(
            &got,
            &want,
            "verdicts diverged at station {} ({})",
            station,
            as_str
        );
        prop_assert_eq!(
            &frames_batch,
            &frames_seq,
            "output bytes diverged at station {} ({})",
            station,
            as_str
        );
        prop_assert_eq!(r_batch.processed, r_seq.processed);
        prop_assert_eq!(r_batch.dropped, r_seq.dropped);

        // Only forwarded frames continue to the next station.
        let keep: Vec<bool> = got
            .iter()
            .map(|v| {
                matches!(
                    v,
                    Ok(sciera::dataplane::router::FrameDecision::Forward { .. })
                )
            })
            .collect();
        let mut it = keep.iter();
        frames_seq.retain(|_| *it.next().unwrap());
        let mut it = keep.iter();
        frames_batch.retain(|_| *it.next().unwrap());
    }

    prop_assert_eq!(
        shared_router_counters(&tele_seq),
        shared_router_counters(&tele_batch),
        "router counter parity"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random batches mixing every frame class — including duplicates,
    /// since the strategy freely repeats kinds — walk all six stations
    /// with verdict, byte and counter parity, fresh or near hop expiry.
    #[test]
    fn mixed_batches_walk_identically(
        elements in prop::collection::vec((0usize..8, any::<u16>(), 1u8..=255), 1..16),
        now_off in 0u64..40_000,
    ) {
        let frames: Vec<Vec<u8>> = elements
            .iter()
            .map(|(kind, seed, mask)| build_frame(*kind, *seed, *mask))
            .collect();
        differential_batch_walk(frames, TS as u64 + now_off)?;
    }

    /// A batch of identical valid frames against a cold MAC cache: the
    /// in-batch dedup must settle all of them with a single batched CMAC,
    /// and the verdicts must still match the per-frame engine exactly.
    #[test]
    fn duplicate_batches_dedup_to_one_cmac(
        copies in 2usize..24,
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let tele = Telemetry::quiet();
        let template = transit_packet(L4Protocol::Udp, payload, false)
            .encode()
            .unwrap();
        let mut r = router("71-100", &tele);
        let mut frames: Vec<Vec<u8>> = vec![template.clone(); copies];
        let got = r.process_batch(&mut frames, 0, TS as u64 + 100);
        for (i, v) in got.iter().enumerate() {
            prop_assert!(
                matches!(v, Ok(sciera::dataplane::router::FrameDecision::Forward { .. })),
                "frame {} not forwarded: {:?}", i, v
            );
        }
        for f in &frames[1..] {
            prop_assert_eq!(f, &frames[0], "duplicate frames rewrote differently");
        }
        let snap = tele.snapshot();
        prop_assert_eq!(snap.counter("router.batch.mac_batched"), Some(1));
        prop_assert_eq!(
            snap.counter("router.batch.mac_dedup"),
            Some(copies as u64 - 1)
        );
    }

    /// Batch processing is cache-state invariant: a warm MAC cache changes
    /// which pass settles the verdict, never the verdict or the bytes.
    #[test]
    fn warm_batches_match_cold_batches(
        elements in prop::collection::vec((0usize..8, any::<u16>(), 1u8..=255), 1..10),
    ) {
        let now = TS as u64 + 100;
        let frames: Vec<Vec<u8>> = elements
            .iter()
            .map(|(kind, seed, mask)| build_frame(*kind, *seed, *mask))
            .collect();
        let tele = Telemetry::quiet();
        let mut r = router("71-100", &tele);
        let mut cold = frames.clone();
        let cold_verdicts = r.process_batch(&mut cold, 0, now);
        let mut warm = frames;
        let warm_verdicts = r.process_batch(&mut warm, 0, now);
        prop_assert_eq!(cold_verdicts, warm_verdicts, "cache state changed verdicts");
        prop_assert_eq!(cold, warm, "cache state changed output bytes");
    }
}
