//! Property: the telemetry crate's log-bucketed streaming histogram tracks
//! the exact (sample-keeping) `netsim::metrics::Summary` — every quantile
//! estimate stays within one bucket width of the exact sample quantile, on
//! the same random sample stream.
//!
//! The histogram approximates each sample by its bucket's geometric-mean
//! representative and then applies the same linear-interpolation quantile
//! definition as `Summary`, so the interpolated estimate can be off by at
//! most the width of the buckets holding the two neighbouring order
//! statistics.

use proptest::prelude::*;
use sciera::netsim::metrics::Summary;
use sciera::telemetry::Histogram;

/// Positive f64 samples spanning ~12 decades (sub-microsecond spans up to
/// sim-hours in nanoseconds, like the real phase/combine timings):
/// `2^e * (1 + m/2^20)` for e in [-10, 30).
fn sample() -> impl Strategy<Value = f64> {
    (-10i32..30, 0u64..(1 << 20))
        .prop_map(|(e, m)| 2f64.powi(e) * (1.0 + m as f64 / (1u64 << 20) as f64))
}

/// Quantiles in [0, 1] with millesimal resolution.
fn quantile() -> impl Strategy<Value = f64> {
    (0u32..=1000).prop_map(|x| x as f64 / 1000.0)
}

/// Widths of the buckets holding the two order statistics that the exact
/// quantile interpolates between — the resolution bound at that point.
fn tolerance_at(h: &Histogram, sorted: &[f64], q: f64) -> f64 {
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = sorted[pos.floor() as usize];
    let hi = sorted[pos.ceil() as usize];
    let (a_lo, a_hi) = h.bucket_bounds(lo);
    let (b_lo, b_hi) = h.bucket_bounds(hi);
    (a_hi - a_lo).max(b_hi - b_lo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_quantiles_within_one_bucket_of_summary(
        samples in prop::collection::vec(sample(), 1..400),
        qs in prop::collection::vec(quantile(), 1..8),
    ) {
        let mut summary = Summary::new();
        let hist = Histogram::default();
        for &v in &samples {
            prop_assert!(summary.record(v));
            prop_assert!(hist.record(v));
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

        for &q in qs.iter().chain([0.0, 0.5, 0.9, 0.99, 1.0].iter()) {
            let exact = summary.quantile(q).unwrap();
            let approx = hist.quantile(q).unwrap();
            let tol = tolerance_at(&hist, &sorted, q);
            prop_assert!(
                (approx - exact).abs() <= tol + 1e-9,
                "q={}: histogram {} vs exact {}, tolerance {}", q, approx, exact, tol
            );
        }
    }

    #[test]
    fn histogram_and_summary_agree_on_count_and_rejections(
        good in prop::collection::vec(sample(), 0..100),
        bad in prop::collection::vec(
            prop_oneof![
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
            ],
            0..10,
        ),
    ) {
        let mut summary = Summary::new();
        let hist = Histogram::default();
        for &v in &good {
            summary.record(v);
            hist.record(v);
        }
        for &v in &bad {
            prop_assert!(!summary.record(v));
            prop_assert!(!hist.record(v));
        }
        prop_assert_eq!(summary.count() as u64, hist.count());
        prop_assert_eq!(summary.rejected(), hist.rejected());
        prop_assert_eq!(hist.rejected(), bad.len() as u64);
    }
}
