//! Property tests for the path-dynamics observatory's dataset exporter
//! (`sciera::measure::dynamics`).
//!
//! The mock network is *not* a re-implementation of the pipeline under
//! test: it wires the real `PathProber` and `HealthBoard` over a scripted
//! link universe, so the exporter is exercised against genuine probe
//! outcomes, churn transitions, and SCMP down-reasons. The pinned
//! invariants:
//!
//! * JSONL round-trips losslessly and byte-stably: `export → parse →
//!   export` reproduces the exact bytes, and the parsed dataset equals
//!   the original.
//! * Epochs are strictly monotone per (src, dst, fingerprint) series.
//! * Every appear/disappear churn record corresponds 1:1, in order, to a
//!   `HealthBoard` transition.
//! * Equal seeds over equal networks replay byte-for-byte.

use std::collections::BTreeMap;

use proptest::prelude::*;

use sciera::control::fullpath::{FullPath, PathHop, PathKind};
use sciera::measure::dynamics::{run_campaign, DynamicsConfig, DynamicsDataset, DynamicsNet};
use sciera::orchestrator::health::HealthBoard;
use sciera::orchestrator::prober::{
    EchoOutcome, EchoTransport, PathProber, ProbeResult, ProberConfig,
};
use sciera::prelude::*;

/// AS that owns (terminates) link `li` — the ingress side every path
/// crossing the link shares, so SCMP can name one canonical interface.
fn link_ia(li: usize) -> IsdAsn {
    ia(&format!("91-1:0:{:x}", li + 0x10))
}

/// The shared ingress interface id of link `li`.
fn link_ifid(li: usize) -> u16 {
    (2 * li + 2) as u16
}

/// Fabricates a concrete path crossing `links` in order between `src` and
/// `dst`. Hop interfaces encode the link sequence, so distinct sequences
/// get distinct fingerprints and `FullPath::interfaces` contains each
/// link's canonical `(link_ia, link_ifid)` pair.
fn path_over(src: IsdAsn, dst: IsdAsn, links: &[usize]) -> FullPath {
    let mut hops = vec![PathHop {
        ia: src,
        ingress: 0,
        egress: (2 * links[0] + 1) as u16,
    }];
    for w in links.windows(2) {
        hops.push(PathHop {
            ia: link_ia(w[0]),
            ingress: link_ifid(w[0]),
            egress: (2 * w[1] + 1) as u16,
        });
    }
    hops.push(PathHop {
        ia: dst,
        ingress: link_ifid(*links.last().unwrap()),
        egress: 0,
    });
    FullPath {
        src,
        dst,
        kind: PathKind::SingleSegment,
        uses: Vec::new(),
        hops,
    }
}

/// Scripted link universe behind the real prober + health board.
struct MockNet {
    now: u64,
    links_up: Vec<bool>,
    lat_ms: Vec<f64>,
    nominal_ms: Vec<f64>,
    src: IsdAsn,
    dst: IsdAsn,
    paths: Vec<FullPath>,
    link_map: BTreeMap<String, Vec<usize>>,
    prober: PathProber,
    board: HealthBoard,
    generation: u64,
}

struct MockTransport<'a> {
    links_up: &'a [bool],
    lat_ms: &'a [f64],
    link_map: &'a BTreeMap<String, Vec<usize>>,
}

impl EchoTransport for MockTransport<'_> {
    fn echo(
        &mut self,
        _src: IsdAsn,
        _dst: IsdAsn,
        path: &FullPath,
        _id: u16,
        _seq: u16,
    ) -> EchoOutcome {
        let links = &self.link_map[&path.fingerprint()];
        for &li in links {
            if !self.links_up[li] {
                return EchoOutcome::ExtIfDown {
                    ia: link_ia(li),
                    interface: u64::from(link_ifid(li)),
                };
            }
        }
        EchoOutcome::Reply {
            rtt_ms: links
                .iter()
                .map(|&li| self.lat_ms[li])
                .sum::<f64>()
                .max(0.1),
        }
    }
}

impl MockNet {
    /// Builds the universe from per-path link sequences (deduplicated —
    /// identical sequences would collide on one fingerprint).
    fn build(n_links: usize, path_specs: &[Vec<usize>]) -> MockNet {
        let telemetry = Telemetry::quiet();
        let src = ia("91-1");
        let dst = ia("91-2");
        let nominal_ms: Vec<f64> = (0..n_links).map(|li| 5.0 + li as f64).collect();
        let mut paths = Vec::new();
        let mut link_map = BTreeMap::new();
        for spec in path_specs {
            // Keep each link at most once, preserving order.
            let mut links: Vec<usize> = Vec::new();
            for &li in spec {
                let li = li % n_links;
                if !links.contains(&li) {
                    links.push(li);
                }
            }
            let p = path_over(src, dst, &links);
            if link_map.insert(p.fingerprint(), links).is_none() {
                paths.push(p);
            }
        }
        MockNet {
            now: 1_700_000_000,
            links_up: vec![true; n_links],
            lat_ms: nominal_ms.clone(),
            nominal_ms,
            src,
            dst,
            paths,
            link_map,
            prober: PathProber::new(telemetry.clone(), ProberConfig::default()),
            board: HealthBoard::new(telemetry),
            generation: 0,
        }
    }
}

impl DynamicsNet for MockNet {
    fn now_unix(&self) -> u64 {
        self.now
    }

    fn advance_time(&mut self, secs: u64) {
        self.now += secs;
    }

    fn register_pair(&mut self, src: IsdAsn, dst: IsdAsn, max_paths: usize) -> Vec<FullPath> {
        let mut snapshot = self.paths.clone();
        snapshot.truncate(max_paths);
        self.prober.register(src, dst, snapshot.clone());
        snapshot
    }

    fn probe_round(&mut self) -> Vec<ProbeResult> {
        let mut transport = MockTransport {
            links_up: &self.links_up,
            lat_ms: &self.lat_ms,
            link_map: &self.link_map,
        };
        self.prober
            .run_round(&mut transport, &mut self.board, self.now)
    }

    fn churn_events(&self) -> Vec<sciera::orchestrator::health::ChurnEvent> {
        self.board.churn_events().to_vec()
    }

    fn path_state(
        &self,
        src: IsdAsn,
        dst: IsdAsn,
        fingerprint: &str,
    ) -> Option<(bool, Option<String>)> {
        self.board
            .path(src, dst, fingerprint)
            .map(|p| (p.alive, p.down_reason.clone()))
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn link_count(&self) -> usize {
        self.links_up.len()
    }

    fn path_links(&self, path: &FullPath) -> Vec<usize> {
        self.link_map
            .get(&path.fingerprint())
            .cloned()
            .unwrap_or_default()
    }

    fn set_link_up(&mut self, index: usize, up: bool) {
        self.links_up[index] = up;
        self.generation += 1;
    }

    fn set_link_latency_factor(&mut self, index: usize, factor: f64) {
        self.lat_ms[index] = self.nominal_ms[index] * factor;
        self.generation += 1;
    }
}

const N_LINKS: usize = 8;

fn arb_paths() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..N_LINKS, 1..4), 2..6)
}

fn arb_config() -> impl Strategy<Value = DynamicsConfig> {
    (
        4usize..14,
        0usize..4,
        1usize..3,
        0usize..4,
        1usize..3,
        1usize..3,
        any::<u64>(),
    )
        .prop_map(
            |(epochs, kill_every, kill_duration, latency_every, latency_duration, rounds, seed)| {
                DynamicsConfig {
                    epochs,
                    epoch_secs: 10,
                    rounds_per_epoch: rounds,
                    max_paths_per_pair: 8,
                    seed,
                    kill_every,
                    kill_duration,
                    kill_pool: 2,
                    latency_every,
                    latency_factor_max: 3.0,
                    latency_duration,
                }
            },
        )
}

fn run(specs: &[Vec<usize>], cfg: &DynamicsConfig) -> (MockNet, DynamicsDataset) {
    let mut net = MockNet::build(N_LINKS, specs);
    let telemetry = Telemetry::quiet();
    let pairs = [(net.src, net.dst)];
    let ds = run_campaign(&mut net, &pairs, cfg, &telemetry);
    (net, ds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn jsonl_roundtrips_losslessly_and_validates(
        specs in arb_paths(),
        cfg in arb_config(),
    ) {
        let (net, ds) = run(&specs, &cfg);
        prop_assert!(ds.validate().is_ok(), "{:?}", ds.validate());
        prop_assert_eq!(ds.paths.len() as u64, (cfg.epochs * net.paths.len()) as u64);

        let telemetry = Telemetry::quiet();
        let (paths_jsonl, events_jsonl) = ds.export_jsonl(&telemetry);
        let parsed = DynamicsDataset::from_jsonl(ds.seed, &paths_jsonl, &events_jsonl)
            .expect("exported JSONL parses");
        prop_assert_eq!(&parsed.paths, &ds.paths);
        prop_assert_eq!(&parsed.events, &ds.events);
        let (paths2, events2) = parsed.export_jsonl(&telemetry);
        prop_assert_eq!(paths_jsonl, paths2, "re-export must be byte-stable");
        prop_assert_eq!(events_jsonl, events2);
    }

    #[test]
    fn epochs_are_strictly_monotone_per_path(
        specs in arb_paths(),
        cfg in arb_config(),
    ) {
        let (_, ds) = run(&specs, &cfg);
        let mut last: BTreeMap<(&str, &str, &str), u64> = BTreeMap::new();
        for r in &ds.paths {
            let key = (r.src.as_str(), r.dst.as_str(), r.fingerprint.as_str());
            if let Some(prev) = last.get(&key) {
                prop_assert!(
                    r.epoch > *prev,
                    "epoch {} after {} for {:?}",
                    r.epoch,
                    prev,
                    key
                );
            }
            last.insert(key, r.epoch);
        }
    }

    #[test]
    fn churn_records_match_board_transitions_one_to_one(
        specs in arb_paths(),
        cfg in arb_config(),
    ) {
        let (net, ds) = run(&specs, &cfg);
        // Expand the board's transition log exactly as the exporter must:
        // one appear per added fingerprint, one disappear per removed,
        // in log order.
        let mut expected: Vec<(String, String, u64)> = Vec::new();
        for ev in net.board.churn_events() {
            for fp in &ev.added {
                expected.push(("appear".into(), fp.clone(), ev.at_unix));
            }
            for fp in &ev.removed {
                expected.push(("disappear".into(), fp.clone(), ev.at_unix));
            }
        }
        let got: Vec<(String, String, u64)> = ds
            .events
            .iter()
            .filter(|e| e.kind != "failover")
            .map(|e| (e.kind.clone(), e.fingerprint.clone(), e.t_unix))
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn equal_seeds_replay_byte_for_byte(
        specs in arb_paths(),
        cfg in arb_config(),
    ) {
        let telemetry = Telemetry::quiet();
        let (_, a) = run(&specs, &cfg);
        let (_, b) = run(&specs, &cfg);
        let (ap, ae) = a.export_jsonl(&telemetry);
        let (bp, be) = b.export_jsonl(&telemetry);
        prop_assert_eq!(ap, bp, "paths.jsonl must be reproducible from the seed");
        prop_assert_eq!(ae, be, "events.jsonl must be reproducible from the seed");
    }
}
