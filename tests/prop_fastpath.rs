//! Differential property tests: the zero-copy forwarding fast path
//! (`BorderRouter::process_frame`) against the reference
//! decode → process → encode path, over a fixed six-AS core-transit
//! topology with proptest-varied packets, single-byte corruptions and
//! random-byte fuzz. The two paths must agree on output bytes, drop
//! verdicts and every `router.*` counter (excluding the fast-path-only
//! `router.fastpath.*` / `router.maccache.*` families) — on every frame.

use proptest::prelude::*;

use sciera::control::fullpath::{Direction, FullPath, PathKind, SegmentUse};
use sciera::control::segment::{AsSecrets, PathSegment, SegmentBuilder, SegmentType};
use sciera::dataplane::router::{BorderRouter, Decision, FrameDecision, FrameError};
use sciera::proto::addr::{ia, HostAddr, ScionAddr, ServiceAddr};
use sciera::proto::packet::{DataPlanePath, L4Protocol, ScionPacket};
use sciera::proto::trace::TraceContext;
use sciera::telemetry::Telemetry;

const TS: u32 = 1_700_000_000;

fn secrets(s: &str) -> AsSecrets {
    AsSecrets::derive(ia(s))
}

fn router(s: &str, telemetry: &Telemetry) -> BorderRouter {
    let sec = secrets(s);
    let mut r = BorderRouter::new(sec.ia, sec.hop_key);
    r.set_telemetry(telemetry.clone());
    r
}

fn up_segment() -> PathSegment {
    let mut b = SegmentBuilder::originate(SegmentType::UpDown, TS, 0x1001);
    b.extend(&secrets("71-1"), 0, 11, &[]);
    b.extend(&secrets("71-10"), 21, 22, &[]);
    b.extend(&secrets("71-100"), 31, 0, &[]);
    b.finish()
}

fn down_segment() -> PathSegment {
    let mut b = SegmentBuilder::originate(SegmentType::UpDown, TS, 0x2002);
    b.extend(&secrets("71-2"), 0, 12, &[]);
    b.extend(&secrets("71-20"), 23, 24, &[]);
    b.extend(&secrets("71-200"), 33, 0, &[]);
    b.finish()
}

fn core_segment() -> PathSegment {
    let mut b = SegmentBuilder::originate(SegmentType::Core, TS, 0x3003);
    b.extend(&secrets("71-2"), 0, 41, &[]);
    b.extend(&secrets("71-1"), 42, 0, &[]);
    b.finish()
}

/// The walk: 71-100 (host ingress) → 71-10 (in 22) → 71-1 (in 11)
/// → 71-2 (in 41) → 71-20 (in 23) → 71-200 (in 33, delivers).
const STATIONS: [(&str, u16); 6] = [
    ("71-100", 0),
    ("71-10", 22),
    ("71-1", 11),
    ("71-2", 41),
    ("71-20", 23),
    ("71-200", 33),
];

fn transit_packet(dst_host: HostAddr, payload: Vec<u8>, traced: bool) -> ScionPacket {
    let path = FullPath::assemble(
        ia("71-100"),
        ia("71-200"),
        PathKind::CoreTransit,
        vec![
            SegmentUse::whole(up_segment(), Direction::AgainstCons),
            SegmentUse::whole(core_segment(), Direction::AgainstCons),
            SegmentUse::whole(down_segment(), Direction::Cons),
        ],
    )
    .unwrap();
    let mut pkt = ScionPacket::new(
        ScionAddr::new(ia("71-100"), HostAddr::v4(10, 0, 0, 1)),
        ScionAddr::new(ia("71-200"), dst_host),
        L4Protocol::Udp,
        DataPlanePath::Scion(path.to_dataplane().unwrap()),
        payload,
    );
    if traced {
        pkt.trace = Some(TraceContext::root(0x5c1e_7a00));
    }
    pkt
}

/// What one router did to one frame, output bytes included.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Deliver(Vec<u8>),
    Forward(u16, Vec<u8>),
    Drop(String),
    Malformed,
}

fn reference_step(r: &mut BorderRouter, frame: &[u8], ingress: u16, now: u64) -> Outcome {
    match ScionPacket::decode(frame) {
        Err(_) => Outcome::Malformed,
        Ok(pkt) => match r.process(pkt, ingress, now) {
            Ok(Decision::Deliver(p)) => Outcome::Deliver(p.encode().unwrap()),
            Ok(Decision::Forward { ifid, packet }) => {
                Outcome::Forward(ifid, packet.encode().unwrap())
            }
            Err(e) => Outcome::Drop(format!("{e:?}")),
        },
    }
}

fn fast_step(r: &mut BorderRouter, frame: &mut Vec<u8>, ingress: u16, now: u64) -> Outcome {
    match r.process_frame(frame, ingress, now) {
        Ok(FrameDecision::Deliver) => Outcome::Deliver(frame.clone()),
        Ok(FrameDecision::Forward { ifid }) => Outcome::Forward(ifid, frame.clone()),
        Err(FrameError::Drop(e)) => Outcome::Drop(format!("{e:?}")),
        Err(FrameError::Malformed(_)) => Outcome::Malformed,
    }
}

/// The `router.*` counters both paths must agree on — the fast-path-only
/// observability families are excluded by design.
fn shared_router_counters(telemetry: &Telemetry) -> Vec<(String, u64)> {
    telemetry
        .snapshot()
        .counters
        .into_iter()
        .filter(|(n, _)| {
            n.starts_with("router.")
                && !n.starts_with("router.fastpath.")
                && !n.starts_with("router.maccache.")
        })
        .collect()
}

/// Walks `frame` through every station on both paths simultaneously,
/// asserting agreement (verdict and bytes) at each step, then counter
/// parity at the end. Returns the final shared outcome.
fn differential_walk(mut frame: Vec<u8>, now: u64) -> Result<Outcome, TestCaseError> {
    let tele_ref = Telemetry::quiet();
    let tele_fast = Telemetry::quiet();
    let mut last = Outcome::Malformed;
    for (station, (as_str, ingress)) in STATIONS.iter().enumerate() {
        let mut r_ref = router(as_str, &tele_ref);
        let mut r_fast = router(as_str, &tele_fast);
        let want = reference_step(&mut r_ref, &frame, *ingress, now);
        let got = fast_step(&mut r_fast, &mut frame, *ingress, now);
        prop_assert_eq!(&got, &want, "station {} ({})", station, as_str);
        last = got;
        match &last {
            Outcome::Forward(_, bytes) => frame = bytes.clone(),
            _ => break,
        }
    }
    prop_assert_eq!(
        shared_router_counters(&tele_ref),
        shared_router_counters(&tele_fast),
        "router counter parity"
    );
    Ok(last)
}

fn dst_host(kind: usize) -> HostAddr {
    match kind % 3 {
        0 => HostAddr::v4(10, 0, 0, 2),
        1 => HostAddr::V6([0x2a; 16]),
        _ => HostAddr::Svc(ServiceAddr::ControlService),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Valid frames — any payload, any destination host kind, traced or
    /// not, fresh or near expiry — walk the whole path byte-identically.
    #[test]
    fn valid_frames_walk_identically(
        payload in prop::collection::vec(any::<u8>(), 0..400),
        host_kind in 0usize..3,
        traced in any::<bool>(),
        now_off in 0u64..30_000,
    ) {
        let pkt = transit_packet(dst_host(host_kind), payload, traced);
        let frame = pkt.encode().unwrap();
        let now = TS as u64 + now_off;
        let last = differential_walk(frame, now)?;
        if now_off < 20_000 {
            // Well within the hop expiry window: the walk must deliver.
            prop_assert!(
                matches!(last, Outcome::Deliver(_)),
                "fresh packet not delivered: {:?}", last
            );
        }
    }

    /// Single-byte corruption anywhere in the frame: both paths agree on
    /// the verdict (accept / drop reason / malformed), the output bytes
    /// and the router counters at every station.
    #[test]
    fn corrupted_frames_agree(
        pos in 0usize..4096,
        mask in 1u8..=255,
        host_kind in 0usize..3,
    ) {
        let pkt = transit_packet(dst_host(host_kind), b"corrupt me".to_vec(), false);
        let mut frame = pkt.encode().unwrap();
        let pos = pos % frame.len();
        frame[pos] ^= mask;
        differential_walk(frame, TS as u64 + 100)?;
    }

    /// Random bytes (not necessarily a SCION frame at all): both paths
    /// agree — almost always `Malformed` — and neither touches the shared
    /// router counters on undecodable input.
    #[test]
    fn random_bytes_agree(frame in prop::collection::vec(any::<u8>(), 0..200)) {
        differential_walk(frame, TS as u64 + 100)?;
    }

    /// Warm MAC cache changes performance, never behaviour: replaying the
    /// same frame through the same routers twice gives identical outputs.
    #[test]
    fn warm_cache_is_behaviour_invariant(
        payload in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let tele = Telemetry::quiet();
        let pkt = transit_packet(HostAddr::v4(10, 0, 0, 2), payload, false);
        let template = pkt.encode().unwrap();
        let now = TS as u64 + 100;
        let mut routers: Vec<BorderRouter> =
            STATIONS.iter().map(|(s, _)| router(s, &tele)).collect();
        let walk = |routers: &mut Vec<BorderRouter>| -> Vec<u8> {
            let mut frame = template.clone();
            for (r, (_, ingress)) in routers.iter_mut().zip(STATIONS.iter()) {
                match r.process_frame(&mut frame, *ingress, now) {
                    Ok(FrameDecision::Forward { .. }) => {}
                    Ok(FrameDecision::Deliver) => break,
                    Err(e) => panic!("valid frame dropped: {e:?}"),
                }
            }
            frame
        };
        let cold = walk(&mut routers);
        let warm = walk(&mut routers);
        prop_assert_eq!(cold, warm, "cache hit changed the output frame");
        let snap = tele.snapshot();
        prop_assert!(snap.counter("router.maccache.hit").unwrap_or(0) >= 5);
    }
}
