//! SCIERA — a full-stack reproduction of *Scaling SCIERA: A Journey
//! Through the Deployment of a Next-Generation Network* (SIGCOMM 2025).
//!
//! This facade crate re-exports the whole workspace. For the architecture
//! map see `DESIGN.md`; for the per-figure reproduction status see
//! `EXPERIMENTS.md`.
//!
//! # Quickstart
//!
//! ```
//! use sciera::prelude::*;
//!
//! // Stand up the whole five-continent deployment: PKI, beaconing,
//! // border routers, bootstrap servers.
//! let net = SciEraNetwork::build(NetworkConfig::default());
//!
//! // Attach two hosts and talk — a drop-in datagram socket, no path
//! // management required.
//! let a = net.attach_host(ScionAddr::new(ia("71-2:0:42"), HostAddr::v4(10, 0, 0, 1)));
//! let b = net.attach_host(ScionAddr::new(ia("71-225"), HostAddr::v4(10, 0, 0, 2)));
//! let mut tx = PanSocket::bind(a.addr, 4000, a.transport());
//! let mut rx = PanSocket::bind(b.addr, 4001, b.transport());
//! tx.connect(b.addr, 4001).unwrap();
//! tx.send(b"hello native SCION").unwrap();
//! let (payload, from, _) = rx.poll_recv().unwrap();
//! assert_eq!(payload, b"hello native SCION");
//! assert_eq!(from.ia, ia("71-2:0:42"));
//! ```

#![forbid(unsafe_code)]

pub use netsim;
pub use sciera_core as core;
pub use sciera_flowgen as flowgen;
pub use sciera_measure as measure;
pub use sciera_telemetry as telemetry;
pub use sciera_topology as topology;
pub use scion_bootstrap as bootstrap;
pub use scion_control as control;
pub use scion_cppki as cppki;
pub use scion_crypto as crypto;
pub use scion_daemon as daemon;
pub use scion_dataplane as dataplane;
pub use scion_hercules as hercules;
pub use scion_orchestrator as orchestrator;
pub use scion_pan as pan;
pub use scion_proto as proto;
pub use scion_sig as sig;

/// The most commonly used items in one import.
pub mod prelude {
    pub use sciera_core::network::NetworkConfig;
    pub use sciera_core::{HostHandle, OperatorConsole, SciEraNetwork};
    pub use sciera_measure::campaign::{Campaign, CampaignConfig};
    pub use sciera_telemetry::{
        prometheus_text, reconstruct_trace, validate_chain, Severity, Telemetry, TelemetrySnapshot,
    };
    pub use sciera_topology::links::build_control_graph;
    pub use scion_control::fullpath::FullPath;
    pub use scion_control::policy::{PathPolicy, Preference};
    pub use scion_orchestrator::{ChurnEvent, EchoOutcome, HealthRow};
    pub use scion_pan::socket::{PanSocket, PanTransport};
    pub use scion_proto::addr::{ia, HostAddr, IsdAsn, ScionAddr};
    pub use scion_proto::trace::TraceContext;
}
